#!/usr/bin/env python
"""Fleet routing: compare geo-aware routers on a three-site fleet.

A fleet is N member sites — ordinary registered scenarios, relocated with
the `scenario@site` shorthand — co-simulated in hourly lockstep while a
routing policy dispatches each arriving job of a shared workload to one
site.  Routers compose in the same spec grammar as scheduling policies:

    round-robin
    carbon-min
    carbon-min+queue-cap(max=50)
    renewable-max+free-gpus(min=4)

This example runs the registered `tri-site-small` fleet (a Holyoke-like,
a desert and a subarctic site, each with its region's grid profile) under
several routers and prints the fleet-level and per-site outcomes.  Fleet
totals are the exact sum of the member-site totals.

Run with::

    python examples/fleet_routing.py
    python examples/fleet_routing.py --workers 4   # step sites on processes

``--workers N`` hosts the per-site simulators on N worker processes
(bit-identical results; see the scaling guide in ``repro.fleet``) and is
worth it once members are supercloud-medium-sized or the fleet is large.

The same comparison from the command line::

    greenhpc fleet --router "round-robin,carbon-min,renewable-max" --months 3
    greenhpc sweep --experiments fleet \\
        --grid "router=round-robin,carbon-min,renewable-max" --months 3 --json

`greenhpc policies` prints the router vocabulary next to the policy stages.
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentSession
from repro.fleet import FleetSimulator, get_fleet
from repro.parallel import ParallelConfig

#: The routers under test: the two load-oriented baselines, the three grid
#: signal chasers, and one composed spec (chase clean power, but never into
#: a site whose queue has built up).
ROUTERS = [
    "round-robin",
    "least-queued",
    "carbon-min",
    "price-min",
    "renewable-max",
    "carbon-min+queue-cap(max=25)",
]

N_MONTHS = 3
HORIZON_H = 7 * 24.0
N_JOBS = 400


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="step member sites on N worker processes (default: serial in-process)",
    )
    args = parser.parse_args()
    parallel = ParallelConfig(n_workers=args.workers) if args.workers > 1 else None

    fleet = get_fleet("tri-site-small").with_member_overrides(n_months=N_MONTHS)
    print(f"fleet: {fleet.name} — {', '.join(fleet.member_names)}")
    stepping = f"parallel x{args.workers}" if parallel else "serial"
    print(
        f"workload: {N_JOBS} jobs over {HORIZON_H / 24:.0f} days "
        f"(shared trace); stepping: {stepping}\n"
    )

    # One session: each member's weather/trace/grid substrates build once and
    # are shared by every router under test.
    session = ExperimentSession(fleet.members[0])
    trace = session.job_trace(n_jobs=N_JOBS, horizon_h=HORIZON_H, spec=fleet.members[0])

    header = (
        f"{'router':<30} {'facility kWh':>12} {'kgCO2e':>9} {'cost $':>8} "
        f"{'wait h':>7}  dispatch"
    )
    print(header)
    print("-" * len(header))
    for router in ROUTERS:
        result = FleetSimulator(
            fleet, router=router, horizon_h=HORIZON_H, parallel=parallel, session=session
        ).run(trace)
        counts = "/".join(str(n) for n in result.dispatch_counts().values())
        print(
            f"{result.router:<30} {result.facility_energy_kwh:>12.1f} "
            f"{result.total_emissions_kg:>9.1f} {result.total_cost_usd:>8.2f} "
            f"{result.mean_wait_h:>7.2f}  {counts}"
        )

    print()
    result = FleetSimulator(
        fleet, router="carbon-min", horizon_h=HORIZON_H, parallel=parallel, session=session
    ).run(trace)
    print("per-site breakdown under carbon-min (fleet totals == sum of sites):")
    for row in result.site_rows():
        print(
            f"  {row['site']:<30} {row['jobs_dispatched']:>4} jobs  "
            f"{row['facility_energy_kwh']:>9.1f} kWh  "
            f"{row['emissions_kg']:>8.1f} kgCO2e  {row['cost_usd']:>7.2f} $"
        )
    total = sum(row["facility_energy_kwh"] for row in result.site_rows())
    assert result.facility_energy_kwh == total
    print(f"  {'(fleet)':<30} {result.n_jobs:>4} jobs  {total:>9.1f} kWh")


if __name__ == "__main__":
    main()
