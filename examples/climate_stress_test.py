#!/usr/bin/env python
"""Weatherized stress tests, cooling optimization, and wind forecasting.

The infrastructure-resilience side of the paper (Sections II.B and IV.C):

1. run the Dodd-Frank-style stress battery over a simulated year and show how
   energy, cooling, cost and PUE degrade scenario by scenario;
2. compare the fixed-set-point cooling plant against the weather-following
   optimized controller (the DeepMind-style ~40% cooling / ~15% PUE claim);
3. train the 36 h-ahead wind-power forecaster that makes firm day-ahead
   delivery commitments possible.

Run with::

    python examples/climate_stress_test.py
"""

from __future__ import annotations

import numpy as np

from repro.climate.weather import WeatherModel
from repro.cluster.cooling import FixedOverheadCooling, OptimizedCoolingController
from repro.config import FacilityConfig
from repro.core.stress import StressTestHarness
from repro.forecasting.wind import WindForecastStudy
from repro.timeutils import SimulationCalendar
from repro.workloads.demand import DeadlineDemandModel
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator


def main() -> None:
    print("=" * 84)
    print("1. Stress-test battery (one simulated year, 256-GPU facility)")
    print("=" * 84)
    harness = StressTestHarness(
        n_months=12, seed=0,
        trace_config=SuperCloudTraceConfig(facility=FacilityConfig(n_nodes=128, gpus_per_node=2)),
    )
    results = harness.run_battery()
    for row in StressTestHarness.degradation_table(results):
        print(f"  {row['scenario']:>18} (sev {row['severity']}): "
              f"energy {row['energy_increase_pct']:+6.1f}%, cooling {row['cooling_increase_pct']:+6.1f}%, "
              f"cost {row['cost_increase_pct']:+6.1f}%, PUE {row['pue_increase_pct']:+5.1f}%, "
              f"overloaded hours {row['hours_cooling_overloaded']}")
    print()

    print("=" * 84)
    print("2. Cooling: fixed set-points vs. weather-following optimized controller")
    print("=" * 84)
    calendar = SimulationCalendar(2020, 12)
    weather = WeatherModel(seed=0).hourly_temperature_c(calendar)
    generator = SuperCloudTraceGenerator(demand_model=DeadlineDemandModel(seed=0), seed=0)
    it_power = generator.it_power_from_occupancy(generator.demand_model.hourly_occupancy(calendar))
    fixed, optimized = FixedOverheadCooling(), OptimizedCoolingController()
    fixed_mwh = float(np.sum(fixed.cooling_power_w(it_power, weather))) / 1e6
    optimized_mwh = float(np.sum(optimized.cooling_power_w(it_power, weather))) / 1e6
    print(f"  cooling energy : {fixed_mwh:7.0f} MWh (fixed) -> {optimized_mwh:7.0f} MWh (optimized), "
          f"{100 * (1 - optimized_mwh / fixed_mwh):.0f}% reduction (paper/DeepMind: ~40%)")
    print(f"  mean PUE       : {float(np.mean(fixed.pue(weather))):.2f} -> "
          f"{float(np.mean(optimized.pue(weather))):.2f} "
          f"({100 * (1 - float(np.mean(optimized.pue(weather))) / float(np.mean(fixed.pue(weather)))):.0f}% lower)")
    print()

    print("=" * 84)
    print("3. Wind-power forecasting, 36 hours ahead (100 MW synthetic farm)")
    print("=" * 84)
    study = WindForecastStudy.run(n_hours=8760, horizon_h=36, seed=0)
    print(f"  model MAE       : {study.model_metrics.mae:6.1f} MW")
    print(f"  persistence MAE : {study.persistence_metrics.mae:6.1f} MW")
    print(f"  skill           : {study.skill_vs_persistence:.2f} "
          "(fraction of persistence error removed; paper: enough to commit day-ahead deliveries)")


if __name__ == "__main__":
    main()
