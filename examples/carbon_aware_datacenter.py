#!/usr/bin/env python
"""Facility-level analysis: regenerate the paper's figures and evaluate Section II.A/III levers.

Builds the 2020-2021 SuperCloud-like world (facility + weather + ISO-NE-like
grid + conference-driven demand), prints the monthly series behind Figs. 2-5,
then asks the operational questions the paper raises:

* how much of the facility's emissions/spend is avoidable by shifting load
  into green/cheap hours (the opportunity cost of Section II.A)?
* what would the deadline-restructuring options of Section III change?

Run with::

    python examples/carbon_aware_datacenter.py
"""

from __future__ import annotations

from repro import ExperimentConfig, GreenDatacenterModel
from repro.core.policies import LoadShiftingPolicy


def print_monthly_table(model: GreenDatacenterModel) -> None:
    figures = model.monthly_figures()
    fig2, fig3, fig4, fig5 = figures["fig2"], figures["fig3"], figures["fig4"], figures["fig5"]
    print(f"{'month':>9} {'power kW':>9} {'green %':>8} {'LMP $/MWh':>10} {'temp F':>7} "
          f"{'energy MWh':>11} {'deadlines':>9}")
    for i, label in enumerate(fig2.month_labels):
        print(
            f"{label:>9} {fig2.monthly_power_kw[i]:9.0f} {fig2.monthly_renewable_share_pct[i]:8.1f} "
            f"{fig3.monthly_price_per_mwh[i]:10.1f} {fig4.monthly_temperature_f[i]:7.1f} "
            f"{fig5.monthly_energy_mwh[i]:11.0f} {int(fig5.deadlines_per_month[i]):9d}"
        )
    print()
    print(f"Fig.2  corr(power, green share)      = {fig2.correlation:+.2f}")
    print(f"Fig.3  corr(price, green share)      = {fig3.correlation:+.2f}  "
          f"(cheapest month: {fig3.cheapest_month})")
    print(f"Fig.4  Spearman(power, temperature)  = {fig4.spearman:+.2f}")
    print(f"Fig.5  deadline uplift               = {fig5.deadline_uplift_mwh.mean():.0f} MWh/month, "
          f"early-2021/2020 ratio {fig5.early_2021_vs_2020_ratio:.2f}")
    print()


def main() -> None:
    print("=" * 72)
    print("A Green(er) SuperCloud: monthly picture and demand-side levers")
    print("=" * 72)
    model = GreenDatacenterModel(experiment=ExperimentConfig(seed=0, n_months=24))

    print_monthly_table(model)

    report = model.opportunity_cost(deferrable_fraction=0.3, window_h=24)
    print("Opportunity cost of buying-when-consuming (30% deferrable, 24 h windows):")
    print(f"  avoidable emissions : {report.environmental_opportunity_cost_kg / 1e3:8.1f} t CO2e "
          f"({100 * report.environmental_opportunity_fraction:.1f}% of actual)")
    print(f"  avoidable spend     : ${report.financial_opportunity_cost_usd / 1e3:8.1f}k "
          f"({100 * report.financial_opportunity_fraction:.1f}% of actual)")
    print()

    outcome = model.load_shifting(LoadShiftingPolicy(deferrable_fraction=0.3, window_h=24, signal="carbon"))
    print("Carbon-aware load shifting (same flexibility):")
    print(f"  emissions saved     : {100 * outcome.emissions_savings_fraction:.1f}%")
    print(f"  peak power change   : {100 * outcome.peak_power_change_fraction:+.1f}%")
    print()

    print("Deadline-calendar options (Section III), identical substrates:")
    for name, option in model.deadline_options().items():
        print(f"  {name:>8}: energy {option.total_energy_mwh:7.0f} MWh, "
              f"emissions {option.total_emissions_t:7.0f} t, "
              f"peak month {option.peak_monthly_power_kw:5.0f} kW, "
              f"summer share {option.summer_energy_share:.2f}")


if __name__ == "__main__":
    main()
