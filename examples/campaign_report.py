#!/usr/bin/env python
"""Incremental campaigns: the artifact store, the DAG and the report battery.

A campaign run against a content-addressed `ArtifactStore` becomes
*incremental*: every point is cached under a stable hash of (scenario spec,
experiment, params, derived seed, code version), so an unchanged re-sweep
performs zero simulator executions and returns byte-identical rows, while
editing one grid value reruns only the affected points.  The `CampaignDAG`
chains cached `summarize` -> `compare` -> `report` stages on top and renders
a figure battery (markdown + embedded-SVG HTML) straight from the store.

Run with::

    python examples/campaign_report.py

The same flow from the command line::

    greenhpc sweep --experiments shifting --grid seed=0,1 \\
        --grid deferrable=0.2,0.4 --cache-dir ./cache
    greenhpc sweep --experiments shifting --grid seed=0,1 \\
        --grid deferrable=0.2,0.4 --cache-dir ./cache   # 0 simulated
    greenhpc report --experiments shifting --grid seed=0,1 \\
        --grid deferrable=0.2,0.4 --cache-dir ./cache --out ./report
"""

from __future__ import annotations

import pathlib
import tempfile

from repro.artifacts import ArtifactStore
from repro.experiments import CampaignDAG, CampaignSpec, ScenarioSpec, run_campaign


def build_campaign() -> CampaignSpec:
    """Load-shifting savings over two seeds and two deferrable fractions."""
    return CampaignSpec(
        experiments=("shifting",),
        base=ScenarioSpec(name="report-demo", n_months=6),
        scenario_grid={"seed": [0, 1]},
        param_grid={"deferrable": [0.2, 0.4]},
    )


def sweep_cold_then_warm(campaign: CampaignSpec, store: ArtifactStore) -> None:
    cold = run_campaign(campaign, store=store)
    print(f"cold sweep:  {cold.cache_hits} cached, {cold.cache_misses} simulated")

    warm = run_campaign(campaign, store=store)
    print(f"warm sweep:  {warm.cache_hits} cached, {warm.cache_misses} simulated")
    print(f"rows byte-identical: {warm.to_csv() == cold.to_csv()}")
    print()

    # Edit ONE grid value: only the two seed=2 points (one per deferrable
    # fraction) simulate; the seed=0 artifacts are served from the store.
    edited = CampaignSpec(
        experiments=campaign.experiments,
        base=campaign.base,
        scenario_grid={"seed": [0, 2]},
        param_grid=dict(campaign.param_grid),
    )
    partial = run_campaign(edited, store=store)
    print(f"edited grid: {partial.cache_hits} cached, {partial.cache_misses} simulated")
    print()


def materialize_report(campaign: CampaignSpec, store: ArtifactStore) -> None:
    dag = CampaignDAG(campaign, store)
    print("DAG nodes:", [node.label for node in dag.nodes()])

    # Every run artifact is already in the store, so the report renders with
    # a hard no-resimulation guarantee (simulate=False raises on any gap).
    outcome = dag.materialize(simulate=False)
    print("stage status:", dict(outcome.stage_status))
    print()

    out = pathlib.Path(tempfile.mkdtemp(prefix="campaign-report-"))
    (out / "report.md").write_text(outcome.report_markdown)
    (out / "report.html").write_text(outcome.report_html)
    print(f"report written to {out}/report.md and {out}/report.html")
    print()
    print("markdown preview:")
    print("\n".join(outcome.report_markdown.splitlines()[:14]))


def main() -> None:
    print("=" * 72)
    print("Incremental campaigns: artifact store, campaign DAG, report battery")
    print("=" * 72)
    campaign = build_campaign()
    with tempfile.TemporaryDirectory(prefix="campaign-cache-") as cache_dir:
        store = ArtifactStore(cache_dir)
        sweep_cold_then_warm(campaign, store)
        materialize_report(campaign, store)
        stats = store.stats()
        print()
        print(
            f"store: {stats.n_artifacts} artifacts, {stats.total_bytes} bytes "
            f"({stats.hits} hits / {stats.misses} misses / {stats.writes} writes)"
        )


if __name__ == "__main__":
    main()
