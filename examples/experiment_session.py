#!/usr/bin/env python
"""The unified experiment API: registries, sessions, structured results.

Shows the three layers the `repro.experiments` package adds:

1. the **registries** — named scenarios/sites and the experiment catalogue
   that also generates the ``greenhpc`` CLI;
2. a custom **`ScenarioSpec`** — declare *which world* to simulate once;
3. an **`ExperimentSession`** — builds the world's substrates a single time
   and runs every registered experiment against them, each returning a
   uniform `ExperimentResult` (rows + scalars, JSON-serializable).

Run with::

    python examples/experiment_session.py
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentSession,
    ScenarioSpec,
    WorkloadSpec,
    get_site,
    list_experiments,
    list_scenarios,
)


def show_registries() -> None:
    """1. What is available out of the box."""
    print("Registered scenarios:")
    for spec in list_scenarios():
        print(f"  {spec.name:<14} seed={spec.seed:<10} months={spec.n_months:<4} {spec.description}")
    print()
    print("Registered experiments (each is also a `greenhpc` subcommand):")
    for definition in list_experiments():
        flags = " ".join(param.cli_flag for param in definition.params)
        print(f"  {definition.name:<10} {definition.help}" + (f"  [{flags}]" if flags else ""))
    print()


def build_custom_spec() -> ScenarioSpec:
    """2. A custom world: one year, hot desert site, A100 refresh."""
    spec = ScenarioSpec(
        name="phoenix-a100",
        seed=7,
        n_months=12,
        site=get_site("phoenix-az"),
        workload=WorkloadSpec(gpu_model="A100"),
        description="A100 facility in a hot climate, one simulated year",
    )
    print(f"Custom scenario: {spec.name} ({spec.description})")
    print()
    return spec


def run_everything(spec: ScenarioSpec) -> None:
    """3. One session, every experiment, substrates built exactly once."""
    session = ExperimentSession(spec)
    results = session.run_many(
        ["figures", "table1", "powercap", "shifting", "deadlines", "stress", "optimize"],
        params_by_name={
            "shifting": {"signal": "price"},
            "optimize": {"jobs": 60, "horizon_days": 3.0},
        },
    )
    for name, result in results.items():
        headline = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in list(result.scalars.items())[:3]
        )
        print(f"  {name:<10} {len(result.rows):>3} rows   {headline}")
    print()
    print(f"scenario substrate builds for all seven experiments: {session.scenario_builds}")
    print()
    # Every result serializes to strict JSON (what `greenhpc --json` prints).
    payload = results["shifting"].to_json(indent=2)
    print("shifting result as JSON (first lines):")
    print("\n".join(payload.splitlines()[:8]) + "\n  ...")


def main() -> None:
    print("=" * 72)
    print("Unified experiment API: registries, ScenarioSpec, ExperimentSession")
    print("=" * 72)
    show_registries()
    spec = build_custom_spec()
    run_everything(spec)


if __name__ == "__main__":
    main()
