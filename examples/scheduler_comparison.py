#!/usr/bin/env python
"""Cluster-level policy comparison: run the same job trace under five schedulers.

Builds a 48-node cluster, generates a one-week SuperCloud-like job trace, and
runs it under FIFO, backfill, energy-aware, carbon-aware and deadline-aware
policies with identical weather and grid conditions — the Eq. 1 levers ``p``
and ``c`` in action.  Then runs the Eq. 1 grid search to pick the best
operating point subject to a 90% activity floor.

Run with::

    python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro.climate.weather import WeatherModel
from repro.cluster.cooling import CoolingModel
from repro.cluster.resources import Cluster
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.config import FacilityConfig
from repro.core.framework import GreenDatacenterModel
from repro.core.levers import OperatingPoint
from repro.grid.iso_ne import IsoNeLikeGrid
from repro.scheduler import (
    BackfillScheduler,
    CarbonAwareScheduler,
    DeadlineAwareScheduler,
    EnergyAwareScheduler,
    FifoScheduler,
)
from repro.timeutils import SimulationCalendar
from repro.workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

FACILITY = FacilityConfig(n_nodes=48, gpus_per_node=2)


def main() -> None:
    calendar = SimulationCalendar(2020, 2)
    weather = WeatherModel(seed=0).hourly_temperature_c(calendar)
    grid = IsoNeLikeGrid(calendar, seed=0)
    generator = SuperCloudTraceGenerator(SuperCloudTraceConfig(facility=FACILITY), seed=21)
    jobs = generator.generate_jobs(n_jobs=400, horizon_h=5 * 24.0, deferrable_fraction=0.5)

    print("=" * 90)
    print("One-week trace (400 jobs) on a 96-GPU cluster under five scheduling policies")
    print("=" * 90)
    header = (f"{'policy':>15} {'energy kWh':>11} {'CO2e kg':>9} {'cost $':>8} "
              f"{'kWh/GPU-h':>10} {'done':>5} {'wait h':>7} {'p95 wait':>9}")
    print(header)
    for scheduler in (FifoScheduler(), BackfillScheduler(), EnergyAwareScheduler(),
                      CarbonAwareScheduler(), DeadlineAwareScheduler()):
        simulator = ClusterSimulator(
            Cluster(FACILITY), scheduler, SimulationConfig(horizon_h=7 * 24.0),
            weather_hourly_c=weather, cooling=CoolingModel(), grid=grid,
        )
        result = simulator.run([job.clone_pending() for job in jobs])
        print(f"{result.scheduler_name:>15} {result.facility_energy_kwh:11.0f} "
              f"{result.total_emissions_kg:9.1f} {result.total_cost_usd:8.1f} "
              f"{result.energy_per_gpu_hour_kwh:10.3f} {result.completed_jobs:5d} "
              f"{result.mean_wait_h:7.2f} {result.p95_wait_h:9.2f}")

    print()
    print("Eq. 1 search: minimise facility energy s.t. delivered GPU-hours >= 90% of status quo")
    model = GreenDatacenterModel()
    model.facility = FACILITY
    outcome = model.optimize_operations(
        jobs,
        horizon_h=7 * 24.0,
        activity_floor_fraction=0.9,
        points=[
            OperatingPoint(policy_name="backfill"),
            OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75),
            OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.6),
            OperatingPoint(policy_name="energy-aware", power_cap_fraction=0.75, supply_fraction=0.8),
            OperatingPoint(policy_name="carbon-aware", power_cap_fraction=0.75),
        ],
    )
    for record in outcome.frontier_records():
        marker = " <= best" if outcome.best is not None and record["operating_point"] == outcome.best.point.label() else ""
        print(f"  {record['operating_point']:>40}: objective {record['objective']:9.0f} kWh, "
              f"activity {record['activity']:8.0f} GPU-h, feasible={record['feasible']}{marker}")
    print(f"savings vs status quo: {100 * outcome.savings_vs_baseline():.1f}%")


if __name__ == "__main__":
    main()
