#!/usr/bin/env python
"""Composable policies: sweep staged scheduler pipelines through a campaign.

A scheduling policy is a composition of four pluggable stages — ordering,
admission gates, placement and a power-cap chain — addressable by a spec
string in the `repro.scheduler.compose` grammar:

    backfill+carbon(cap=0.7)+budget
    edf+backfill+slack(margin=2.0)+cap(fraction=0.8)
    sjf+backfill+renewable(min_share=0.25)

The five legacy policy names (`fifo`, `backfill`, `energy-aware`,
`carbon-aware`, `deadline-aware`) are canned compositions registered through
`register_policy()`, with job records bit-identical to the old monolithic
schedulers.  Because the `schedule` experiment takes the policy as an
ordinary parameter, the whole composition space sweeps through the campaign
layer like any other grid dimension.

Run with::

    python examples/policy_composition.py

The same sweep from the command line::

    greenhpc sweep --experiments schedule \\
        --grid "policy=backfill,backfill+carbon(cap=0.7)+budget" --json

`greenhpc policies` prints the registered policies and the stage vocabulary.
"""

from __future__ import annotations

from repro.core.levers import make_scheduler
from repro.experiments import CampaignSpec, run_campaign
from repro.scheduler.compose import parse_policy

#: Three composed pipelines against the plain backfill baseline: carbon
#: deferral + dirty-hour caps + the facility budget gate; EDF ordering that
#: spends deadline slack on green hours under a static cap; and shortest-job
#: ordering gated on the grid's renewable share.
PIPELINES = [
    "backfill",
    "backfill+carbon(cap=0.7)+budget",
    "edf+backfill+slack(margin=2.0)+cap(fraction=0.8)",
    "sjf+backfill+renewable(min_share=0.25)",
]


def show_compositions() -> None:
    print("pipelines under test (parse -> canonical round-trip):")
    for spec in PIPELINES:
        parsed = parse_policy(spec)
        scheduler = make_scheduler(spec)
        stages = [type(s).__name__ for s in (*scheduler.gates, *scheduler.power)]
        print(f"  {parsed!s:<52} ordering={type(scheduler.ordering).__name__:<20}"
              f" stages={stages}")
    print()


def sweep_pipelines() -> None:
    campaign = CampaignSpec(
        experiments=("schedule",),
        base="single-year",
        param_grid={
            "policy": PIPELINES,
            "jobs": [150],
            "horizon_days": [5.0],
        },
    )
    result = run_campaign(campaign)

    print("one seeded world, four policy compositions:")
    header = f"  {'policy':<52} {'energy kWh':>11} {'CO2 kg':>8} {'wait h':>7} {'miss %':>7}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for row in result.rows:
        print(
            f"  {row['policy']:<52} {row['facility_energy_kwh']:>11.1f} "
            f"{row['emissions_kg']:>8.1f} {row['mean_wait_h']:>7.2f} "
            f"{100.0 * row['deadline_miss_rate']:>7.1f}"
        )
    print()

    baseline = result.rows[0]
    greenest = min(result.rows, key=lambda r: r["emissions_kg"])
    savings = 100.0 * (1.0 - greenest["emissions_kg"] / baseline["emissions_kg"])
    print(f"greenest composition: {greenest['policy']}")
    print(f"emissions vs. plain backfill: {savings:+.1f}% "
          f"(wait {greenest['mean_wait_h']:.2f} h vs {baseline['mean_wait_h']:.2f} h)")


def main() -> None:
    print("=" * 72)
    print("Composable policy pipelines: ordering + gates + placement + power")
    print("=" * 72)
    show_compositions()
    sweep_pipelines()


if __name__ == "__main__":
    main()
