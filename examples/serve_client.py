#!/usr/bin/env python
"""The simulation service, end to end: submit, stream, kill, restore, resume.

Starts a ``greenhpc serve`` daemon as a subprocess, then walks the whole
lifecycle from a pure-stdlib `ServeClient`:

1. create a warm session (a registered scenario + a scheduling policy);
2. submit jobs mid-run and advance simulated time in bounded requests;
3. stream per-tick power/carbon/price telemetry as NDJSON;
4. ask a what-if routing question across live sessions;
5. checkpoint, **kill the daemon without warning**, restart it on the same
   checkpoint directory, and show the restored session resuming exactly
   where it stopped.

Run with::

    python examples/serve_client.py

or point it at an already-running daemon (skips the subprocess management)::

    greenhpc serve --port 8714 --checkpoint-dir ./ckpt &
    python examples/serve_client.py --external-url http://127.0.0.1:8714
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve import ServeClient

SCENARIO = "supercloud-small"
HORIZON_H = 96.0


def start_daemon(checkpoint_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``greenhpc serve`` on an ephemeral port; return (process, url)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--checkpoint-dir",
            checkpoint_dir,
            "--checkpoint-every-h",
            "24",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    # The daemon announces its bound address on the first stdout line.
    line = process.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        process.kill()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    return process, match.group(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--external-url",
        default=None,
        help="use a daemon already running at this URL instead of spawning one",
    )
    args = parser.parse_args()

    external = args.external_url is not None
    checkpoint_dir = tempfile.mkdtemp(prefix="greenhpc-serve-")
    process = None
    if external:
        url = args.external_url
    else:
        process, url = start_daemon(checkpoint_dir)
    client = ServeClient(url)

    try:
        print(f"daemon: {url}  ({client.version()['version']})")

        # 1. A warm session, preloaded with a SuperCloud-like trace.
        status = client.create_session(
            session_id="live-demo",
            scenario=SCENARIO,
            policy="backfill",
            horizon_h=HORIZON_H,
            preload_jobs=120,
        )
        print(f"session {status['session_id']}: policy={status['policy']}, "
              f"horizon={status['horizon_h']}h, spec={status['spec_hash']}")

        # 2. Advance two simulated days, then feed in jobs that arrive later.
        status = client.advance("live-demo", until_h=48.0)
        print(f"advanced to t={status['now_h']}h: "
              f"{status['n_running']} running, {status['n_pending']} queued")
        client.submit_jobs(
            "live-demo",
            [
                {"job_id": "interactive-a", "user_id": "demo", "n_gpus": 2,
                 "duration_h": 4.0, "submit_time_h": 50.0},
                {"job_id": "interactive-b", "user_id": "demo", "n_gpus": 8,
                 "duration_h": 2.0, "submit_time_h": 52.0, "deadline_h": 72.0},
            ],
        )
        print("submitted 2 jobs mid-run (t=50h, t=52h)")

        # 3. Stream the telemetry recorded so far.
        rows = list(client.stream_telemetry("live-demo"))
        peak = max(rows, key=lambda row: row["facility_power_w"])
        print(f"streamed {len(rows)} ticks; peak facility power "
              f"{peak['facility_power_w'] / 1e3:.1f} kW at t={peak['now_h']}h "
              f"(PUE {peak['pue']:.3f})")

        # 4. A what-if routing question across live sessions.
        client.create_session(
            session_id="desert-twin",
            scenario="supercloud-small",
            site="phoenix-az",
            policy="backfill",
            horizon_h=HORIZON_H,
        )
        answer = client.route(
            {"job_id": "probe", "user_id": "demo", "n_gpus": 4,
             "duration_h": 3.0, "submit_time_h": 48.0},
            router="least-queued",
        )
        print(f"what-if: 'least-queued' would route the probe job to "
              f"{answer['session_id']!r} "
              f"({len(answer['candidates'])} candidate sessions)")

        # 5. Checkpoint, kill without warning, restart, resume.
        checkpoint = client.checkpoint("live-demo")
        print(f"checkpointed to {checkpoint['checkpoint']}")
        if external:
            print("(--external-url: skipping the kill/restore leg)")
        else:
            process.send_signal(signal.SIGKILL)  # no drain, no goodbye
            process.wait()
            print("daemon killed (SIGKILL)")
            process, url = start_daemon(checkpoint_dir)
            client = ServeClient(url)
            restored = client.health()["restored"]
            print(f"daemon restarted: restored sessions {restored}")
            status = client.session_status("live-demo")
            print(f"live-demo resumed at t={status['now_h']}h with "
                  f"{status['ticks_recorded']} ticks already streamed")

        # Finish the run where it left off.
        status = client.advance("live-demo", until_h=HORIZON_H)
        summary = client.finalize("live-demo")["summary"]
        print(f"finalized at t={status['now_h']}h: "
              f"{summary['completed_jobs']:.0f} jobs completed, "
              f"{summary['facility_energy_kwh']:.1f} kWh facility energy, "
              f"{summary['emissions_kg']:.1f} kg CO2e")
        return 0
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
