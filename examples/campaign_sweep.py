#!/usr/bin/env python
"""Campaigns: declarative multi-scenario sweeps over the experiment registry.

A `CampaignSpec` answers sweep-shaped questions ("compare N policies x
M sites x K seeds") in one object: a base scenario, a grid over scenario
fields, a grid over experiment parameters, and the experiments to run at
every point.  `run_campaign` expands it into reproducibly seeded points,
executes them (optionally across processes, one substrate-caching session
per distinct world per worker) and collects a columnar `CampaignResult`.

Run with::

    python examples/campaign_sweep.py

The same sweep from the command line::

    greenhpc sweep --experiments shifting --grid site=holyoke-ma,phoenix-az \\
        --grid seed=0,1 --grid deferrable=0.2,0.4 --workers 2 --json
"""

from __future__ import annotations

from repro.experiments import CampaignSpec, run_campaign
from repro.parallel import ParallelConfig


def build_campaign() -> CampaignSpec:
    """Load-shifting savings across two sites, two seeds and two policies."""
    campaign = CampaignSpec(
        experiments=("shifting",),
        base="single-year",
        scenario_grid={"site": ["holyoke-ma", "phoenix-az"], "seed": [0, 1]},
        param_grid={"deferrable": [0.2, 0.4]},
    )
    n_points = len(campaign.expand())
    print(f"campaign: {list(campaign.experiments)} over "
          f"{dict(campaign.scenario_grid)} x {dict(campaign.param_grid)} -> {n_points} points")
    print()
    return campaign


def run_and_summarize(campaign: CampaignSpec) -> None:
    result = run_campaign(campaign, ParallelConfig(n_workers=2, min_tasks_for_processes=4))

    print("per-point rows (identity columns + headline scalars):")
    for row in result.rows:
        print(
            f"  {row['site']:<12} seed={row['seed']}  deferrable={row['deferrable']:.1f}  "
            f"emissions savings = {row['emissions_savings_pct']:5.2f}%"
        )
    print()

    print("summarized by site (mean/min/max over seeds and deferrable fractions):")
    for record in result.summarize("site", values=["emissions_savings_pct"]):
        print(
            f"  {record['site']:<12} n={record['n_points']}  "
            f"mean={record['emissions_savings_pct_mean']:5.2f}%  "
            f"min={record['emissions_savings_pct_min']:5.2f}%  "
            f"max={record['emissions_savings_pct_max']:5.2f}%"
        )
    print()

    # Full drill-down: every point keeps its complete ExperimentResult.
    first = result.result_for(0)
    print(f"point 0 ran {first.name!r} with params {dict(first.params)}")
    print()
    print("CSV export (first two lines):")
    print("\n".join(result.to_csv().splitlines()[:2]))


def main() -> None:
    print("=" * 72)
    print("Campaign API: declarative sweeps over the experiment registry")
    print("=" * 72)
    campaign = build_campaign()
    run_and_summarize(campaign)


if __name__ == "__main__":
    main()
