#!/usr/bin/env python
"""Quickstart: measure the energy and carbon of a (simulated) training run.

This is the measurement workflow Section IV.B of the paper asks every
facility to make easy: run your experiment, get energy/carbon alongside the
accuracy number, and report both.  Real deployments poll NVML on real GPUs;
here the GPUs are simulated, so the script runs anywhere, but the tracking
code path is identical.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.telemetry import SimulatedNvml
from repro.tracking import EnergyTracker, ExperimentReport, ReportCollection
from repro.tracking.emissions import equivalent_miles_driven
from repro.workloads.training import TrainingJobModel, TrainingJobSpec


def train_with_tracking(label: str, *, n_gpus: int, power_cap_fraction: float | None) -> ExperimentReport:
    """'Train' a ResNet-50-like model on simulated GPUs while tracking energy."""
    workload = TrainingJobSpec(name="imagenet-resnet50", single_gpu_hours=90.0, utilization=0.93)
    model = TrainingJobModel(workload)
    plan = model.run(n_gpus, power_cap_fraction)

    nvml = SimulatedNvml.create(n_devices=n_gpus, gpu_model="V100", seed=0)
    tracker = EnergyTracker(nvml, region="ISO-NE", sampling_period_s=60.0, label=label)
    with tracker:
        for handle in nvml.devices:
            if power_cap_fraction is not None:
                nvml.device_set_power_limit_w(handle, power_cap_fraction * handle.spec.tdp_w)
            nvml.set_utilization(handle, workload.utilization)
        # Advance simulated time for the whole training run (hours -> seconds).
        tracker.advance(plan.wall_clock_hours * 3600.0)

    report = tracker.report()
    print(f"[{label}] {n_gpus}x V100, cap={power_cap_fraction or 'none'}")
    print(f"  wall clock : {plan.wall_clock_hours:8.1f} h")
    print(f"  GPU energy : {report.energy_kwh:8.1f} kWh   (mean power {report.mean_power_w:.0f} W)")
    print(f"  emissions  : {report.emissions_kg:8.1f} kg CO2e "
          f"(~{float(equivalent_miles_driven(report.emissions_g)):.0f} passenger-vehicle miles)")
    print()
    return ExperimentReport.from_tracker(
        report,
        task="imagenet",
        performance_metric="top1_accuracy",
        performance_value=0.762,
        hardware=f"{n_gpus}x V100",
        hyperparameters={"power_cap_fraction": power_cap_fraction, "n_gpus": n_gpus},
    )


def main() -> None:
    print("=" * 72)
    print("Quickstart: energy/carbon tracking for a simulated training run")
    print("=" * 72)
    collection = ReportCollection()
    collection.add(train_with_tracking("uncapped-8gpu", n_gpus=8, power_cap_fraction=None))
    collection.add(train_with_tracking("capped-70pct-8gpu", n_gpus=8, power_cap_fraction=0.7))
    collection.add(train_with_tracking("capped-70pct-10gpu", n_gpus=10, power_cap_fraction=0.7))

    print("Green leaderboard (performance per kWh):")
    print(collection.to_markdown(by="performance_per_kwh"))
    print()
    print(f"total energy reported : {collection.total_energy_kwh():.1f} kWh")
    print(f"total emissions       : {collection.total_emissions_kg():.1f} kg CO2e")


if __name__ == "__main__":
    main()
