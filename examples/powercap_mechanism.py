#!/usr/bin/env python
"""User-level mechanisms: power-cap trade-offs, the caps-for-GPUs menu, adverse selection.

Walks through the Section II.C story end to end:

1. the raw power-cap trade-off on a single GPU (why caps are an attractive
   control mechanism at all);
2. the two-part mechanism: offer a menu "accept stricter caps, receive more
   GPUs" to a heterogeneous user population and see what it does to system
   energy, completion times and participation;
3. the naive alternative (self-characterised queues) and its adverse-selection
   failure mode.

Run with::

    python examples/powercap_mechanism.py
"""

from __future__ import annotations

from repro.core.adverse_selection import AdverseSelectionStudy
from repro.core.mechanism import TwoPartMechanism
from repro.scheduler.powercap import powercap_energy_tradeoff


def main() -> None:
    print("=" * 72)
    print("1. Power caps on a V100: energy saved vs. time lost")
    print("=" * 72)
    print(f"{'cap':>5} {'cap W':>7} {'runtime penalty':>16} {'energy savings':>15}")
    for point in powercap_energy_tradeoff("V100"):
        print(f"{point.cap_fraction:5.2f} {point.cap_w:7.0f} {point.runtime_penalty_pct:15.1f}% "
              f"{point.energy_savings_pct:14.1f}%")
    print()

    print("=" * 72)
    print("2. The two-part mechanism: caps-for-GPUs menu over 120 users")
    print("=" * 72)
    mechanism = TwoPartMechanism()
    population = TwoPartMechanism.synthetic_population(120, green_fraction=0.4, seed=7)
    outcome = mechanism.evaluate_population(population)
    chosen = {}
    for choice in outcome.choices:
        chosen[choice.option.name] = chosen.get(choice.option.name, 0) + 1
    print(f"menu              : " + ", ".join(
        f"{o.name} (cap {o.power_cap_fraction:.0%}, x{o.gpu_multiplier} GPUs)" for o in mechanism.menu))
    print(f"choices           : {chosen}")
    print(f"participation     : {outcome.participation_rate:.0%} of users accept a cap")
    print(f"system energy     : {outcome.mechanism_energy_kwh:.0f} kWh vs "
          f"{outcome.baseline_energy_kwh:.0f} kWh baseline "
          f"({100 * outcome.energy_savings_fraction:.1f}% saved)")
    print(f"mean completion   : {100 * outcome.mean_time_change_fraction:+.1f}% "
          "(negative = users finish sooner)")
    print()

    print("=" * 72)
    print("3. Why not just let users pick queues? Adverse selection in numbers")
    print("=" * 72)
    study = AdverseSelectionStudy(seed=3, strategic_fraction=0.6)
    for regime, result in study.compare_regimes(n_users=500).items():
        print(f"{regime:>10}: misreports {result.misreport_rate:.0%}, "
              f"urgent-queue share of demand {result.urgent_queue_congestion:.0%}, "
              f"expected urgent wait {result.expected_urgent_wait_penalty_h:.1f} h")
    print()
    print("The strategic regime clogs the urgent queue exactly as the paper warns; the two-part")
    print("design removes the incentive to misreport because queue choice no longer buys speed.")


if __name__ == "__main__":
    main()
