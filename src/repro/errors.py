"""Exception hierarchy for the green-HPC reproduction toolkit.

All library errors derive from :class:`GreenHPCError` so that callers can
catch toolkit failures without also swallowing programming errors such as
``TypeError`` raised by misuse of the standard library.
"""

from __future__ import annotations

__all__ = [
    "GreenHPCError",
    "ConfigurationError",
    "UnitError",
    "SimulationError",
    "SteppingError",
    "SchedulingError",
    "FleetError",
    "ServeError",
    "CheckpointError",
    "ArtifactError",
    "ResourceError",
    "TelemetryError",
    "TrackingError",
    "ForecastError",
    "OptimizationError",
    "MechanismError",
    "DataError",
]


class GreenHPCError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(GreenHPCError, ValueError):
    """Raised when a configuration object fails validation.

    Inherits from :class:`ValueError` because invalid configuration is a
    value problem; callers who validate inputs generically can keep catching
    ``ValueError``.
    """


class UnitError(GreenHPCError, ValueError):
    """Raised for invalid unit values or impossible conversions."""


class SimulationError(GreenHPCError, RuntimeError):
    """Raised when the discrete-event cluster simulation reaches an invalid state."""


class SteppingError(SimulationError):
    """Raised on misuse of the simulator's stepping API.

    Covers ``begin()`` twice, ``submit()``/``advance()``/``finalize()``
    outside the ``begin -> [submit/advance]* -> finalize`` protocol, and
    ``advance()`` to a time behind the cursor.  Subclasses
    :class:`SimulationError` so existing callers that catch the general
    simulation failure keep working.
    """


class SchedulingError(GreenHPCError, RuntimeError):
    """Raised when a scheduler cannot produce a valid placement or violates invariants."""


class FleetError(GreenHPCError, RuntimeError):
    """Raised by the multi-site fleet co-simulation (routing and lockstep invariants)."""


class ServeError(GreenHPCError, RuntimeError):
    """Raised by the long-running simulation service (unknown sessions, bad requests)."""


class CheckpointError(GreenHPCError, RuntimeError):
    """Raised when simulator state cannot be snapshotted, serialized or restored."""


class ArtifactError(GreenHPCError, RuntimeError):
    """Raised by the content-addressed artifact store and the campaign DAG.

    Covers malformed keys, unwritable artifacts, and a DAG asked to
    materialize from cache (``simulate=False``) while run artifacts are
    missing.  Corrupt or truncated artifact *files* never raise — they read
    as cache misses.
    """


class ResourceError(GreenHPCError, RuntimeError):
    """Raised for invalid resource requests or double allocation/release."""


class TelemetryError(GreenHPCError, RuntimeError):
    """Raised by the simulated NVML / power-sampling layer."""


class TrackingError(GreenHPCError, RuntimeError):
    """Raised by the energy/carbon tracking layer (e.g. stopping a tracker twice)."""


class ForecastError(GreenHPCError, RuntimeError):
    """Raised when a forecasting model is used before fitting or on malformed data."""


class OptimizationError(GreenHPCError, RuntimeError):
    """Raised when the Eq. 1 / Eq. 2 optimizers cannot find a feasible configuration."""


class MechanismError(GreenHPCError, RuntimeError):
    """Raised for invalid mechanism-design setups (e.g. empty menus, bad budgets)."""


class DataError(GreenHPCError, ValueError):
    """Raised when analysis-layer inputs are malformed (length mismatches, NaNs, ...)."""
