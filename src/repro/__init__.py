"""repro — an energy- and carbon-aware HPC/datacenter toolkit.

A production-style reproduction of *"A Green(er) World for A.I."*
(Zhao et al., IEEE IPDPSW 2022, DOI 10.1109/IPDPSW55747.2022.00126): the
optimization framework, mechanisms, and empirical analyses the paper sketches,
built on simulated-but-calibrated substrates (GPU telemetry, cluster,
New-England-like grid, site weather, conference-driven demand).

Subpackages
-----------
``repro.core``
    The paper's contribution: Eq. 1 datacenter optimization, Eq. 2 per-user
    decomposition, the two-part power-cap mechanism, adverse selection,
    load shifting, deadline restructuring, opportunity costs, stress tests.
``repro.telemetry`` / ``repro.cluster`` / ``repro.scheduler``
    Simulated NVML power telemetry, the cluster + discrete-event simulator,
    and the scheduling policies (FIFO/backfill/energy/carbon/deadline-aware).
``repro.grid`` / ``repro.climate`` / ``repro.workloads``
    The environment ``ε``: fuel mix, carbon intensity, prices, storage,
    weather and climate scenarios, training/inference/trace/deadline workloads.
``repro.tracking`` / ``repro.forecasting`` / ``repro.analysis``
    Experiment energy/carbon tracking, forecasting models, and the
    figure/table builders (Fig. 1-5, Table I).
``repro.parallel``
    Process-pool parameter sweeps.
``repro.experiments``
    The unified experiment API: declarative scenarios, the experiment
    registry, and the substrate-caching session behind the ``greenhpc`` CLI.

Quick start
-----------
Open an :class:`~repro.experiments.ExperimentSession` over a scenario (a
registered name, or a custom :class:`~repro.experiments.ScenarioSpec`) and
run any registered experiment; every analysis returns a structured
:class:`~repro.experiments.ExperimentResult`:

>>> from repro import ExperimentSession
>>> session = ExperimentSession("default")        # the paper's 2020-2021 world
>>> figures = session.run("figures")
>>> figures.scalar("fig2_correlation") < 0        # consumption vs. green share
True
>>> shifting = session.run("shifting", signal="price")   # substrates reused
>>> sorted(shifting.to_dict())
['experiment', 'notes', 'params', 'rows', 'scalars', 'spec']

The same experiments are available from the command line (one subcommand per
registered experiment, with shared ``--seed/--months/--site/--json`` flags)::

    greenhpc figures --months 12 --json

The legacy :class:`GreenDatacenterModel` facade remains as a thin shim over
the session API.
"""

from .config import ExperimentConfig, FacilityConfig, SiteConfig
from .core.framework import GreenDatacenterModel
from .errors import GreenHPCError
from .experiments import (
    ExperimentResult,
    ExperimentSession,
    ScenarioSpec,
    get_scenario,
    list_experiments,
    list_scenarios,
    register_scenario,
)
from .timeutils import SimulationCalendar

__version__ = "1.1.0"

#: Citation of the reproduced paper.
PAPER_REFERENCE = (
    "D. Zhao, N. C. Frey, J. McDonald, M. Hubbell, D. Bestor, M. Jones, A. Prout, "
    "V. Gadepally, S. Samsi, 'A Green(er) World for A.I.', 2022 IEEE International "
    "Parallel and Distributed Processing Symposium Workshops (IPDPSW), "
    "DOI 10.1109/IPDPSW55747.2022.00126"
)

__all__ = [
    "__version__",
    "PAPER_REFERENCE",
    "GreenHPCError",
    "ExperimentConfig",
    "FacilityConfig",
    "SiteConfig",
    "SimulationCalendar",
    "GreenDatacenterModel",
    "ExperimentSession",
    "ExperimentResult",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "list_experiments",
]
