"""repro — an energy- and carbon-aware HPC/datacenter toolkit.

A production-style reproduction of *"A Green(er) World for A.I."*
(Zhao et al., IEEE IPDPSW 2022, DOI 10.1109/IPDPSW55747.2022.00126): the
optimization framework, mechanisms, and empirical analyses the paper sketches,
built on simulated-but-calibrated substrates (GPU telemetry, cluster,
New-England-like grid, site weather, conference-driven demand).

Subpackages
-----------
``repro.core``
    The paper's contribution: Eq. 1 datacenter optimization, Eq. 2 per-user
    decomposition, the two-part power-cap mechanism, adverse selection,
    load shifting, deadline restructuring, opportunity costs, stress tests.
``repro.telemetry`` / ``repro.cluster`` / ``repro.scheduler``
    Simulated NVML power telemetry, the cluster + discrete-event simulator,
    and the scheduling policies (FIFO/backfill/energy/carbon/deadline-aware).
``repro.grid`` / ``repro.climate`` / ``repro.workloads``
    The environment ``ε``: fuel mix, carbon intensity, prices, storage,
    weather and climate scenarios, training/inference/trace/deadline workloads.
``repro.tracking`` / ``repro.forecasting`` / ``repro.analysis``
    Experiment energy/carbon tracking, forecasting models, and the
    figure/table builders (Fig. 1-5, Table I).
``repro.parallel``
    Process-pool parameter sweeps.
``repro.artifacts``
    Content-addressed artifact caching: an on-disk :class:`~repro.artifacts.
    ArtifactStore` keyed by stable hashes of (scenario spec, experiment,
    params, derived seed, code version), the persistence layer behind
    incremental campaigns and the campaign-DAG reporting pipeline.
``repro.experiments``
    The unified experiment API: declarative scenarios, the experiment
    registry, the substrate-caching session behind the ``greenhpc`` CLI,
    and the campaign layer for declarative multi-scenario sweeps.
``repro.fleet``
    Multi-site fleet co-simulation: declarative :class:`~repro.fleet.
    FleetSpec` fleets of registered scenarios relocated across sites
    (``"supercloud-small@phoenix-az"``), per-site cluster simulators stepped
    in hourly lockstep, and geo-aware job routing through an open, composable
    router registry (``round-robin``, ``least-queued``, ``carbon-min``,
    ``price-min``, ``renewable-max``, filters like ``queue-cap(max=50)``).
``repro.serve``
    The long-running simulation service: a ``greenhpc serve`` HTTP daemon
    holding warm simulated worlds, with mid-run job submission, bounded
    ``advance`` requests, NDJSON per-tick telemetry streaming, what-if
    routing queries across live sessions, and periodic checkpoint/restore
    built on the simulator's versioned
    :class:`~repro.cluster.simulator.SimulatorSnapshot`.
``repro.obs``
    Stdlib tracing and metrics: an ambient
    :class:`~repro.obs.TraceRecorder` of nested spans, a
    :class:`~repro.obs.MetricsRegistry` of counters/gauges/histograms, and
    exporters (Chrome ``trace_event`` JSON, NDJSON, Prometheus text) behind
    ``--trace-out``/``greenhpc obs`` and the daemon's ``GET /metrics``.

Quick start
-----------
Open an :class:`~repro.experiments.ExperimentSession` over a scenario (a
registered name, or a custom :class:`~repro.experiments.ScenarioSpec`) and
run any registered experiment; every analysis returns a structured
:class:`~repro.experiments.ExperimentResult`:

>>> from repro import ExperimentSession
>>> session = ExperimentSession("default")        # the paper's 2020-2021 world
>>> figures = session.run("figures")
>>> figures.scalar("fig2_correlation") < 0        # consumption vs. green share
True
>>> shifting = session.run("shifting", signal="price")   # substrates reused
>>> sorted(shifting.to_dict())
['experiment', 'notes', 'params', 'rows', 'scalars', 'spec']

The same experiments are available from the command line (one subcommand per
registered experiment, with shared ``--seed/--months/--site/--workers/--json``
flags)::

    greenhpc figures --months 12 --json

Campaigns
---------
Sweep-shaped questions — power-cap fractions, stress batteries, "compare N
policies × M sites × K seeds" — go through the campaign layer: declare a
:class:`~repro.experiments.CampaignSpec` (base scenario + a grid over spec
fields + a grid over experiment parameters + the experiments to run) and
:func:`~repro.experiments.run_campaign` expands it into reproducibly seeded
points (identical whether executed serially or across processes), reuses one
substrate-caching session per distinct world per worker, and collects a
columnar :class:`~repro.experiments.CampaignResult` with ``rows``,
``group_by``/``summarize`` and ``to_json``/``to_csv``:

>>> from repro.experiments import CampaignSpec, run_campaign
>>> campaign = CampaignSpec(
...     experiments=("table1", "powercap"),
...     scenario_grid={"seed": [0, 1], "n_months": [3, 4]},
... )
>>> len(run_campaign(campaign).rows)
8

From the command line::

    greenhpc sweep --experiments table1,powercap \\
        --grid seed=0,1 --grid n_months=3,4 --workers 2 --json

Campaigns re-run *incrementally* against a content-addressed artifact
store: ``run_campaign(campaign, store=ArtifactStore("./cache"))`` (or
``greenhpc sweep --cache-dir ./cache``) serves unchanged points from disk
— an unchanged re-sweep performs zero simulator executions and returns
byte-identical rows — and a :class:`~repro.experiments.CampaignDAG` chains
cached ``summarize`` → ``compare`` → ``report`` stages on top, ending in a
browsable figure battery (``greenhpc report``) rendered without
re-simulating anything.

Fleets
------
Multi-site questions — "what if this facility were three facilities routing
work to follow sun, wind and cheap/clean power?" — go through
:mod:`repro.fleet`: a :class:`~repro.fleet.FleetSpec` names member sites
(``"supercloud-small@phoenix-az"`` relocates a registered scenario to a
registered site, adopting that region's grid profile) and a routing policy;
the :class:`~repro.fleet.FleetSimulator` co-simulates the sites in hourly
lockstep and dispatches each arriving job through the router.  Routers
compose in the same spec grammar as scheduling policies
(``"carbon-min+queue-cap(max=50)"``), the ``fleet`` experiment makes
``router`` a sweepable campaign lever, and fleet totals equal the sum of the
member-site totals bit-for-bit::

    greenhpc fleet --router "round-robin,carbon-min" --json
    greenhpc sweep --experiments fleet \\
        --grid "router=round-robin,carbon-min,renewable-max"

Serving
-------
Everything above is batch: build a world, run it, exit.  :mod:`repro.serve`
keeps worlds *warm* instead — ``greenhpc serve`` starts a daemon that holds
any number of live :class:`~repro.cluster.simulator.ClusterSimulator`
sessions (concurrent sessions over the same scenario share one cached
substrate build), accepts job submissions and ``advance-to`` requests over a
JSON/HTTP API, streams per-tick power telemetry as NDJSON, answers what-if
routing queries with the fleet's router grammar, and checkpoints every
session's exact simulator state to disk so month-long co-simulations survive
a restart bit-identically::

    greenhpc serve --port 8714 --checkpoint-dir ./ckpt
    python examples/serve_client.py      # submit, stream, kill, restore

Observability
-------------
Every layer above is instrumented against :mod:`repro.obs`.  Tracing is off
by default — the ambient recorder is a shared no-op whose spans cost no
clock reads and no allocations, and every pinned-parity suite runs
bit-identically either way.  Enable it per run with ``--trace-out``::

    greenhpc fleet --workers 4 --trace-out fleet.json   # Chrome trace_event
    greenhpc obs fleet.json                             # per-phase digest

The exported ``*.json`` loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing`` with one timeline per worker process; ``*.ndjson``
writes a greppable event log instead.  Programmatic use is one context
manager — spans land in the recorder you install::

    from repro.obs import TraceRecorder, recording

    rec = TraceRecorder()
    with recording(rec):
        session.run("fleet")

Traced runs also attach a compact :class:`~repro.obs.RunProfile` (per-phase
totals plus a metrics snapshot) to experiment/fleet/campaign results, and
the serve daemon exposes a Prometheus text endpoint at ``GET /metrics``
(request counters by method/route/status, per-session uptime/progress
gauges) ready for scraping.

The legacy :class:`GreenDatacenterModel` facade remains as a thin shim over
the session API.
"""

from .artifacts import ArtifactStore
from .config import ExperimentConfig, FacilityConfig, SiteConfig
from .core.framework import GreenDatacenterModel
from .errors import GreenHPCError
from .experiments import (
    CampaignDAG,
    CampaignResult,
    CampaignSpec,
    ExperimentResult,
    ExperimentSession,
    ScenarioSpec,
    get_scenario,
    list_experiments,
    list_scenarios,
    register_scenario,
    run_campaign,
)
from .fleet import FleetResult, FleetSimulator, FleetSpec, get_fleet, list_fleets
from .timeutils import SimulationCalendar

def _detect_version() -> str:
    """The package version, from installed metadata or the source checkout.

    ``pyproject.toml`` is the single authority: installed distributions
    expose it through ``importlib.metadata``; a source checkout run via
    ``PYTHONPATH=src`` falls back to parsing the file two levels up.
    """
    from importlib import metadata

    try:
        return metadata.version("repro-greenhpc")
    except metadata.PackageNotFoundError:
        pass
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        match = re.search(
            r"^version\s*=\s*\"([^\"]+)\"", pyproject.read_text(), re.MULTILINE
        )
    except OSError:
        match = None
    return match.group(1) if match else "0+unknown"


__version__ = _detect_version()

#: Citation of the reproduced paper.
PAPER_REFERENCE = (
    "D. Zhao, N. C. Frey, J. McDonald, M. Hubbell, D. Bestor, M. Jones, A. Prout, "
    "V. Gadepally, S. Samsi, 'A Green(er) World for A.I.', 2022 IEEE International "
    "Parallel and Distributed Processing Symposium Workshops (IPDPSW), "
    "DOI 10.1109/IPDPSW55747.2022.00126"
)

__all__ = [
    "__version__",
    "PAPER_REFERENCE",
    "GreenHPCError",
    "ExperimentConfig",
    "FacilityConfig",
    "SiteConfig",
    "SimulationCalendar",
    "GreenDatacenterModel",
    "ExperimentSession",
    "ExperimentResult",
    "ScenarioSpec",
    "CampaignSpec",
    "CampaignResult",
    "CampaignDAG",
    "ArtifactStore",
    "run_campaign",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "list_experiments",
    "FleetSpec",
    "FleetSimulator",
    "FleetResult",
    "get_fleet",
    "list_fleets",
]
