"""Workload models: training jobs, inference serving, cluster traces, deadlines, trends.

* :mod:`~repro.workloads.training` — analytic ML training-job model (epochs,
  throughput vs. power cap and GPU count, energy to target accuracy).
* :mod:`~repro.workloads.inference` — inference-serving fleet model (query
  rates, batching, utilization), used by the life-cycle benchmark.
* :mod:`~repro.workloads.supercloud` — synthetic MIT-SuperCloud-like traces:
  both hourly facility-load series calibrated to the monthly statistics shown
  in the paper's figures, and job-level traces for the cluster simulator.
* :mod:`~repro.workloads.conferences` — the Table I conference calendar and
  deadline counting.
* :mod:`~repro.workloads.demand` — deadline-anticipation demand model (Fig. 5).
* :mod:`~repro.workloads.trends` — the AI compute-demand trend of Fig. 1.
"""

from .training import TrainingJobSpec, TrainingRunResult, TrainingJobModel, ScalingEfficiencyModel
from .inference import InferenceWorkloadSpec, InferenceFleetModel, InferenceFleetResult
from .supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator, SuperCloudLoadTrace
from .conferences import Conference, CONFERENCE_CATALOG, ConferenceCalendar
from .demand import DeadlineDemandConfig, DeadlineDemandModel
from .trends import ComputeTrendModel, NotableSystem, NOTABLE_SYSTEMS

__all__ = [
    "TrainingJobSpec",
    "TrainingRunResult",
    "TrainingJobModel",
    "ScalingEfficiencyModel",
    "InferenceWorkloadSpec",
    "InferenceFleetModel",
    "InferenceFleetResult",
    "SuperCloudTraceConfig",
    "SuperCloudTraceGenerator",
    "SuperCloudLoadTrace",
    "Conference",
    "CONFERENCE_CATALOG",
    "ConferenceCalendar",
    "DeadlineDemandConfig",
    "DeadlineDemandModel",
    "ComputeTrendModel",
    "NotableSystem",
    "NOTABLE_SYSTEMS",
]
