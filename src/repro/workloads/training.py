"""Analytic model of ML training jobs.

The mechanisms the paper proposes (power caps, carbon-aware deferral, the
cap-for-GPUs two-part mechanism) act on *training jobs*; what matters for the
reproduction is how a training job's wall-clock time and energy respond to
the number of GPUs it gets and the power cap it runs under.  The model here
composes:

* a **scaling-efficiency** model (Amdahl-style) mapping GPU count to parallel
  speed-up — doubling GPUs does not halve the time, which is why trading
  "stricter caps for more GPUs" is a genuine trade-off rather than a free lunch;
* the **power-cap response** from :class:`~repro.telemetry.gpu_power.GpuPowerModel`
  (throughput falls gently as the cap tightens);
* an **epochs-to-target** workload size, so energy-to-result (not just power)
  is the reported quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigurationError
from ..telemetry.gpu_power import GpuPowerModel, get_gpu_spec

__all__ = ["ScalingEfficiencyModel", "TrainingJobSpec", "TrainingRunResult", "TrainingJobModel"]


class ScalingEfficiencyModel:
    """Strong-scaling efficiency of data-parallel training.

    Uses the standard serial-fraction (Amdahl) form plus a per-GPU
    communication overhead that grows logarithmically with the number of
    workers (all-reduce cost), which reproduces the near-linear-then-flat
    scaling curves reported in distributed-DL benchmarking studies.
    """

    def __init__(self, serial_fraction: float = 0.02, comm_overhead_per_log2_gpu: float = 0.015) -> None:
        require_fraction(serial_fraction, "serial_fraction")
        if comm_overhead_per_log2_gpu < 0:
            raise ConfigurationError("comm_overhead_per_log2_gpu must be non-negative")
        self.serial_fraction = float(serial_fraction)
        self.comm_overhead_per_log2_gpu = float(comm_overhead_per_log2_gpu)

    def speedup(self, n_gpus: int) -> float:
        """Speed-up over one GPU when using ``n_gpus`` GPUs."""
        if n_gpus <= 0:
            raise ConfigurationError(f"n_gpus must be positive, got {n_gpus!r}")
        amdahl = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / n_gpus)
        comm_penalty = 1.0 + self.comm_overhead_per_log2_gpu * np.log2(n_gpus)
        return float(amdahl / comm_penalty)

    def efficiency(self, n_gpus: int) -> float:
        """Parallel efficiency = speedup / n_gpus (1.0 at a single GPU)."""
        return self.speedup(n_gpus) / n_gpus


@dataclass(frozen=True)
class TrainingJobSpec:
    """Static description of one training workload.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"resnet50-imagenet"``).
    single_gpu_hours:
        Wall-clock hours to reach the target metric on a single uncapped GPU.
    utilization:
        GPU utilization the workload sustains while training.
    gpu_model:
        GPU model the job runs on.
    host_overhead_w_per_gpu:
        Host (CPU/DRAM/NIC) power attributed per GPU while training.
    checkpoint_overhead_fraction:
        Fraction of time lost to checkpointing/validation (energy counted at
        idle-ish utilization).
    """

    name: str
    single_gpu_hours: float
    utilization: float = 0.92
    gpu_model: str = "V100"
    host_overhead_w_per_gpu: float = 90.0
    checkpoint_overhead_fraction: float = 0.03

    def __post_init__(self) -> None:
        require_positive(self.single_gpu_hours, "single_gpu_hours")
        require_fraction(self.utilization, "utilization")
        require_fraction(self.checkpoint_overhead_fraction, "checkpoint_overhead_fraction")
        if self.host_overhead_w_per_gpu < 0:
            raise ConfigurationError("host_overhead_w_per_gpu must be non-negative")


@dataclass(frozen=True)
class TrainingRunResult:
    """Outcome of one (simulated) training run configuration."""

    spec_name: str
    n_gpus: int
    power_cap_fraction: Optional[float]
    wall_clock_hours: float
    gpu_energy_kwh: float
    host_energy_kwh: float

    @property
    def total_energy_kwh(self) -> float:
        """GPU + host energy for the run."""
        return self.gpu_energy_kwh + self.host_energy_kwh

    @property
    def gpu_hours(self) -> float:
        """GPU-hours consumed by the run."""
        return self.n_gpus * self.wall_clock_hours


class TrainingJobModel:
    """Predicts wall-clock time and energy of a training run configuration."""

    def __init__(
        self,
        spec: TrainingJobSpec,
        *,
        scaling: ScalingEfficiencyModel | None = None,
    ) -> None:
        self.spec = spec
        self.scaling = scaling or ScalingEfficiencyModel()
        self.gpu_spec = get_gpu_spec(spec.gpu_model)
        self.power_model = GpuPowerModel(self.gpu_spec)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def wall_clock_hours(self, n_gpus: int, power_cap_fraction: Optional[float] = None) -> float:
        """Wall-clock hours to finish the workload with the given resources."""
        speedup = self.scaling.speedup(n_gpus)
        base_hours = self.spec.single_gpu_hours / speedup
        if power_cap_fraction is None:
            slowdown = 1.0
        else:
            cap_w = self.power_model.clamp_power_limit(power_cap_fraction * self.gpu_spec.tdp_w)
            slowdown = float(self.power_model.slowdown_factor(cap_w, self.spec.utilization))
        overhead = 1.0 + self.spec.checkpoint_overhead_fraction
        return base_hours * slowdown * overhead

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def run(self, n_gpus: int, power_cap_fraction: Optional[float] = None) -> TrainingRunResult:
        """Simulate one run configuration and return its time/energy outcome."""
        hours = self.wall_clock_hours(n_gpus, power_cap_fraction)
        if power_cap_fraction is None:
            cap_w = None
        else:
            cap_w = float(
                self.power_model.clamp_power_limit(power_cap_fraction * self.gpu_spec.tdp_w)
            )
        gpu_power_w = float(self.power_model.power_w(self.spec.utilization, cap_w))
        gpu_energy_kwh = n_gpus * gpu_power_w * hours / 1e3
        host_energy_kwh = n_gpus * self.spec.host_overhead_w_per_gpu * hours / 1e3
        return TrainingRunResult(
            spec_name=self.spec.name,
            n_gpus=n_gpus,
            power_cap_fraction=power_cap_fraction,
            wall_clock_hours=hours,
            gpu_energy_kwh=gpu_energy_kwh,
            host_energy_kwh=host_energy_kwh,
        )

    def sweep_power_caps(
        self, n_gpus: int, cap_fractions: tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)
    ) -> list[TrainingRunResult]:
        """Run the same workload under a sweep of power caps."""
        results = []
        for fraction in cap_fractions:
            cap = None if fraction >= 1.0 else fraction
            results.append(self.run(n_gpus, cap))
        return results

    def sweep_gpu_counts(
        self, gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32), power_cap_fraction: Optional[float] = None
    ) -> list[TrainingRunResult]:
        """Run the same workload across GPU counts (scaling study)."""
        return [self.run(n, power_cap_fraction) for n in gpu_counts]

    def equivalent_gpu_trade(
        self, base_gpus: int, cap_fraction: float
    ) -> int:
        """GPUs needed under ``cap_fraction`` to match the uncapped wall-clock time.

        The quantitative heart of the paper's two-part mechanism: how many
        extra GPUs compensate a user for accepting a stricter cap.  Returns
        the smallest GPU count whose capped wall-clock time is no longer than
        the uncapped time on ``base_gpus`` GPUs (capped at 4x the base).
        """
        if not 0.0 < cap_fraction <= 1.0:
            raise ConfigurationError("cap_fraction must lie in (0, 1]")
        target_hours = self.wall_clock_hours(base_gpus, None)
        for n in range(base_gpus, base_gpus * 4 + 1):
            if self.wall_clock_hours(n, cap_fraction) <= target_hours + 1e-9:
                return n
        return base_gpus * 4


#: A small catalogue of representative training workloads used by examples
#: and benchmarks (single-GPU hours are order-of-magnitude realistic).
STANDARD_WORKLOADS: dict[str, TrainingJobSpec] = {
    "cifar-resnet": TrainingJobSpec(name="cifar-resnet", single_gpu_hours=2.0, utilization=0.85),
    "imagenet-resnet50": TrainingJobSpec(name="imagenet-resnet50", single_gpu_hours=90.0, utilization=0.93),
    "bert-base-pretrain": TrainingJobSpec(name="bert-base-pretrain", single_gpu_hours=1900.0, utilization=0.95),
    "gpt-medium-pretrain": TrainingJobSpec(
        name="gpt-medium-pretrain", single_gpu_hours=7200.0, utilization=0.96, gpu_model="A100"
    ),
}
