"""Inference-serving workload model.

Section IV.B of the paper points out that inference, not training, dominates
production ML infrastructure (90% of infrastructure cost, 80-90% of energy)
and that serving fleets run at poor GPU utilization (10-30% on AWS p3
instances, 28% average on TPUs) because online queries cannot exploit the
batch parallelism training enjoys.  The model here captures exactly those
levers: a diurnal query-rate profile, a batching model that converts arrival
rate into achieved utilization, a provisioning rule (peak-rate head-room),
and energy accounting over a serving period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..telemetry.gpu_power import GpuPowerModel, get_gpu_spec

__all__ = ["InferenceWorkloadSpec", "InferenceFleetResult", "InferenceFleetModel"]


@dataclass(frozen=True)
class InferenceWorkloadSpec:
    """Static description of an inference service.

    Attributes
    ----------
    name:
        Service name.
    mean_queries_per_s:
        Mean arrival rate over a day.
    diurnal_amplitude:
        Relative peak-to-mean swing of the arrival rate (0.6 means the peak
        hour sees 1.6x the mean rate and the trough 0.4x).
    peak_to_mean_provisioning:
        The fleet is sized for ``peak_rate * this`` head-room (operators
        provision for peaks plus a safety margin, which is why average
        utilization is poor).
    queries_per_gpu_s_at_full_util:
        Throughput of one GPU at 100% utilization (model-dependent).
    utilization_at_saturation:
        Utilization achieved when a GPU is fed its full throughput; online
        serving rarely exceeds ~0.7 because of batching latency limits.
    gpu_model:
        GPU model used by the fleet.
    host_overhead_w_per_gpu:
        Host power per GPU.
    """

    name: str
    mean_queries_per_s: float
    diurnal_amplitude: float = 0.6
    peak_to_mean_provisioning: float = 1.4
    queries_per_gpu_s_at_full_util: float = 200.0
    utilization_at_saturation: float = 0.70
    gpu_model: str = "T4"
    host_overhead_w_per_gpu: float = 45.0

    def __post_init__(self) -> None:
        require_positive(self.mean_queries_per_s, "mean_queries_per_s")
        require_fraction(self.diurnal_amplitude, "diurnal_amplitude")
        if self.peak_to_mean_provisioning < 1.0:
            raise ConfigurationError("peak_to_mean_provisioning must be >= 1.0")
        require_positive(self.queries_per_gpu_s_at_full_util, "queries_per_gpu_s_at_full_util")
        require_fraction(self.utilization_at_saturation, "utilization_at_saturation")
        if self.host_overhead_w_per_gpu < 0:
            raise ConfigurationError("host_overhead_w_per_gpu must be non-negative")


@dataclass(frozen=True)
class InferenceFleetResult:
    """Outcome of serving the workload for a period."""

    spec_name: str
    n_gpus: int
    period_days: float
    total_queries: float
    mean_utilization: float
    p95_utilization: float
    gpu_energy_kwh: float
    host_energy_kwh: float

    @property
    def total_energy_kwh(self) -> float:
        """GPU + host energy over the serving period."""
        return self.gpu_energy_kwh + self.host_energy_kwh

    @property
    def energy_per_1k_queries_wh(self) -> float:
        """Watt-hours per thousand queries served."""
        if self.total_queries == 0:
            return float("nan")
        return self.total_energy_kwh * 1e3 / (self.total_queries / 1e3)


class InferenceFleetModel:
    """Sizes and simulates an inference-serving GPU fleet."""

    def __init__(self, spec: InferenceWorkloadSpec, *, seed: SeedLike = None) -> None:
        self.spec = spec
        self.gpu_spec = get_gpu_spec(spec.gpu_model)
        self.power_model = GpuPowerModel(self.gpu_spec)
        self._rng = make_rng(seed, "inference", spec.name)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def peak_queries_per_s(self) -> float:
        """Peak arrival rate implied by the diurnal profile."""
        return self.spec.mean_queries_per_s * (1.0 + self.spec.diurnal_amplitude)

    def required_gpus(self) -> int:
        """Fleet size: provision for the peak rate with the configured head-room."""
        spec = self.spec
        effective_throughput = spec.queries_per_gpu_s_at_full_util * spec.utilization_at_saturation
        needed = self.peak_queries_per_s() * spec.peak_to_mean_provisioning / effective_throughput
        return max(1, int(np.ceil(needed)))

    # ------------------------------------------------------------------
    # Serving simulation
    # ------------------------------------------------------------------
    def hourly_query_rate(self, n_hours: int) -> np.ndarray:
        """Hourly arrival rates (queries/s) with a diurnal cycle and noise."""
        if n_hours <= 0:
            raise ConfigurationError("n_hours must be positive")
        hours = np.arange(n_hours)
        hod = hours % 24
        diurnal = 1.0 + self.spec.diurnal_amplitude * np.cos(2.0 * np.pi * (hod - 14.0) / 24.0)
        noise = self._rng.lognormal(mean=0.0, sigma=0.08, size=n_hours)
        return self.spec.mean_queries_per_s * diurnal * noise

    def serve(self, period_days: float = 30.0, n_gpus: int | None = None) -> InferenceFleetResult:
        """Serve the workload for ``period_days`` and account energy/utilization."""
        require_positive(period_days, "period_days")
        fleet = n_gpus if n_gpus is not None else self.required_gpus()
        if fleet <= 0:
            raise ConfigurationError("n_gpus must be positive")
        n_hours = int(round(period_days * 24))
        rates = self.hourly_query_rate(n_hours)
        spec = self.spec

        per_gpu_rate = rates / fleet
        # Utilization: fraction of the GPU's saturated throughput demanded,
        # capped at the saturation utilization (beyond that, queries queue).
        demanded = per_gpu_rate / spec.queries_per_gpu_s_at_full_util
        utilization = np.clip(demanded, 0.0, 1.0) * spec.utilization_at_saturation / spec.utilization_at_saturation
        utilization = np.minimum(demanded, spec.utilization_at_saturation)

        gpu_power_w = np.asarray(self.power_model.power_w(utilization, None))
        gpu_energy_kwh = float(np.sum(gpu_power_w) * fleet / 1e3)  # 1-hour steps
        host_energy_kwh = float(fleet * spec.host_overhead_w_per_gpu * n_hours / 1e3)
        served_rates = np.minimum(
            rates, fleet * spec.queries_per_gpu_s_at_full_util * spec.utilization_at_saturation
        )
        total_queries = float(np.sum(served_rates) * 3600.0)
        return InferenceFleetResult(
            spec_name=spec.name,
            n_gpus=fleet,
            period_days=period_days,
            total_queries=total_queries,
            mean_utilization=float(np.mean(utilization)),
            p95_utilization=float(np.percentile(utilization, 95)),
            gpu_energy_kwh=gpu_energy_kwh,
            host_energy_kwh=host_energy_kwh,
        )

    def consolidation_savings(self, period_days: float = 30.0) -> dict[str, float]:
        """Energy saved by right-sizing the fleet to the mean rate (an ablation).

        Compares the peak-provisioned fleet against a fleet sized for the
        mean arrival rate (accepting queueing at peaks) — the utilization /
        energy trade the paper's inference discussion gestures at.
        """
        provisioned = self.serve(period_days)
        effective = self.spec.queries_per_gpu_s_at_full_util * self.spec.utilization_at_saturation
        lean_fleet = max(1, int(np.ceil(self.spec.mean_queries_per_s / effective)))
        lean = self.serve(period_days, n_gpus=lean_fleet)
        savings = 1.0 - lean.total_energy_kwh / provisioned.total_energy_kwh
        return {
            "provisioned_gpus": float(provisioned.n_gpus),
            "lean_gpus": float(lean.n_gpus),
            "provisioned_energy_kwh": provisioned.total_energy_kwh,
            "lean_energy_kwh": lean.total_energy_kwh,
            "energy_savings_fraction": float(savings),
            "provisioned_mean_utilization": provisioned.mean_utilization,
            "lean_mean_utilization": lean.mean_utilization,
        }
