"""The conference calendar of Table I and deadline counting for Fig. 5.

Table I of the paper lists the notable A.I. conferences (by area) whose
submission deadlines it counts per month for the Fig. 5 analysis.  The
catalogue below reproduces that list with each venue's typical submission
deadline month.  Exact deadline dates move a little year to year; what Fig. 5
uses — and what the reproduction preserves — is the *distribution* of
deadlines over the months of the year: a heavy spring/early-summer cluster,
a secondary early-autumn cluster, and sparse winters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import DataError
from ..timeutils import SimulationCalendar

__all__ = ["Conference", "CONFERENCE_CATALOG", "ConferenceCalendar"]


@dataclass(frozen=True)
class Conference:
    """One conference venue.

    Attributes
    ----------
    name:
        Venue acronym as listed in Table I.
    area:
        Area/discipline row of Table I.
    deadline_month:
        Typical submission-deadline month (1-12).
    deadline_overrides:
        Optional year-specific overrides ``{year: month}`` for editions whose
        deadline moved (used sparingly; the analysis is month-resolution).
    years_active:
        Years in which the venue actually had a deadline; ``None`` means every
        year.  Biennial venues (ICCV, COLING, ICPR, FG, ...) use this, and it
        is what makes the 2020 and 2021 deadline profiles differ — the
        asymmetry Fig. 5 highlights (the sharp early-2021 ramp ahead of a
        2021-specific spring deadline cluster).
    """

    name: str
    area: str
    deadline_month: int
    deadline_overrides: Mapping[int, int] = field(default_factory=dict)
    years_active: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.deadline_month <= 12:
            raise DataError(f"{self.name}: deadline_month must be in 1..12")
        for year, month in self.deadline_overrides.items():
            if not 1 <= month <= 12:
                raise DataError(f"{self.name}: override for {year} must be in 1..12")

    def has_deadline_in(self, year: int) -> bool:
        """Whether the venue has a submission deadline during ``year``."""
        return self.years_active is None or year in self.years_active

    def deadline_month_for(self, year: int) -> int:
        """Deadline month for a specific year (override or the typical month)."""
        return self.deadline_overrides.get(year, self.deadline_month)


#: The Table I catalogue.  Areas follow the table's rows; deadline months are
#: the venues' typical paper-submission deadlines.
CONFERENCE_CATALOG: tuple[Conference, ...] = (
    # NLP / Speech
    Conference("EACL", "NLP/Speech", 10),
    Conference("InterSpeech", "NLP/Speech", 3),
    Conference("EMNLP", "NLP/Speech", 5),
    Conference("AKBC", "NLP/Speech", 11),
    Conference("ICASSP", "NLP/Speech", 10),
    Conference("ISMIR", "NLP/Speech", 4),
    Conference("AACL-IJCNLP", "NLP/Speech", 5),
    Conference("COLING", "NLP/Speech", 7, years_active=(2020, 2022)),
    Conference("CoNLL", "NLP/Speech", 6),
    Conference("WMT", "NLP/Speech", 6),
    # Computer Vision
    Conference("ICME", "Computer Vision", 12),
    Conference("ICIP", "Computer Vision", 2),
    Conference("SIGGRAPH", "Computer Vision", 1),
    Conference("MIDL", "Computer Vision", 12),
    # ICCV runs in odd years only: its March 2021 deadline is part of the
    # 2021-specific spring cluster Fig. 5 points at.
    Conference("ICCV", "Computer Vision", 3, years_active=(2019, 2021, 2023)),
    Conference("FG", "Computer Vision", 7, years_active=(2020, 2021)),
    Conference("ICMI", "Computer Vision", 5),
    Conference("BMVC", "Computer Vision", 4),
    Conference("WACV", "Computer Vision", 8),
    # Robotics
    Conference("IROS", "Robotics", 3),
    Conference("RSS", "Robotics", 1),
    Conference("CoRL", "Robotics", 6),
    Conference("ICRA", "Robotics", 9),
    # General ML
    Conference("COLT", "General ML", 2),
    Conference("ICCC", "General ML", 2),
    # ICPR and COLING run in even years (deadlines fall in 2020 only within
    # the 2020-21 window).
    Conference("ICPR", "General ML", 3, years_active=(2020, 2022)),
    Conference("AAMAS", "General ML", 11),
    Conference("AISTATS", "General ML", 10),
    Conference("CHIL", "General ML", 10),
    Conference("ECML-PKDD", "General ML", 4),
    # NeurIPS moved its abstract/paper deadline earlier (May) in 2021 after a
    # June 2020 deadline — another contributor to the 2021 spring cluster.
    Conference("NeurIPS", "General ML", 6, deadline_overrides={2021: 5}),
    Conference("ACML", "General ML", 6),
    Conference("AAAI", "General ML", 9),
    Conference("ICLR", "General ML", 10),
    # Data Mining
    Conference("SDM", "Data Mining", 10),
    Conference("KDD", "Data Mining", 2),
    Conference("SIGIR", "Data Mining", 1),
    Conference("RecSys", "Data Mining", 4),
    Conference("CIKM", "Data Mining", 5),
    Conference("ICDM", "Data Mining", 6),
    Conference("WSDM", "Data Mining", 8),
    Conference("WWW", "Data Mining", 10),
)


class ConferenceCalendar:
    """Deadline counting and restructuring over a simulation horizon.

    Parameters
    ----------
    conferences:
        The venue catalogue (defaults to the Table I list above).
    """

    def __init__(self, conferences: Sequence[Conference] | None = None) -> None:
        self.conferences: tuple[Conference, ...] = (
            tuple(conferences) if conferences is not None else CONFERENCE_CATALOG
        )
        if not self.conferences:
            raise DataError("ConferenceCalendar requires at least one conference")
        names = [c.name for c in self.conferences]
        if len(set(names)) != len(names):
            raise DataError(f"duplicate conference names in catalogue: {names}")

    # ------------------------------------------------------------------
    # Table I views
    # ------------------------------------------------------------------
    def by_area(self) -> dict[str, list[str]]:
        """Conference names grouped by area — the content of Table I."""
        table: dict[str, list[str]] = {}
        for conference in self.conferences:
            table.setdefault(conference.area, []).append(conference.name)
        return table

    def areas(self) -> list[str]:
        """Distinct areas, in catalogue order."""
        seen: list[str] = []
        for conference in self.conferences:
            if conference.area not in seen:
                seen.append(conference.area)
        return seen

    def __len__(self) -> int:
        return len(self.conferences)

    # ------------------------------------------------------------------
    # Deadline counts (Fig. 5 x-axis)
    # ------------------------------------------------------------------
    def deadlines_per_month(self, calendar: SimulationCalendar) -> np.ndarray:
        """Number of conference deadlines falling in each month of the horizon."""
        counts = np.zeros(calendar.n_months, dtype=int)
        for index, month in enumerate(calendar.months):
            for conference in self.conferences:
                if not conference.has_deadline_in(month.year):
                    continue
                if conference.deadline_month_for(month.year) == month.month:
                    counts[index] += 1
        return counts

    def deadline_hours(self, calendar: SimulationCalendar) -> list[tuple[str, float]]:
        """(conference, deadline hour) pairs within the horizon.

        The deadline is placed at the middle of its month, which is all the
        month-resolution demand model needs.
        """
        out: list[tuple[str, float]] = []
        for index, month in enumerate(calendar.months):
            mid_hour = calendar.month_start_hour(index) + calendar.month_length_hours(index) / 2.0
            for conference in self.conferences:
                if not conference.has_deadline_in(month.year):
                    continue
                if conference.deadline_month_for(month.year) == month.month:
                    out.append((conference.name, mid_hour))
        return out

    def monthly_count_by_month_of_year(self) -> np.ndarray:
        """Deadline counts for a generic year (index 0 = January)."""
        counts = np.zeros(12, dtype=int)
        for conference in self.conferences:
            counts[conference.deadline_month - 1] += 1
        return counts

    # ------------------------------------------------------------------
    # Restructuring options (Section III proposals)
    # ------------------------------------------------------------------
    def restructured(self, option: str) -> "ConferenceCalendar":
        """A new calendar implementing one of the paper's restructuring options.

        ``"uniform"`` spreads deadlines evenly over the twelve months;
        ``"winter"`` concentrates them in November-March (so the compute
        surge precedes/overlaps the cold, green months); ``"rolling"``
        removes fixed deadlines entirely, which the demand model interprets
        as no anticipation spikes (the calendar still lists the venues, each
        nominally "due" every month — encoded as month 0 sentinel handled by
        the demand model via an empty deadline list).
        """
        if option == "uniform":
            new = [
                Conference(c.name, c.area, (i % 12) + 1)
                for i, c in enumerate(self.conferences)
            ]
            return ConferenceCalendar(new)
        if option == "winter":
            winter_months = (11, 12, 1, 2, 3)
            new = [
                Conference(c.name, c.area, winter_months[i % len(winter_months)])
                for i, c in enumerate(self.conferences)
            ]
            return ConferenceCalendar(new)
        if option == "rolling":
            return RollingSubmissionCalendar(self.conferences)
        raise DataError(
            f"unknown restructuring option {option!r}; expected 'uniform', 'winter' or 'rolling'"
        )


class RollingSubmissionCalendar(ConferenceCalendar):
    """A calendar where every venue accepts rolling submissions (no deadlines)."""

    def deadlines_per_month(self, calendar: SimulationCalendar) -> np.ndarray:  # noqa: D102
        return np.zeros(calendar.n_months, dtype=int)

    def deadline_hours(self, calendar: SimulationCalendar) -> list[tuple[str, float]]:  # noqa: D102
        return []

    def monthly_count_by_month_of_year(self) -> np.ndarray:  # noqa: D102
        return np.zeros(12, dtype=int)
