"""Deadline-anticipation compute-demand model (Fig. 5).

Section III's hypothesis: "as deadlines approach, users are accelerating
their workloads, finishing or repeating experiments" — i.e. aggregate compute
demand ramps up in the weeks *before* a deadline and relaxes after it, so the
distribution of deadlines over the calendar shapes the distribution of energy
use.  The model here produces an hourly cluster-occupancy fraction composed
of:

* a **baseline** occupancy with mild secular growth (the field keeps growing),
* an **academic-calendar** component (holiday lull in late December/early
  January, a smaller mid-summer dip),
* a **deadline-anticipation** component: for every deadline in the calendar,
  demand rises along an exponential ramp over the preceding weeks and drops
  sharply right after the deadline,
* a **weekly/diurnal** texture and lognormal noise.

The same model also powers the deadline-restructuring experiment: feed it the
"uniform", "winter" or "rolling" calendars of
:meth:`~repro.workloads.conferences.ConferenceCalendar.restructured` and
compare the resulting energy/carbon profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require_fraction, require_non_negative
from ..errors import ConfigurationError, DataError
from ..rng import SeedLike, make_rng
from ..timeutils import SimulationCalendar
from .conferences import ConferenceCalendar

__all__ = ["DeadlineDemandConfig", "DeadlineDemandModel"]


@dataclass(frozen=True)
class DeadlineDemandConfig:
    """Parameters of the deadline-driven demand model.

    Attributes
    ----------
    baseline_occupancy:
        Mean fraction of the cluster's GPUs that are busy absent any deadline
        pressure, holidays or growth.
    annual_growth:
        Secular year-over-year growth in baseline occupancy (A.I. demand keeps
        rising; Fig. 1).
    deadline_boost_per_conference:
        Peak extra occupancy contributed by one approaching deadline.
    anticipation_time_constant_days:
        e-folding time of the pre-deadline ramp (demand roughly doubles over
        the last ~2 time constants before the deadline).
    post_deadline_relief_days:
        How quickly the extra demand decays after the deadline passes.
    holiday_dip / summer_dip:
        Fractional occupancy reductions during the late-December holidays and
        the mid-August lull.
    weekend_dip:
        Fractional reduction of demand on weekends.
    noise_sigma:
        Lognormal sigma of multiplicative hourly noise.
    max_occupancy:
        Ceiling on occupancy (the cluster cannot be more than full).
    """

    baseline_occupancy: float = 0.50
    annual_growth: float = 0.12
    deadline_boost_per_conference: float = 0.045
    anticipation_time_constant_days: float = 18.0
    post_deadline_relief_days: float = 4.0
    holiday_dip: float = 0.12
    summer_dip: float = 0.05
    weekend_dip: float = 0.08
    noise_sigma: float = 0.04
    max_occupancy: float = 0.97

    def __post_init__(self) -> None:
        require_fraction(self.baseline_occupancy, "baseline_occupancy")
        require_non_negative(self.annual_growth, "annual_growth")
        require_non_negative(self.deadline_boost_per_conference, "deadline_boost_per_conference")
        if self.anticipation_time_constant_days <= 0 or self.post_deadline_relief_days <= 0:
            raise ConfigurationError("time constants must be positive")
        require_fraction(self.holiday_dip, "holiday_dip")
        require_fraction(self.summer_dip, "summer_dip")
        require_fraction(self.weekend_dip, "weekend_dip")
        require_non_negative(self.noise_sigma, "noise_sigma")
        require_fraction(self.max_occupancy, "max_occupancy")


class DeadlineDemandModel:
    """Generates hourly cluster-occupancy fractions driven by a conference calendar."""

    def __init__(
        self,
        config: DeadlineDemandConfig | None = None,
        *,
        conferences: ConferenceCalendar | None = None,
        seed: SeedLike = None,
    ) -> None:
        self.config = config or DeadlineDemandConfig()
        self.conferences = conferences or ConferenceCalendar()
        self._seed = seed
        self._rng = make_rng(seed, "deadline-demand")

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def baseline_component(self, calendar: SimulationCalendar) -> np.ndarray:
        """Baseline occupancy including secular growth over the horizon."""
        cfg = self.config
        hours = calendar.hour_grid(1.0)
        years_elapsed = hours / (365.0 * 24.0)
        return cfg.baseline_occupancy * (1.0 + cfg.annual_growth) ** years_elapsed

    def academic_calendar_component(self, calendar: SimulationCalendar) -> np.ndarray:
        """Holiday and summer dips (multiplicative factors <= 1)."""
        cfg = self.config
        hours = calendar.hour_grid(1.0)
        day_of_year = np.asarray([calendar.day_of_year(h) for h in hours])
        factor = np.ones_like(day_of_year)
        # Late-December holidays (day ~355 to year end plus the first days of January).
        holiday = (day_of_year >= 352) | (day_of_year <= 4)
        factor = np.where(holiday, 1.0 - cfg.holiday_dip, factor)
        # Mid-August lull.
        summer = (day_of_year >= 222) & (day_of_year <= 236)
        factor = np.where(summer, factor * (1.0 - cfg.summer_dip), factor)
        return factor

    def weekly_component(self, calendar: SimulationCalendar) -> np.ndarray:
        """Weekend dip (multiplicative factor; the horizon starts on a Wednesday for 2020)."""
        cfg = self.config
        hours = calendar.hour_grid(1.0)
        # January 1st 2020 was a Wednesday (weekday index 2, Monday = 0).
        start_weekday = 2
        weekday = ((hours // 24.0).astype(int) + start_weekday) % 7
        is_weekend = weekday >= 5
        return np.where(is_weekend, 1.0 - cfg.weekend_dip, 1.0)

    def deadline_component(self, calendar: SimulationCalendar) -> np.ndarray:
        """Additive occupancy from deadline anticipation (>= 0)."""
        cfg = self.config
        hours = calendar.hour_grid(1.0)
        extra = np.zeros_like(hours)
        tau_up_h = cfg.anticipation_time_constant_days * 24.0
        tau_down_h = cfg.post_deadline_relief_days * 24.0
        for _name, deadline_hour in self.conferences.deadline_hours(calendar):
            dt = hours - deadline_hour
            before = np.exp(dt / tau_up_h) * (dt <= 0)
            after = np.exp(-dt / tau_down_h) * (dt > 0) * 0.25
            extra += cfg.deadline_boost_per_conference * (before + after)
        return extra

    # ------------------------------------------------------------------
    # Full series
    # ------------------------------------------------------------------
    def hourly_occupancy(self, calendar: SimulationCalendar) -> np.ndarray:
        """Hourly busy-GPU fraction in [0, max_occupancy]."""
        cfg = self.config
        base = self.baseline_component(calendar)
        seasonal = self.academic_calendar_component(calendar)
        weekly = self.weekly_component(calendar)
        deadlines = self.deadline_component(calendar)
        occupancy = base * seasonal * weekly + deadlines
        if cfg.noise_sigma > 0:
            occupancy = occupancy * self._rng.lognormal(0.0, cfg.noise_sigma, size=occupancy.shape)
        return np.clip(occupancy, 0.0, cfg.max_occupancy)

    def monthly_occupancy(
        self, calendar: SimulationCalendar, hourly: np.ndarray | None = None
    ) -> np.ndarray:
        """Monthly mean occupancy fraction."""
        if hourly is None:
            hourly = self.hourly_occupancy(calendar)
        hourly = np.asarray(hourly, dtype=float)
        if hourly.shape != (calendar.total_hours,):
            raise DataError(
                f"expected {calendar.total_hours} hourly values, got {hourly.shape}"
            )
        return calendar.monthly_mean(hourly)

    def monthly_deadline_counts(self, calendar: SimulationCalendar) -> np.ndarray:
        """Deadline counts per month (the Fig. 5 bar series)."""
        return self.conferences.deadlines_per_month(calendar)

    def with_calendar(self, conferences: ConferenceCalendar) -> "DeadlineDemandModel":
        """A copy of this model driven by a different conference calendar.

        The restructuring experiment uses this to hold every other component
        (growth, holidays, noise seed) fixed while swapping the deadline
        distribution.
        """
        return DeadlineDemandModel(
            self.config, conferences=conferences, seed=self._seed
        )
