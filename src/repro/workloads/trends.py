"""AI training-compute demand trends (Fig. 1).

Figure 1 of the paper reproduces the well-known OpenAI / Economist chart of
training compute used by notable A.I. systems over time, highlighting the
break around 2012: before it, compute grew roughly with Moore's law (~2-year
doubling); after it, the largest training runs doubled every ~3.4 months —
a steep super-exponential era that motivates the whole sustainability
discussion.

This module carries a small catalogue of notable systems (publication year
and approximate training compute in petaflop/s-days, following the public
estimates) and a :class:`ComputeTrendModel` that fits per-era exponential
growth rates and reports doubling times — the quantities the FIG1 benchmark
compares against the published 2-year / 3.4-month figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DataError

__all__ = ["NotableSystem", "NOTABLE_SYSTEMS", "ComputeTrendModel", "EraFit"]


@dataclass(frozen=True)
class NotableSystem:
    """One notable A.I. system on the Fig. 1 scatter.

    Attributes
    ----------
    name:
        System name.
    year:
        Publication year (fractional years allowed).
    compute_pfs_days:
        Approximate training compute in petaflop/s-days.
    era:
        ``"pre-2012"`` or ``"modern"`` (the two regimes of Fig. 1).
    """

    name: str
    year: float
    compute_pfs_days: float
    era: str

    def __post_init__(self) -> None:
        if self.compute_pfs_days <= 0:
            raise DataError(f"{self.name}: compute must be positive")
        if self.era not in ("pre-2012", "modern"):
            raise DataError(f"{self.name}: era must be 'pre-2012' or 'modern'")


#: Approximate public estimates (order-of-magnitude) following the OpenAI
#: "AI and Compute" analysis the figure is drawn from.
NOTABLE_SYSTEMS: tuple[NotableSystem, ...] = (
    NotableSystem("Perceptron", 1958.0, 1e-13, "pre-2012"),
    NotableSystem("ADALINE", 1960.0, 3e-13, "pre-2012"),
    NotableSystem("Neocognitron", 1980.0, 5e-11, "pre-2012"),
    NotableSystem("NetTalk", 1987.0, 2e-9, "pre-2012"),
    NotableSystem("ALVINN", 1989.0, 5e-9, "pre-2012"),
    NotableSystem("TD-Gammon", 1992.0, 2e-8, "pre-2012"),
    NotableSystem("LeNet-5", 1998.0, 5e-8, "pre-2012"),
    NotableSystem("Deep Belief Nets", 2006.0, 3e-6, "pre-2012"),
    NotableSystem("RNN for speech", 2009.0, 2e-5, "pre-2012"),
    NotableSystem("Feedforward NN speech", 2011.0, 1e-4, "pre-2012"),
    NotableSystem("AlexNet", 2012.5, 5e-3, "modern"),
    NotableSystem("Dropout", 2013.0, 8e-3, "modern"),
    NotableSystem("Visualizing CNNs", 2013.5, 6e-3, "modern"),
    NotableSystem("GoogLeNet", 2014.7, 2e-2, "modern"),
    NotableSystem("VGG", 2014.7, 1e-1, "modern"),
    NotableSystem("Seq2Seq", 2014.9, 8e-2, "modern"),
    NotableSystem("ResNet-152", 2015.9, 2e-1, "modern"),
    NotableSystem("DeepSpeech2", 2015.9, 3e-1, "modern"),
    NotableSystem("Xception", 2016.8, 5e-1, "modern"),
    NotableSystem("Neural Machine Translation", 2016.7, 1.0, "modern"),
    NotableSystem("Neural Architecture Search", 2016.9, 2.0, "modern"),
    NotableSystem("T17 Dota 1v1", 2017.6, 8.0, "modern"),
    NotableSystem("AlphaGo Zero", 2017.8, 2e3, "modern"),
    NotableSystem("AlphaZero", 2017.9, 4e3, "modern"),
    NotableSystem("BERT-Large", 2018.8, 3e2, "modern"),
    NotableSystem("GPT-2", 2019.1, 1e3, "modern"),
    NotableSystem("Megatron-LM", 2019.7, 8e3, "modern"),
    NotableSystem("GPT-3", 2020.4, 3.64e3, "modern"),
    NotableSystem("AlphaFold 2", 2020.9, 1e4, "modern"),
    NotableSystem("Gopher", 2021.9, 6e4, "modern"),
)


@dataclass(frozen=True)
class EraFit:
    """Exponential-growth fit of one era of the compute trend."""

    era: str
    n_systems: int
    growth_rate_per_year: float  # in log10 units per year
    doubling_time_months: float
    r_squared: float


class ComputeTrendModel:
    """Fits per-era exponential growth to the notable-systems catalogue."""

    def __init__(self, systems: Sequence[NotableSystem] | None = None) -> None:
        self.systems: tuple[NotableSystem, ...] = (
            tuple(systems) if systems is not None else NOTABLE_SYSTEMS
        )
        if len(self.systems) < 4:
            raise DataError("ComputeTrendModel requires at least four systems")

    def era_systems(self, era: str) -> list[NotableSystem]:
        """Systems belonging to one era."""
        subset = [s for s in self.systems if s.era == era]
        if not subset:
            raise DataError(f"no systems in era {era!r}")
        return subset

    def fit_era(self, era: str) -> EraFit:
        """Least-squares fit of log10(compute) vs. year for one era."""
        subset = self.era_systems(era)
        if len(subset) < 2:
            raise DataError(f"era {era!r} needs at least two systems to fit a trend")
        years = np.asarray([s.year for s in subset])
        log_compute = np.log10([s.compute_pfs_days for s in subset])
        slope, intercept = np.polyfit(years, log_compute, deg=1)
        predicted = slope * years + intercept
        ss_res = float(np.sum((log_compute - predicted) ** 2))
        ss_tot = float(np.sum((log_compute - log_compute.mean()) ** 2))
        r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        # doubling time: slope is log10 per year; doublings per year = slope / log10(2).
        doublings_per_year = slope / np.log10(2.0)
        doubling_time_months = 12.0 / doublings_per_year if doublings_per_year > 0 else float("inf")
        return EraFit(
            era=era,
            n_systems=len(subset),
            growth_rate_per_year=float(slope),
            doubling_time_months=float(doubling_time_months),
            r_squared=float(r_squared),
        )

    def fit_all(self) -> dict[str, EraFit]:
        """Fits for both eras."""
        return {era: self.fit_era(era) for era in ("pre-2012", "modern")}

    def growth_acceleration(self) -> float:
        """Ratio of modern to pre-2012 growth rates (how much steeper Fig. 1 became)."""
        fits = self.fit_all()
        pre = fits["pre-2012"].growth_rate_per_year
        if pre <= 0:
            raise DataError("pre-2012 growth rate must be positive to compute acceleration")
        return fits["modern"].growth_rate_per_year / pre

    def projected_compute(self, year: float, era: str = "modern") -> float:
        """Extrapolated training compute (petaflop/s-days) for a future year."""
        fit = self.fit_era(era)
        subset = self.era_systems(era)
        years = np.asarray([s.year for s in subset])
        log_compute = np.log10([s.compute_pfs_days for s in subset])
        intercept = float(np.mean(log_compute) - fit.growth_rate_per_year * np.mean(years))
        return float(10 ** (fit.growth_rate_per_year * year + intercept))

    def scatter_series(self) -> dict[str, np.ndarray]:
        """(year, compute) arrays for plotting the Fig. 1 scatter."""
        return {
            "year": np.asarray([s.year for s in self.systems]),
            "compute_pfs_days": np.asarray([s.compute_pfs_days for s in self.systems]),
            "is_modern": np.asarray([s.era == "modern" for s in self.systems]),
        }
