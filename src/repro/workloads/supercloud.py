"""Synthetic MIT-SuperCloud-like traces.

The paper's empirical sections use two views of the MIT SuperCloud system:

1. **Facility-level load**: the monthly average power consumption of the E1
   hypercluster over 2020-2021 (Figs. 2, 4, 5), which ranges roughly from
   200 kW in quiet winter months to 450 kW at the summer/deadline peak.
2. **Job-level structure** (implicitly): the workloads are interactive and
   batch ML jobs of widely varying size and duration.

Real SuperCloud telemetry is not available offline, so
:class:`SuperCloudTraceGenerator` synthesizes both views from the substrates
built elsewhere in the package: the deadline-driven occupancy model supplies
*how busy* the machine is hour by hour, the facility/GPU power models convert
occupancy into IT power, and the cooling model (driven by the weather trace)
converts IT power into facility power.  The monthly aggregates of the result
are what the figure benchmarks compare against the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config import FacilityConfig, require_fraction, require_positive
from ..errors import ConfigurationError, DataError
from ..rng import SeedLike, make_rng
from ..scheduler.job import Job
from ..telemetry.gpu_power import GpuPowerModel, get_gpu_spec
from ..timeutils import SimulationCalendar
from ..cluster.cooling import CoolingModel
from .demand import DeadlineDemandModel

__all__ = ["SuperCloudTraceConfig", "SuperCloudLoadTrace", "SuperCloudTraceGenerator"]


@dataclass(frozen=True)
class SuperCloudTraceConfig:
    """Parameters of the synthetic facility-load trace.

    Attributes
    ----------
    facility:
        Facility description (node/GPU counts and overheads).
    gpu_model:
        GPU model installed in the cluster.
    mean_busy_utilization:
        Average compute utilization of a *busy* GPU (busy GPUs rarely sit at
        100%).
    packing_factor:
        How well busy GPUs are packed onto nodes: 1.0 means perfectly packed
        (occupied-node fraction equals busy-GPU fraction), 0.0 means maximally
        spread.  Affects how much node overhead the same occupancy costs.
    """

    facility: FacilityConfig = FacilityConfig()
    gpu_model: str = "V100"
    mean_busy_utilization: float = 0.72
    packing_factor: float = 0.7

    def __post_init__(self) -> None:
        require_fraction(self.mean_busy_utilization, "mean_busy_utilization")
        require_fraction(self.packing_factor, "packing_factor")
        try:
            get_gpu_spec(self.gpu_model)
        except Exception as exc:
            raise ConfigurationError(f"unknown gpu_model {self.gpu_model!r}") from exc


@dataclass(frozen=True)
class SuperCloudLoadTrace:
    """Hourly facility-load trace plus its monthly aggregates."""

    hours: np.ndarray
    occupancy: np.ndarray
    it_power_w: np.ndarray
    facility_power_w: np.ndarray
    pue: np.ndarray
    monthly_power_kw: np.ndarray
    monthly_energy_mwh: np.ndarray
    monthly_occupancy: np.ndarray

    def __post_init__(self) -> None:
        n = self.hours.shape[0]
        for name in ("occupancy", "it_power_w", "facility_power_w", "pue"):
            if getattr(self, name).shape != (n,):
                raise DataError(f"{name} must have the same length as hours")
        m = self.monthly_power_kw.shape[0]
        for name in ("monthly_energy_mwh", "monthly_occupancy"):
            if getattr(self, name).shape != (m,):
                raise DataError(f"{name} must have the same length as monthly_power_kw")


class SuperCloudTraceGenerator:
    """Generates facility-load traces and job traces for the simulated system."""

    def __init__(
        self,
        config: SuperCloudTraceConfig | None = None,
        *,
        demand_model: Optional[DeadlineDemandModel] = None,
        cooling: Optional[CoolingModel] = None,
        seed: SeedLike = None,
    ) -> None:
        self.config = config or SuperCloudTraceConfig()
        self.demand_model = demand_model or DeadlineDemandModel(seed=seed)
        self.cooling = cooling or CoolingModel()
        self.gpu_spec = get_gpu_spec(self.config.gpu_model)
        self.gpu_power_model = GpuPowerModel(self.gpu_spec)
        self._rng = make_rng(seed, "supercloud")

    # ------------------------------------------------------------------
    # Facility-level load trace
    # ------------------------------------------------------------------
    def it_power_from_occupancy(self, occupancy: np.ndarray) -> np.ndarray:
        """Convert a busy-GPU fraction series into IT power (vectorized)."""
        cfg = self.config
        occ = np.clip(np.asarray(occupancy, dtype=float), 0.0, 1.0)
        facility = cfg.facility
        total_gpus = facility.total_gpus
        busy_gpus = occ * total_gpus
        idle_gpus = total_gpus - busy_gpus

        busy_power = float(self.gpu_power_model.power_w(cfg.mean_busy_utilization))
        idle_power = self.gpu_spec.idle_power_w

        # Occupied-node fraction: perfectly packed -> equal to occupancy;
        # fully spread -> 1 - (1 - occ)**gpus_per_node.
        spread_fraction = 1.0 - (1.0 - occ) ** facility.gpus_per_node
        occupied_fraction = (
            cfg.packing_factor * occ + (1.0 - cfg.packing_factor) * spread_fraction
        )
        occupied_nodes = occupied_fraction * facility.n_nodes

        power = (
            facility.n_nodes * facility.node_idle_power_w
            + occupied_nodes * facility.node_active_overhead_w
            + busy_gpus * busy_power
            + idle_gpus * idle_power
        )
        return power

    def generate_load_trace(
        self,
        calendar: SimulationCalendar,
        weather_hourly_c: np.ndarray,
    ) -> SuperCloudLoadTrace:
        """Generate the hourly facility-load trace over the calendar horizon."""
        weather = np.asarray(weather_hourly_c, dtype=float)
        if weather.shape != (calendar.total_hours,):
            raise DataError(
                f"weather trace must have {calendar.total_hours} hourly values, got {weather.shape}"
            )
        occupancy = self.demand_model.hourly_occupancy(calendar)
        it_power = self.it_power_from_occupancy(occupancy)
        pue = np.asarray(self.cooling.pue(weather), dtype=float)
        facility_power = it_power * pue

        monthly_power_kw = calendar.monthly_mean(facility_power) / 1e3
        monthly_energy_mwh = calendar.monthly_sum(facility_power) / 1e6
        monthly_occupancy = calendar.monthly_mean(occupancy)
        return SuperCloudLoadTrace(
            hours=calendar.hour_grid(1.0),
            occupancy=occupancy,
            it_power_w=it_power,
            facility_power_w=facility_power,
            pue=pue,
            monthly_power_kw=monthly_power_kw,
            monthly_energy_mwh=monthly_energy_mwh,
            monthly_occupancy=monthly_occupancy,
        )

    # ------------------------------------------------------------------
    # Job-level trace (for the discrete-event simulator)
    # ------------------------------------------------------------------
    def generate_jobs(
        self,
        *,
        n_jobs: int,
        horizon_h: float,
        start_h: float = 0.0,
        deferrable_fraction: float = 0.4,
        deadline_fraction: float = 0.25,
        max_defer_h: float = 24.0,
        users: int = 40,
        arrival_weights: Optional[Sequence[float]] = None,
    ) -> list[Job]:
        """Generate a job-level trace with SuperCloud-like size/duration mix.

        Sizes follow the heavy-tailed mix typical of shared ML clusters:
        mostly 1-2 GPU interactive/debug jobs, a body of 4-8 GPU training
        jobs, and a thin tail of 16-32 GPU distributed runs.  Durations are
        log-normal (median ~2 h, mean ~5 h, occasional multi-day runs).

        Parameters
        ----------
        n_jobs:
            Number of jobs to generate.
        horizon_h:
            Length of the submission window in hours.
        start_h:
            Start of the submission window.
        deferrable_fraction:
            Fraction of jobs whose owners marked them deferrable.
        deadline_fraction:
            Fraction of jobs carrying explicit completion deadlines.
        max_defer_h:
            Deferral window granted by deferrable jobs.
        users:
            Number of distinct synthetic users.
        arrival_weights:
            Optional relative arrival intensity over the window (any length;
            interpolated); defaults to uniform arrivals.
        """
        if n_jobs <= 0:
            raise ConfigurationError("n_jobs must be positive")
        require_positive(horizon_h, "horizon_h")
        require_fraction(deferrable_fraction, "deferrable_fraction")
        require_fraction(deadline_fraction, "deadline_fraction")
        rng = self._rng

        if arrival_weights is None:
            submit_times = start_h + rng.uniform(0.0, horizon_h, size=n_jobs)
        else:
            weights = np.clip(np.asarray(arrival_weights, dtype=float), 1e-9, None)
            grid = np.linspace(0.0, horizon_h, num=weights.shape[0])
            cdf = np.cumsum(weights)
            cdf = cdf / cdf[-1]
            u = rng.uniform(0.0, 1.0, size=n_jobs)
            submit_times = start_h + np.interp(u, np.concatenate(([0.0], cdf)), np.concatenate(([0.0], grid)))
        submit_times = np.sort(submit_times)

        size_choices = np.array([1, 2, 4, 8, 16, 32])
        size_probs = np.array([0.38, 0.24, 0.17, 0.12, 0.06, 0.03])
        sizes = rng.choice(size_choices, size=n_jobs, p=size_probs)

        durations = rng.lognormal(mean=np.log(2.0), sigma=1.0, size=n_jobs)
        durations = np.clip(durations, 0.1, 96.0)

        utilizations = np.clip(rng.normal(0.78, 0.12, size=n_jobs), 0.2, 1.0)

        jobs: list[Job] = []
        for i in range(n_jobs):
            deferrable = bool(rng.uniform() < deferrable_fraction)
            has_deadline = bool(rng.uniform() < deadline_fraction)
            submit = float(submit_times[i])
            duration = float(durations[i])
            deadline = None
            if has_deadline:
                slack = float(rng.uniform(2.0, 5.0))
                deadline = submit + duration * slack
            jobs.append(
                Job(
                    job_id=f"job-{i:05d}",
                    user_id=f"user-{int(rng.integers(0, users)):03d}",
                    n_gpus=int(sizes[i]),
                    duration_h=duration,
                    submit_time_h=submit,
                    utilization=float(utilizations[i]),
                    deadline_h=deadline,
                    deferrable=deferrable,
                    max_defer_h=float(max_defer_h) if deferrable else 0.0,
                    tags={"workload": "training" if duration > 1.0 else "interactive"},
                )
            )
        return jobs
