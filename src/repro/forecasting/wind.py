"""Wind-farm simulation and 36-hour-ahead power forecasting (CLAIM-WIND).

Section IV.C of the paper cites DeepMind's work forecasting wind-farm output
36 hours ahead from weather forecasts and historical turbine data, enabling
day-ahead delivery commitments.  The reproduction:

* :class:`WindFarmSimulator` — synthesizes hourly wind speed (Weibull-ish,
  autocorrelated, seasonal) and converts it to farm power through a standard
  turbine power curve (cut-in / rated / cut-out).
* :class:`WindPowerForecaster` — a ridge model over lagged power and an
  (imperfect) weather forecast of future wind speed, issuing direct 36 h
  forecasts, evaluated against persistence with
  :func:`~repro.forecasting.evaluation.forecast_skill`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require_fraction, require_non_negative, require_positive
from ..errors import ConfigurationError, ForecastError
from ..rng import SeedLike, make_rng
from .evaluation import ForecastMetrics, evaluate_forecast, forecast_skill
from .features import make_lag_matrix
from .linear import PersistenceForecaster, RidgeRegressor

__all__ = ["WindFarmConfig", "WindFarmSimulator", "WindPowerForecaster", "WindForecastStudy"]


@dataclass(frozen=True)
class WindFarmConfig:
    """Physical parameters of the synthetic wind farm.

    Attributes
    ----------
    capacity_mw:
        Nameplate capacity.
    mean_wind_speed_ms:
        Long-run mean hub-height wind speed.
    wind_speed_std_ms:
        Standard deviation of the (autocorrelated) wind-speed process.
    autocorrelation:
        Hour-to-hour autocorrelation of wind speed.
    seasonal_amplitude:
        Relative seasonal modulation of mean wind speed (winter-peaking).
    cut_in_ms / rated_ms / cut_out_ms:
        Turbine power-curve breakpoints.
    """

    capacity_mw: float = 100.0
    mean_wind_speed_ms: float = 7.5
    wind_speed_std_ms: float = 2.6
    autocorrelation: float = 0.97
    seasonal_amplitude: float = 0.18
    cut_in_ms: float = 3.0
    rated_ms: float = 12.0
    cut_out_ms: float = 25.0

    def __post_init__(self) -> None:
        require_positive(self.capacity_mw, "capacity_mw")
        require_positive(self.mean_wind_speed_ms, "mean_wind_speed_ms")
        require_non_negative(self.wind_speed_std_ms, "wind_speed_std_ms")
        require_fraction(self.autocorrelation, "autocorrelation")
        require_fraction(self.seasonal_amplitude, "seasonal_amplitude")
        if not 0 < self.cut_in_ms < self.rated_ms < self.cut_out_ms:
            raise ConfigurationError("require 0 < cut_in < rated < cut_out wind speeds")


class WindFarmSimulator:
    """Generates hourly wind-speed and farm-power series."""

    def __init__(self, config: WindFarmConfig | None = None, *, seed: SeedLike = None) -> None:
        self.config = config or WindFarmConfig()
        self._rng = make_rng(seed, "wind-farm")

    def wind_speed_series(self, n_hours: int) -> np.ndarray:
        """Hourly hub-height wind speed (m/s), AR(1) around a seasonal mean."""
        if n_hours <= 0:
            raise ForecastError("n_hours must be positive")
        cfg = self.config
        hours = np.arange(n_hours)
        day_of_year = (hours / 24.0) % 365.0
        seasonal_mean = cfg.mean_wind_speed_ms * (
            1.0 + cfg.seasonal_amplitude * np.cos(2.0 * np.pi * (day_of_year - 30.0) / 365.0)
        )
        rho = cfg.autocorrelation
        innovation_std = cfg.wind_speed_std_ms * np.sqrt(max(1.0 - rho**2, 1e-12))
        noise = np.empty(n_hours)
        noise[0] = self._rng.normal(0.0, cfg.wind_speed_std_ms)
        innovations = self._rng.normal(0.0, innovation_std, size=n_hours)
        for i in range(1, n_hours):
            noise[i] = rho * noise[i - 1] + innovations[i]
        return np.clip(seasonal_mean + noise, 0.0, None)

    def power_curve(self, wind_speed_ms: np.ndarray) -> np.ndarray:
        """Farm power (MW) from wind speed through the turbine power curve."""
        cfg = self.config
        v = np.asarray(wind_speed_ms, dtype=float)
        if np.any(v < 0):
            raise ForecastError("wind speed must be non-negative")
        # Cubic ramp between cut-in and rated, flat at capacity, zero beyond cut-out.
        ramp = ((v - cfg.cut_in_ms) / (cfg.rated_ms - cfg.cut_in_ms)) ** 3
        power = np.where(
            v < cfg.cut_in_ms,
            0.0,
            np.where(v < cfg.rated_ms, cfg.capacity_mw * np.clip(ramp, 0.0, 1.0), cfg.capacity_mw),
        )
        power = np.where(v >= cfg.cut_out_ms, 0.0, power)
        return power

    def generate(self, n_hours: int) -> tuple[np.ndarray, np.ndarray]:
        """(wind speed, farm power) series for ``n_hours`` hours."""
        speed = self.wind_speed_series(n_hours)
        return speed, self.power_curve(speed)

    def noisy_weather_forecast(self, wind_speed_ms: np.ndarray, *, error_std_ms: float = 1.2) -> np.ndarray:
        """An imperfect numerical-weather-prediction forecast of wind speed.

        DeepMind's system consumed weather forecasts, not actual future winds;
        adding realistic forecast error keeps the exercise honest.
        """
        speed = np.asarray(wind_speed_ms, dtype=float)
        if error_std_ms < 0:
            raise ForecastError("error_std_ms must be non-negative")
        return np.clip(speed + self._rng.normal(0.0, error_std_ms, size=speed.shape), 0.0, None)


class WindPowerForecaster:
    """Direct 36 h-ahead wind-power forecaster (ridge over lags + weather forecast)."""

    def __init__(self, horizon_h: int = 36, *, lags: tuple[int, ...] = (1, 2, 3, 6, 12, 24), alpha: float = 1e-2) -> None:
        if horizon_h < 1:
            raise ForecastError("horizon_h must be >= 1")
        self.horizon_h = int(horizon_h)
        self.lags = tuple(lags)
        self.model = RidgeRegressor(alpha=alpha)

    def fit(self, power_mw: np.ndarray, weather_forecast_ms: np.ndarray) -> "WindPowerForecaster":
        """Fit on historical power and the weather forecast valid at the target hour."""
        X, y = make_lag_matrix(
            np.asarray(power_mw, dtype=float),
            self.lags,
            horizon=self.horizon_h,
            exogenous=np.asarray(weather_forecast_ms, dtype=float),
        )
        self.model.fit(X, y)
        return self

    def predict_series(self, power_mw: np.ndarray, weather_forecast_ms: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Forecasts and aligned truth over a series (same construction as fit)."""
        X, y = make_lag_matrix(
            np.asarray(power_mw, dtype=float),
            self.lags,
            horizon=self.horizon_h,
            exogenous=np.asarray(weather_forecast_ms, dtype=float),
        )
        return self.model.predict(X), y


@dataclass(frozen=True)
class WindForecastStudy:
    """Results of the wind-forecasting study (CLAIM-WIND benchmark payload)."""

    horizon_h: int
    model_metrics: ForecastMetrics
    persistence_metrics: ForecastMetrics
    skill_vs_persistence: float
    capacity_mw: float

    @staticmethod
    def run(
        *,
        n_hours: int = 8760,
        horizon_h: int = 36,
        train_fraction: float = 0.7,
        seed: SeedLike = None,
        config: WindFarmConfig | None = None,
    ) -> "WindForecastStudy":
        """Generate a year of wind data, train the forecaster, and score it."""
        if not 0.0 < train_fraction < 1.0:
            raise ForecastError("train_fraction must lie in (0, 1)")
        farm = WindFarmSimulator(config, seed=seed)
        speed, power = farm.generate(n_hours)
        # The exogenous regressor mirrors what an operational system feeds the
        # model: the numerical weather forecast of wind speed pushed through
        # the turbine power curve (a "physical" power forecast), which the
        # statistical model then corrects using recent production history.
        weather_forecast = farm.power_curve(farm.noisy_weather_forecast(speed))

        split = int(n_hours * train_fraction)
        forecaster = WindPowerForecaster(horizon_h=horizon_h)
        forecaster.fit(power[:split], weather_forecast[:split])

        predictions, truth = forecaster.predict_series(power[split:], weather_forecast[split:])
        persistence = PersistenceForecaster(horizon=horizon_h)
        base_pred, base_truth = persistence.backtest(power[split:], test_fraction=0.999)
        # Align lengths: use the shorter of the two evaluation windows.
        n_eval = min(predictions.shape[0], base_pred.shape[0])
        model_metrics = evaluate_forecast(predictions[-n_eval:], truth[-n_eval:])
        persistence_metrics = evaluate_forecast(base_pred[-n_eval:], base_truth[-n_eval:])
        skill = 1.0 - model_metrics.mae / persistence_metrics.mae
        cfg = config or WindFarmConfig()
        return WindForecastStudy(
            horizon_h=horizon_h,
            model_metrics=model_metrics,
            persistence_metrics=persistence_metrics,
            skill_vs_persistence=float(skill),
            capacity_mw=cfg.capacity_mw,
        )
