"""Cluster-demand and electricity-price forecasting.

Section II.C: "models leveraging data on compute demand and usage (e.g.
holidays, research deadlines) can help with scheduling, maintenance, etc."
and models relating prices/fuel mix/expenditure support purchasing decisions.
Both forecasters below are ridge models over lagged values, seasonal
harmonics, and task-specific exogenous features:

* :class:`DemandForecaster` — forecasts cluster occupancy; its exogenous
  feature is the number of conference deadlines in the next N days, the
  paper's own candidate predictor.
* :class:`PriceForecaster` — forecasts hourly LMP from lags and the
  renewable share (Fig. 3's relationship, used predictively).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ForecastError
from .evaluation import ForecastMetrics, evaluate_forecast
from .features import make_lag_matrix, make_seasonal_features
from .linear import RidgeRegressor

__all__ = ["DemandForecaster", "PriceForecaster"]


class _ExogenousRidgeForecaster:
    """Shared machinery: ridge over lags + seasonal harmonics + exogenous columns."""

    def __init__(
        self,
        *,
        lags: tuple[int, ...],
        horizon: int,
        seasonal_periods: tuple[float, ...],
        alpha: float,
    ) -> None:
        if horizon < 1:
            raise ForecastError("horizon must be >= 1")
        if not lags or any(l < 1 for l in lags):
            raise ForecastError("lags must be positive integers")
        self.lags = tuple(int(l) for l in lags)
        self.horizon = int(horizon)
        self.seasonal_periods = tuple(seasonal_periods)
        self.model = RidgeRegressor(alpha=alpha)

    def _features(
        self, series: np.ndarray, exogenous: Optional[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        series = np.asarray(series, dtype=float)
        n = series.shape[0]
        t = np.arange(n, dtype=float)
        seasonal = make_seasonal_features(t, self.seasonal_periods, include_bias=False)
        exo_columns = seasonal if exogenous is None else np.column_stack(
            [seasonal, np.asarray(exogenous, dtype=float).reshape(n, -1)]
        )
        return make_lag_matrix(series, self.lags, horizon=self.horizon, exogenous=exo_columns)

    def fit(self, series: np.ndarray, exogenous: Optional[np.ndarray] = None) -> "_ExogenousRidgeForecaster":
        """Fit on a historical series (plus optional exogenous columns aligned with it)."""
        X, y = self._features(series, exogenous)
        self.model.fit(X, y)
        return self

    def backtest(
        self,
        series: np.ndarray,
        exogenous: Optional[np.ndarray] = None,
        *,
        test_fraction: float = 0.25,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chronological backtest: fit on the head, predict the tail.

        Returns (predictions, truth) aligned on the evaluation window.
        """
        series = np.asarray(series, dtype=float)
        n = series.shape[0]
        split = int(round(n * (1.0 - test_fraction)))
        max_lag = max(self.lags)
        if split <= max_lag + self.horizon:
            raise ForecastError("series too short for the requested backtest")
        exo = None if exogenous is None else np.asarray(exogenous, dtype=float)
        self.fit(series[:split], None if exo is None else exo[:split])
        # Build evaluation features over the full series, then keep rows whose
        # *target* index falls in the test window.
        X_all, y_all = self._features(series, exo)
        first_t = max_lag
        target_index = np.arange(first_t, n - self.horizon) + self.horizon - 1
        mask = target_index >= split
        if not np.any(mask):
            raise ForecastError("no evaluation rows fall in the test window")
        predictions = self.model.predict(X_all[mask])
        return predictions, y_all[mask]

    def evaluate(
        self,
        series: np.ndarray,
        exogenous: Optional[np.ndarray] = None,
        *,
        test_fraction: float = 0.25,
    ) -> ForecastMetrics:
        """Backtest and summarise errors."""
        predictions, truth = self.backtest(series, exogenous, test_fraction=test_fraction)
        return evaluate_forecast(predictions, truth)


class DemandForecaster(_ExogenousRidgeForecaster):
    """Forecasts cluster occupancy ``horizon`` hours ahead.

    Default features: the last few hours and the same hour yesterday/last
    week, daily and weekly harmonics, plus the caller-supplied deadline-
    pressure series (e.g. number of deadlines in the next 14 days).
    """

    def __init__(
        self,
        *,
        horizon: int = 24,
        lags: tuple[int, ...] = (1, 2, 3, 24, 168),
        alpha: float = 1e-2,
    ) -> None:
        super().__init__(
            lags=lags,
            horizon=horizon,
            seasonal_periods=(24.0, 168.0, 8760.0),
            alpha=alpha,
        )

    @staticmethod
    def deadline_pressure(
        deadline_hours: list[tuple[str, float]], n_hours: int, *, window_days: float = 14.0
    ) -> np.ndarray:
        """Exogenous feature: number of deadlines within the next ``window_days``."""
        if n_hours <= 0:
            raise ForecastError("n_hours must be positive")
        pressure = np.zeros(n_hours)
        window_h = window_days * 24.0
        hours = np.arange(n_hours, dtype=float)
        for _name, deadline_hour in deadline_hours:
            mask = (hours <= deadline_hour) & (hours > deadline_hour - window_h)
            pressure[mask] += 1.0
        return pressure


class PriceForecaster(_ExogenousRidgeForecaster):
    """Forecasts hourly LMP ``horizon`` hours ahead from lags + renewable share."""

    def __init__(
        self,
        *,
        horizon: int = 24,
        lags: tuple[int, ...] = (1, 2, 24, 48, 168),
        alpha: float = 1e-2,
    ) -> None:
        super().__init__(
            lags=lags,
            horizon=horizon,
            seasonal_periods=(24.0, 168.0, 8760.0),
            alpha=alpha,
        )
