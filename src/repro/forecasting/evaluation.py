"""Forecast evaluation metrics.

Provides the standard point-forecast metrics (MAE, RMSE, MAPE, bias) plus the
*skill score* relative to a baseline forecast — the quantity that makes the
CLAIM-WIND benchmark meaningful ("the learned 36 h forecast is X% better than
persistence"), mirroring how operational forecast quality is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ForecastError

__all__ = ["ForecastMetrics", "evaluate_forecast", "forecast_skill"]


@dataclass(frozen=True)
class ForecastMetrics:
    """Point-forecast error metrics."""

    mae: float
    rmse: float
    mape_pct: float
    bias: float
    n_samples: int

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary form for reports."""
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "mape_pct": self.mape_pct,
            "bias": self.bias,
            "n_samples": float(self.n_samples),
        }


def _validate(predictions: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(predictions, dtype=float)
    true = np.asarray(truth, dtype=float)
    if pred.shape != true.shape:
        raise ForecastError(
            f"predictions and truth must have the same shape, got {pred.shape} vs {true.shape}"
        )
    if pred.ndim != 1 or pred.size == 0:
        raise ForecastError("predictions and truth must be non-empty 1-D arrays")
    if np.any(~np.isfinite(pred)) or np.any(~np.isfinite(true)):
        raise ForecastError("predictions and truth must be finite")
    return pred, true


def evaluate_forecast(predictions: np.ndarray, truth: np.ndarray) -> ForecastMetrics:
    """Compute MAE/RMSE/MAPE/bias for a forecast against the realised values.

    MAPE ignores (masks out) hours where the truth is exactly zero, which is
    common in wind-power series during calm periods.
    """
    pred, true = _validate(predictions, truth)
    errors = pred - true
    mae = float(np.mean(np.abs(errors)))
    rmse = float(np.sqrt(np.mean(errors**2)))
    nonzero = np.abs(true) > 1e-12
    if np.any(nonzero):
        mape = float(np.mean(np.abs(errors[nonzero] / true[nonzero])) * 100.0)
    else:
        mape = float("nan")
    bias = float(np.mean(errors))
    return ForecastMetrics(mae=mae, rmse=rmse, mape_pct=mape, bias=bias, n_samples=pred.size)


def forecast_skill(
    predictions: np.ndarray, truth: np.ndarray, baseline_predictions: np.ndarray, *, metric: str = "mae"
) -> float:
    """Skill score of a forecast relative to a baseline: 1 - err / err_baseline.

    Positive values mean the forecast beats the baseline; 0 means no better;
    negative means worse.  ``metric`` is ``"mae"`` or ``"rmse"``.
    """
    model_metrics = evaluate_forecast(predictions, truth)
    baseline_metrics = evaluate_forecast(baseline_predictions, truth)
    if metric not in ("mae", "rmse"):
        raise ForecastError(f"metric must be 'mae' or 'rmse', got {metric!r}")
    model_err = getattr(model_metrics, metric)
    baseline_err = getattr(baseline_metrics, metric)
    if baseline_err == 0:
        raise ForecastError("baseline error is zero; skill is undefined")
    return 1.0 - model_err / baseline_err
