"""Feature construction for time-series forecasting.

All forecasters in this package are linear models over hand-built features:
lagged values of the target, optional exogenous series (weather forecasts),
and seasonal harmonics (daily/annual sine-cosine pairs).  Keeping feature
construction in one place lets every model and test share the same, well-
validated code path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ForecastError

__all__ = ["make_lag_matrix", "make_seasonal_features", "train_test_split_series"]


def make_lag_matrix(
    series: np.ndarray,
    lags: Sequence[int],
    *,
    horizon: int = 1,
    exogenous: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Build a (features, targets) pair for ``horizon``-step-ahead forecasting.

    Row ``t`` of the feature matrix contains ``series[t - lag]`` for each lag,
    plus (optionally) the exogenous values at the *target* time ``t + horizon - 1``
    (exogenous regressors are assumed to be forecastable, e.g. weather
    forecasts, as in the DeepMind wind setup).  The target is
    ``series[t + horizon - 1]``.

    Returns arrays of shape (n_samples, n_features) and (n_samples,).
    """
    y = np.asarray(series, dtype=float)
    if y.ndim != 1:
        raise ForecastError("series must be 1-D")
    if horizon < 1:
        raise ForecastError(f"horizon must be >= 1, got {horizon}")
    lags = list(lags)
    if not lags or any(lag < 1 for lag in lags):
        raise ForecastError("lags must be a non-empty sequence of positive integers")
    max_lag = max(lags)
    n = y.shape[0]
    if exogenous is not None:
        exo = np.asarray(exogenous, dtype=float)
        if exo.ndim == 1:
            exo = exo[:, None]
        if exo.shape[0] != n:
            raise ForecastError("exogenous series must align with the target series")
    else:
        exo = None

    first_t = max_lag  # first index whose lags all exist
    last_t = n - horizon  # exclusive bound so that t + horizon - 1 <= n - 1
    if last_t <= first_t:
        raise ForecastError(
            f"series too short ({n}) for max lag {max_lag} and horizon {horizon}"
        )
    rows = np.arange(first_t, last_t)
    features = np.column_stack([y[rows - lag] for lag in lags])
    if exo is not None:
        features = np.column_stack([features, exo[rows + horizon - 1]])
    targets = y[rows + horizon - 1]
    return features, targets


def make_seasonal_features(
    t: np.ndarray, periods: Sequence[float], *, include_bias: bool = True
) -> np.ndarray:
    """Sine/cosine harmonics at the given periods evaluated at times ``t``.

    ``periods`` are in the same unit as ``t`` (e.g. 24 and 8760 for daily and
    annual cycles on an hourly index).
    """
    times = np.asarray(t, dtype=float)
    if times.ndim != 1:
        raise ForecastError("t must be 1-D")
    if not periods or any(p <= 0 for p in periods):
        raise ForecastError("periods must be a non-empty sequence of positive numbers")
    columns = []
    if include_bias:
        columns.append(np.ones_like(times))
    for period in periods:
        angle = 2.0 * np.pi * times / period
        columns.append(np.sin(angle))
        columns.append(np.cos(angle))
    return np.column_stack(columns)


def train_test_split_series(
    features: np.ndarray, targets: np.ndarray, *, test_fraction: float = 0.25
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chronological train/test split (no shuffling — this is a time series)."""
    X = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if X.shape[0] != y.shape[0]:
        raise ForecastError("features and targets must have the same number of rows")
    if not 0.0 < test_fraction < 1.0:
        raise ForecastError("test_fraction must lie in (0, 1)")
    n = X.shape[0]
    split = int(round(n * (1.0 - test_fraction)))
    if split < 1 or split >= n:
        raise ForecastError("split produces an empty train or test set")
    return X[:split], y[:split], X[split:], y[split:]
