"""Forecasting models supporting energy-aware decision making.

Section II.C of the paper argues that "models that help forecast and relate
energy prices, fuel mix, as well as energy expenditure to one another can
provide significant support" for purchasing and scheduling decisions, and
Section IV.C highlights DeepMind's 36-hour-ahead wind-power forecasts as a
concrete success.  This package implements the forecasting stack with
NumPy-only models:

* :mod:`~repro.forecasting.features` — lag/seasonal feature construction;
* :mod:`~repro.forecasting.linear` — ridge regression, autoregressive and
  seasonal-naive/persistence models;
* :mod:`~repro.forecasting.wind` — a synthetic wind farm plus the 36 h-ahead
  forecasting task (CLAIM-WIND);
* :mod:`~repro.forecasting.demand` — cluster demand / energy-price forecasting;
* :mod:`~repro.forecasting.evaluation` — MAE/RMSE/MAPE/skill metrics and
  backtesting.
"""

from .features import make_lag_matrix, make_seasonal_features, train_test_split_series
from .linear import RidgeRegressor, AutoregressiveForecaster, PersistenceForecaster, SeasonalNaiveForecaster
from .wind import WindFarmConfig, WindFarmSimulator, WindPowerForecaster
from .demand import DemandForecaster, PriceForecaster
from .evaluation import ForecastMetrics, evaluate_forecast, forecast_skill

__all__ = [
    "make_lag_matrix",
    "make_seasonal_features",
    "train_test_split_series",
    "RidgeRegressor",
    "AutoregressiveForecaster",
    "PersistenceForecaster",
    "SeasonalNaiveForecaster",
    "WindFarmConfig",
    "WindFarmSimulator",
    "WindPowerForecaster",
    "DemandForecaster",
    "PriceForecaster",
    "ForecastMetrics",
    "evaluate_forecast",
    "forecast_skill",
]
