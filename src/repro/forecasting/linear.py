"""Linear forecasting models (NumPy only).

The forecasting needs of the paper's decision problems are modest: relate
energy prices, fuel mix, demand and weather to one another well enough to
schedule purchases and anticipate load.  Ridge regression over lag/seasonal
features, a small autoregressive wrapper, and the persistence / seasonal-naive
baselines every forecast must beat are sufficient — and keep the package free
of ML-framework dependencies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ForecastError
from .features import make_lag_matrix

__all__ = [
    "RidgeRegressor",
    "AutoregressiveForecaster",
    "PersistenceForecaster",
    "SeasonalNaiveForecaster",
]


class RidgeRegressor:
    """Ridge (L2-regularised least squares) regression.

    Solves ``min_w ||X w - y||^2 + alpha ||w||^2`` in closed form.  Features
    are standardised internally so that ``alpha`` is scale-free; the intercept
    is never penalised.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ForecastError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.coef_ is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        """Fit the model to features ``X`` (n_samples, n_features) and targets ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ForecastError("X must be 2-D")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ForecastError("y must be 1-D and aligned with X")
        if X.shape[0] < 2:
            raise ForecastError("at least two samples are required to fit")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        y_mean = float(y.mean())
        yc = y - y_mean
        n_features = Xs.shape[1]
        gram = Xs.T @ Xs + self.alpha * np.eye(n_features)
        coef = np.linalg.solve(gram, Xs.T @ yc)
        self.coef_ = coef
        self.intercept_ = y_mean
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for new features."""
        if not self.is_fitted:
            raise ForecastError("predict() called before fit()")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise ForecastError("X has the wrong shape for this fitted model")
        Xs = (X - self._mean) / self._scale
        return Xs @ self.coef_ + self.intercept_

    def score_r2(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination on the given data."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot


class AutoregressiveForecaster:
    """AR(p) forecaster built on :class:`RidgeRegressor` over lagged values.

    Parameters
    ----------
    lags:
        The autoregressive lags to use (e.g. ``(1, 2, 3, 24)`` for hourly data
        with a daily component).
    horizon:
        Forecast horizon in steps (direct, not recursive, forecasting).
    alpha:
        Ridge penalty.
    """

    def __init__(self, lags: Sequence[int] = (1, 2, 3, 24), *, horizon: int = 1, alpha: float = 1e-3) -> None:
        self.lags = tuple(int(l) for l in lags)
        if not self.lags or any(l < 1 for l in self.lags):
            raise ForecastError("lags must be positive integers")
        if horizon < 1:
            raise ForecastError("horizon must be >= 1")
        self.horizon = int(horizon)
        self.model = RidgeRegressor(alpha=alpha)
        self._history: Optional[np.ndarray] = None

    def fit(self, series: np.ndarray, exogenous: Optional[np.ndarray] = None) -> "AutoregressiveForecaster":
        """Fit the AR model on a historical series (plus optional exogenous features)."""
        series = np.asarray(series, dtype=float)
        X, y = make_lag_matrix(series, self.lags, horizon=self.horizon, exogenous=exogenous)
        self.model.fit(X, y)
        self._history = series.copy()
        return self

    def predict_from_history(
        self, history: np.ndarray, exogenous_future: Optional[np.ndarray] = None
    ) -> float:
        """One direct ``horizon``-step-ahead forecast from the end of ``history``."""
        if not self.model.is_fitted:
            raise ForecastError("fit() must be called before forecasting")
        history = np.asarray(history, dtype=float)
        max_lag = max(self.lags)
        if history.shape[0] < max_lag:
            raise ForecastError(f"history must contain at least {max_lag} observations")
        features = [history[-lag] for lag in self.lags]
        if exogenous_future is not None:
            exo = np.atleast_1d(np.asarray(exogenous_future, dtype=float))
            features = list(features) + list(exo)
        return float(self.model.predict(np.asarray(features)[None, :])[0])

    def backtest(
        self, series: np.ndarray, exogenous: Optional[np.ndarray] = None, *, test_fraction: float = 0.25
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fit on the head of ``series`` and forecast the tail, returning (predictions, truth)."""
        series = np.asarray(series, dtype=float)
        n = series.shape[0]
        split = int(round(n * (1.0 - test_fraction)))
        max_lag = max(self.lags)
        if split <= max_lag + self.horizon:
            raise ForecastError("series too short for the requested backtest")
        exo = None if exogenous is None else np.asarray(exogenous, dtype=float)
        train_exo = None if exo is None else exo[:split]
        self.fit(series[:split], train_exo)
        predictions = []
        truth = []
        for t in range(split, n - self.horizon + 1):
            history = series[:t]
            exo_future = None if exo is None else exo[t + self.horizon - 1]
            predictions.append(self.predict_from_history(history, exo_future))
            truth.append(series[t + self.horizon - 1])
        return np.asarray(predictions), np.asarray(truth)


class PersistenceForecaster:
    """The persistence baseline: forecast = last observed value.

    This is the baseline DeepMind's wind forecasts are implicitly compared
    against; any learned forecaster must beat it to be worth deploying.
    """

    def __init__(self, horizon: int = 1) -> None:
        if horizon < 1:
            raise ForecastError("horizon must be >= 1")
        self.horizon = int(horizon)

    def backtest(self, series: np.ndarray, *, test_fraction: float = 0.25) -> tuple[np.ndarray, np.ndarray]:
        """Persistence forecasts over the tail of the series, returning (predictions, truth)."""
        series = np.asarray(series, dtype=float)
        n = series.shape[0]
        split = int(round(n * (1.0 - test_fraction)))
        if split < 1 or split >= n - self.horizon + 1:
            raise ForecastError("series too short for the requested backtest")
        predictions = []
        truth = []
        for t in range(split, n - self.horizon + 1):
            predictions.append(series[t - 1])
            truth.append(series[t + self.horizon - 1])
        return np.asarray(predictions), np.asarray(truth)


class SeasonalNaiveForecaster:
    """Seasonal-naive baseline: forecast = value one season (e.g. 24 h) ago."""

    def __init__(self, season_length: int = 24, horizon: int = 1) -> None:
        if season_length < 1 or horizon < 1:
            raise ForecastError("season_length and horizon must be >= 1")
        self.season_length = int(season_length)
        self.horizon = int(horizon)

    def backtest(self, series: np.ndarray, *, test_fraction: float = 0.25) -> tuple[np.ndarray, np.ndarray]:
        """Seasonal-naive forecasts over the tail, returning (predictions, truth)."""
        series = np.asarray(series, dtype=float)
        n = series.shape[0]
        split = int(round(n * (1.0 - test_fraction)))
        if split <= self.season_length:
            raise ForecastError("series too short for the requested backtest")
        predictions = []
        truth = []
        for t in range(split, n - self.horizon + 1):
            target_index = t + self.horizon - 1
            predictions.append(series[target_index - self.season_length])
            truth.append(series[target_index])
        return np.asarray(predictions), np.asarray(truth)
