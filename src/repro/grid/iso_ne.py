"""A bundled ISO-New-England-like grid facade.

Most experiments need the fuel mix, carbon intensity and price series
together and aligned on the same hourly grid.  :class:`IsoNeLikeGrid`
generates all three once per calendar horizon and exposes hourly and monthly
views, which keeps the figure builders, schedulers and purchasing benchmarks
from each re-deriving (and re-seeding) the grid state.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import DataError
from ..rng import SeedLike
from ..timeutils import SimulationCalendar
from .carbon_intensity import CarbonIntensityModel
from .fuel_mix import FuelMixConfig, FuelMixModel, GenerationMix
from .pricing import LmpPriceConfig, LmpPriceModel

__all__ = ["GridMonthlySummary", "IsoNeLikeGrid"]


@dataclass(frozen=True)
class GridMonthlySummary:
    """Monthly aggregates of the grid state over the simulation horizon."""

    month_labels: tuple[str, ...]
    month_of_year: np.ndarray
    renewable_share_pct: np.ndarray
    carbon_intensity_g_per_kwh: np.ndarray
    price_per_mwh: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.month_labels)
        for name in ("month_of_year", "renewable_share_pct", "carbon_intensity_g_per_kwh", "price_per_mwh"):
            if getattr(self, name).shape != (n,):
                raise DataError(f"{name} must have length {n}")


class IsoNeLikeGrid:
    """Aligned hourly fuel-mix, carbon-intensity and price series for a horizon.

    Parameters
    ----------
    calendar:
        The simulation horizon.
    fuel_config / price_config:
        Optional model parameter overrides.
    seed:
        Master seed; fuel-mix weather and price noise use derived streams.
    """

    def __init__(
        self,
        calendar: SimulationCalendar,
        *,
        fuel_config: FuelMixConfig | None = None,
        price_config: LmpPriceConfig | None = None,
        seed: SeedLike = None,
    ) -> None:
        self.calendar = calendar
        self.fuel_model = FuelMixModel(fuel_config, seed=seed)
        self.price_model = LmpPriceModel(price_config, seed=seed)
        self.carbon_model = CarbonIntensityModel()

    # ------------------------------------------------------------------
    # Hourly series (lazily generated, then cached)
    # ------------------------------------------------------------------
    @cached_property
    def mix(self) -> GenerationMix:
        """The hourly generation mix for the horizon."""
        return self.fuel_model.generate(self.calendar)

    @cached_property
    def hours(self) -> np.ndarray:
        """Simulated hours of every row of the hourly series."""
        return self.mix.hours

    @cached_property
    def renewable_share(self) -> np.ndarray:
        """Hourly solar+wind share of generation (fraction in [0, 1])."""
        return self.mix.renewable_share()

    @cached_property
    def carbon_intensity_g_per_kwh(self) -> np.ndarray:
        """Hourly grid carbon intensity."""
        return self.carbon_model.intensity_series(self.mix)

    @cached_property
    def price_per_mwh(self) -> np.ndarray:
        """Hourly real-time LMP."""
        return self.price_model.price_series(self.calendar, self.mix)

    # ------------------------------------------------------------------
    # Monthly views
    # ------------------------------------------------------------------
    @cached_property
    def monthly(self) -> GridMonthlySummary:
        """Monthly aggregates (renewable %, carbon intensity, price)."""
        cal = self.calendar
        return GridMonthlySummary(
            month_labels=tuple(cal.labels()),
            month_of_year=cal.month_of_year_array(),
            renewable_share_pct=self.fuel_model.monthly_renewable_share(cal, self.mix),
            carbon_intensity_g_per_kwh=self.carbon_model.monthly_intensity(cal, self.mix),
            price_per_mwh=self.price_model.monthly_average_price(cal, self.mix, self.price_per_mwh),
        )

    # ------------------------------------------------------------------
    # Point queries used by schedulers
    # ------------------------------------------------------------------
    def state_at_hour(self, hour: float) -> dict[str, float]:
        """Grid state (renewable share, intensity, price) at a simulated hour."""
        index = int(np.clip(np.searchsorted(self.hours, hour, side="right") - 1, 0, self.hours.shape[0] - 1))
        return {
            "hour": float(self.hours[index]),
            "renewable_share": float(self.renewable_share[index]),
            "carbon_intensity_g_per_kwh": float(self.carbon_intensity_g_per_kwh[index]),
            "price_per_mwh": float(self.price_per_mwh[index]),
        }

    def carbon_intensity_at(self, hour: float) -> float:
        """Carbon intensity (gCO2e/kWh) at a simulated hour."""
        return self.state_at_hour(hour)["carbon_intensity_g_per_kwh"]

    def price_at(self, hour: float) -> float:
        """Price ($/MWh) at a simulated hour."""
        return self.state_at_hour(hour)["price_per_mwh"]

    def greenest_hours(self, n: int) -> np.ndarray:
        """Indices of the ``n`` hours with the highest renewable share."""
        if n <= 0:
            raise DataError(f"n must be positive, got {n!r}")
        n = min(n, self.hours.shape[0])
        return np.argsort(self.renewable_share)[::-1][:n]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IsoNeLikeGrid(n_months={self.calendar.n_months})"
