"""Energy-purchasing strategies (Section II.A).

The paper frames the timing of energy purchases as an *opportunity cost*
problem: buying power in an hour when the grid's fuel mix is dirty forgoes
the opportunity to buy the same energy later when it is greener (and, per
Fig. 3, usually cheaper).  The strategies here decide, for every hour, how
much energy to buy given the facility's demand, the grid state (renewable
share, carbon intensity, price) and optionally a battery:

* :class:`BaselinePurchasing` — buy exactly what is consumed, when it is
  consumed (the status quo).
* :class:`GreenWindowPurchasing` — over-purchase into storage when the
  renewable share is above a threshold, discharge when it is below.
* :class:`PriceThresholdPurchasing` — same, keyed on price quantiles rather
  than renewable share (the purely financial strategy).
* :class:`StorageBackedPurchasing` — a combined strategy that charges when
  the hour is green *and* cheap and discharges in dirty, expensive hours.

:func:`evaluate_purchasing_strategy` runs a strategy over aligned hourly
series and reports total cost, total emissions, effective renewable share and
storage losses, which is what the CLAIM-SHIFT benchmark tabulates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import DataError
from .storage import BatteryStorage

__all__ = [
    "GridHourState",
    "PurchaseDecision",
    "PurchasingOutcome",
    "PurchasingStrategy",
    "BaselinePurchasing",
    "GreenWindowPurchasing",
    "PriceThresholdPurchasing",
    "StorageBackedPurchasing",
    "evaluate_purchasing_strategy",
]


@dataclass(frozen=True)
class GridHourState:
    """The information a purchasing strategy sees for one hour."""

    hour: float
    demand_kwh: float
    price_per_mwh: float
    renewable_share: float
    carbon_intensity_g_per_kwh: float


@dataclass(frozen=True)
class PurchaseDecision:
    """A strategy's decision for one hour.

    Attributes
    ----------
    grid_purchase_kwh:
        Energy bought from the grid this hour (demand + any charging).
    battery_charge_kwh:
        Portion of the purchase routed into the battery.
    battery_discharge_kwh:
        Energy served from the battery instead of the grid.
    """

    grid_purchase_kwh: float
    battery_charge_kwh: float = 0.0
    battery_discharge_kwh: float = 0.0

    def __post_init__(self) -> None:
        if self.grid_purchase_kwh < 0 or self.battery_charge_kwh < 0 or self.battery_discharge_kwh < 0:
            raise DataError("purchase decision quantities must be non-negative")


@dataclass(frozen=True)
class PurchasingOutcome:
    """Aggregate result of running a purchasing strategy over a horizon."""

    strategy_name: str
    total_purchased_kwh: float
    total_demand_kwh: float
    total_cost_usd: float
    total_emissions_g: float
    weighted_renewable_share: float
    storage_losses_kwh: float
    hourly_purchases_kwh: np.ndarray

    @property
    def average_price_paid_per_mwh(self) -> float:
        """Effective average price paid per MWh purchased."""
        if self.total_purchased_kwh == 0:
            return 0.0
        return self.total_cost_usd / (self.total_purchased_kwh / 1e3)

    @property
    def emissions_per_kwh_demand(self) -> float:
        """Emissions per kWh of *served* demand (gCO2e/kWh)."""
        if self.total_demand_kwh == 0:
            return 0.0
        return self.total_emissions_g / self.total_demand_kwh


class PurchasingStrategy(ABC):
    """Interface for hour-by-hour purchasing strategies."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    def __init__(self, storage: Optional[BatteryStorage] = None) -> None:
        self.storage = storage

    def prepare(self, states: list[GridHourState]) -> None:
        """Optional pre-pass over the whole horizon (e.g. to compute quantiles)."""

    @abstractmethod
    def decide(self, state: GridHourState) -> PurchaseDecision:
        """Return the purchase decision for one hour."""


class BaselinePurchasing(PurchasingStrategy):
    """Buy exactly the demanded energy every hour (status quo)."""

    name = "baseline"

    def decide(self, state: GridHourState) -> PurchaseDecision:
        return PurchaseDecision(grid_purchase_kwh=state.demand_kwh)


class GreenWindowPurchasing(PurchasingStrategy):
    """Charge storage when the renewable share is high, discharge when low.

    Parameters
    ----------
    storage:
        The battery used for shifting (required).
    green_quantile:
        Hours whose renewable share is above this quantile of the horizon are
        treated as green (charge) hours.
    dirty_quantile:
        Hours below this quantile are dirty (discharge) hours.
    charge_rate_fraction:
        Fraction of the battery's max charge power used in green hours.
    """

    name = "green-window"

    def __init__(
        self,
        storage: BatteryStorage,
        *,
        green_quantile: float = 0.7,
        dirty_quantile: float = 0.3,
        charge_rate_fraction: float = 1.0,
    ) -> None:
        super().__init__(storage)
        if storage is None:
            raise DataError("GreenWindowPurchasing requires a battery")
        if not 0.0 <= dirty_quantile < green_quantile <= 1.0:
            raise DataError("require 0 <= dirty_quantile < green_quantile <= 1")
        if not 0.0 < charge_rate_fraction <= 1.0:
            raise DataError("charge_rate_fraction must lie in (0, 1]")
        self.green_quantile = green_quantile
        self.dirty_quantile = dirty_quantile
        self.charge_rate_fraction = charge_rate_fraction
        self._green_threshold = np.inf
        self._dirty_threshold = -np.inf

    def prepare(self, states: list[GridHourState]) -> None:
        shares = np.asarray([s.renewable_share for s in states], dtype=float)
        if shares.size == 0:
            raise DataError("cannot prepare strategy on an empty horizon")
        self._green_threshold = float(np.quantile(shares, self.green_quantile))
        self._dirty_threshold = float(np.quantile(shares, self.dirty_quantile))

    def _signal(self, state: GridHourState) -> str:
        if state.renewable_share >= self._green_threshold:
            return "green"
        if state.renewable_share <= self._dirty_threshold:
            return "dirty"
        return "neutral"

    def decide(self, state: GridHourState) -> PurchaseDecision:
        assert self.storage is not None
        signal = self._signal(state)
        if signal == "green":
            offered = self.storage.config.max_charge_kw * self.charge_rate_fraction
            charged = self.storage.charge(offered, duration_h=1.0)
            self.storage.idle(0.0)
            return PurchaseDecision(
                grid_purchase_kwh=state.demand_kwh + charged,
                battery_charge_kwh=charged,
            )
        if signal == "dirty":
            discharged = self.storage.discharge(state.demand_kwh, duration_h=1.0)
            return PurchaseDecision(
                grid_purchase_kwh=state.demand_kwh - discharged,
                battery_discharge_kwh=discharged,
            )
        self.storage.idle(1.0)
        return PurchaseDecision(grid_purchase_kwh=state.demand_kwh)


class PriceThresholdPurchasing(GreenWindowPurchasing):
    """Charge when prices are low, discharge when prices are high.

    Identical machinery to :class:`GreenWindowPurchasing`, but the signal is
    the hourly price: cheap hours (below the ``dirty_quantile`` of prices...
    i.e. the *low* quantile) trigger charging and expensive hours trigger
    discharging.  Because price and renewable share are anti-correlated
    (Fig. 3), this financially motivated strategy also reduces emissions —
    one of the paper's central points.
    """

    name = "price-threshold"

    def prepare(self, states: list[GridHourState]) -> None:
        prices = np.asarray([s.price_per_mwh for s in states], dtype=float)
        if prices.size == 0:
            raise DataError("cannot prepare strategy on an empty horizon")
        # Cheap hours are the charge window; expensive hours the discharge window.
        self._cheap_threshold = float(np.quantile(prices, 1.0 - self.green_quantile))
        self._expensive_threshold = float(np.quantile(prices, 1.0 - self.dirty_quantile))

    def _signal(self, state: GridHourState) -> str:
        if state.price_per_mwh <= self._cheap_threshold:
            return "green"
        if state.price_per_mwh >= self._expensive_threshold:
            return "dirty"
        return "neutral"


class StorageBackedPurchasing(GreenWindowPurchasing):
    """Charge only in hours that are both green and cheap; discharge in hours
    that are both dirty and expensive.

    The conjunction makes the strategy more conservative than either parent
    signal alone: the battery cycles less, losing less energy to round-trip
    inefficiency, at the cost of shifting less volume.
    """

    name = "storage-backed"

    def prepare(self, states: list[GridHourState]) -> None:
        shares = np.asarray([s.renewable_share for s in states], dtype=float)
        prices = np.asarray([s.price_per_mwh for s in states], dtype=float)
        if shares.size == 0:
            raise DataError("cannot prepare strategy on an empty horizon")
        self._green_threshold = float(np.quantile(shares, self.green_quantile))
        self._dirty_threshold = float(np.quantile(shares, self.dirty_quantile))
        self._cheap_threshold = float(np.quantile(prices, 1.0 - self.green_quantile))
        self._expensive_threshold = float(np.quantile(prices, 1.0 - self.dirty_quantile))

    def _signal(self, state: GridHourState) -> str:
        green = state.renewable_share >= self._green_threshold
        cheap = state.price_per_mwh <= self._cheap_threshold
        dirty = state.renewable_share <= self._dirty_threshold
        expensive = state.price_per_mwh >= self._expensive_threshold
        if green and cheap:
            return "green"
        if dirty and expensive:
            return "dirty"
        return "neutral"


def evaluate_purchasing_strategy(
    strategy: PurchasingStrategy,
    *,
    hours: np.ndarray,
    demand_kwh: np.ndarray,
    prices_per_mwh: np.ndarray,
    renewable_share: np.ndarray,
    carbon_intensity_g_per_kwh: np.ndarray,
) -> PurchasingOutcome:
    """Run a purchasing strategy over aligned hourly series and aggregate results.

    All series must have identical lengths.  Emissions are attributed to the
    hour in which energy is *purchased* (grid accounting), so shifting
    purchases into green hours reduces attributed emissions even though the
    facility's consumption profile is unchanged.
    """
    arrays = {
        "hours": np.asarray(hours, dtype=float),
        "demand_kwh": np.asarray(demand_kwh, dtype=float),
        "prices_per_mwh": np.asarray(prices_per_mwh, dtype=float),
        "renewable_share": np.asarray(renewable_share, dtype=float),
        "carbon_intensity_g_per_kwh": np.asarray(carbon_intensity_g_per_kwh, dtype=float),
    }
    lengths = {name: arr.shape for name, arr in arrays.items()}
    if len(set(lengths.values())) != 1:
        raise DataError(f"all hourly series must have the same shape, got {lengths}")
    if np.any(arrays["demand_kwh"] < 0):
        raise DataError("demand_kwh must be non-negative")

    states = [
        GridHourState(
            hour=float(arrays["hours"][i]),
            demand_kwh=float(arrays["demand_kwh"][i]),
            price_per_mwh=float(arrays["prices_per_mwh"][i]),
            renewable_share=float(arrays["renewable_share"][i]),
            carbon_intensity_g_per_kwh=float(arrays["carbon_intensity_g_per_kwh"][i]),
        )
        for i in range(arrays["hours"].shape[0])
    ]
    if strategy.storage is not None:
        strategy.storage.reset()
    strategy.prepare(states)

    purchases = np.zeros(len(states))
    cost = 0.0
    emissions = 0.0
    renewable_weighted = 0.0
    for i, state in enumerate(states):
        decision = strategy.decide(state)
        purchases[i] = decision.grid_purchase_kwh
        cost += decision.grid_purchase_kwh / 1e3 * state.price_per_mwh
        emissions += decision.grid_purchase_kwh * state.carbon_intensity_g_per_kwh
        renewable_weighted += decision.grid_purchase_kwh * state.renewable_share

    total_purchased = float(purchases.sum())
    total_demand = float(arrays["demand_kwh"].sum())
    weighted_share = renewable_weighted / total_purchased if total_purchased > 0 else 0.0
    losses = strategy.storage.total_losses_kwh if strategy.storage is not None else 0.0
    return PurchasingOutcome(
        strategy_name=strategy.name,
        total_purchased_kwh=total_purchased,
        total_demand_kwh=total_demand,
        total_cost_usd=float(cost),
        total_emissions_g=float(emissions),
        weighted_renewable_share=float(weighted_share),
        storage_losses_kwh=float(losses),
        hourly_purchases_kwh=purchases,
    )
