"""Grid carbon intensity derived from the hourly fuel mix.

Converts the generation shares produced by :class:`~repro.grid.fuel_mix.FuelMixModel`
into grams of CO2-equivalent per kWh using standard life-cycle emission
factors per fuel.  Carbon-aware scheduling and the emission accounting in the
tracking layer both consume this series.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from ..errors import DataError
from ..timeutils import SimulationCalendar
from .fuel_mix import FUEL_TYPES, FuelMixModel, GenerationMix

__all__ = ["EMISSION_FACTORS_G_PER_KWH", "CarbonIntensityModel"]

ArrayLike = Union[float, np.ndarray]

#: Life-cycle emission factors in gCO2e per kWh generated, by fuel.
#: Values follow the IPCC AR5 median life-cycle estimates, with "other"
#: representing a blend of oil, refuse and imports typical of ISO-NE.
EMISSION_FACTORS_G_PER_KWH: Mapping[str, float] = {
    "solar": 41.0,
    "wind": 11.0,
    "hydro": 24.0,
    "nuclear": 12.0,
    "natural_gas": 490.0,
    "other": 650.0,
}


class CarbonIntensityModel:
    """Maps fuel-mix shares to grid carbon intensity (gCO2e/kWh).

    Parameters
    ----------
    emission_factors:
        Optional override of the per-fuel emission factors; must provide a
        non-negative value for every fuel in :data:`FUEL_TYPES`.
    """

    def __init__(self, emission_factors: Mapping[str, float] | None = None) -> None:
        factors = dict(EMISSION_FACTORS_G_PER_KWH)
        if emission_factors is not None:
            factors.update(emission_factors)
        missing = [fuel for fuel in FUEL_TYPES if fuel not in factors]
        if missing:
            raise DataError(f"missing emission factors for fuels: {missing}")
        negative = [fuel for fuel in FUEL_TYPES if factors[fuel] < 0]
        if negative:
            raise DataError(f"emission factors must be non-negative, offending fuels: {negative}")
        self.emission_factors = {fuel: float(factors[fuel]) for fuel in FUEL_TYPES}
        self._factor_vector = np.asarray([self.emission_factors[f] for f in FUEL_TYPES])

    def intensity_from_shares(self, shares: np.ndarray) -> np.ndarray:
        """Carbon intensity for an (n_hours, n_fuels) share array."""
        arr = np.asarray(shares, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != len(FUEL_TYPES):
            raise DataError(
                f"shares must have shape (n_hours, {len(FUEL_TYPES)}), got {arr.shape}"
            )
        return arr @ self._factor_vector

    def intensity_series(self, mix: GenerationMix) -> np.ndarray:
        """Hourly carbon intensity (gCO2e/kWh) for a generation mix."""
        return self.intensity_from_shares(mix.shares)

    def monthly_intensity(
        self, calendar: SimulationCalendar, mix: GenerationMix
    ) -> np.ndarray:
        """Demand-weighted monthly mean carbon intensity."""
        intensity = self.intensity_series(mix)
        month_index = calendar.month_indices_for_hours(mix.hours)
        out = np.empty(calendar.n_months, dtype=float)
        for i in range(calendar.n_months):
            mask = month_index == i
            if not np.any(mask):
                raise DataError(f"no hours found for month index {i}")
            out[i] = float(np.average(intensity[mask], weights=mix.demand_mw[mask]))
        return out

    def annual_average(self, mix: GenerationMix) -> float:
        """Demand-weighted average carbon intensity over the whole horizon."""
        intensity = self.intensity_series(mix)
        return float(np.average(intensity, weights=mix.demand_mw))

    @classmethod
    def default_series(
        cls, calendar: SimulationCalendar, *, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: generate (hours, hourly intensity) with default models."""
        model = FuelMixModel(seed=seed)
        mix = model.generate(calendar)
        intensity = cls().intensity_series(mix)
        return mix.hours, intensity
