"""Battery storage model for storage-backed energy purchasing.

Section II.A of the paper proposes two ways to exploit the mismatch between
the facility's consumption and the grid's green windows: shift utilization
into green months, or "store that energy to help offset energy consumption
during times where the fuel mix is less sustainably sourced."  This module
implements the storage option as a simple energy-balance battery with
round-trip losses, power limits and self-discharge; the purchasing strategies
use it to charge during green/cheap hours and discharge during dirty/expensive
ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import require_fraction, require_non_negative, require_positive
from ..errors import ConfigurationError, SimulationError

__all__ = ["StorageConfig", "BatteryStorage"]


@dataclass(frozen=True)
class StorageConfig:
    """Physical parameters of the battery system.

    Attributes
    ----------
    capacity_kwh:
        Usable energy capacity.
    max_charge_kw / max_discharge_kw:
        Power limits for charging and discharging.
    round_trip_efficiency:
        Fraction of charged energy recoverable on discharge (applied on the
        charge side: storing ``x`` kWh of grid energy adds
        ``x * round_trip_efficiency`` kWh to the state of charge).
    self_discharge_per_hour:
        Fraction of the state of charge lost per idle hour.
    initial_soc_fraction:
        Initial state of charge as a fraction of capacity.
    """

    capacity_kwh: float = 2_000.0
    max_charge_kw: float = 500.0
    max_discharge_kw: float = 500.0
    round_trip_efficiency: float = 0.88
    self_discharge_per_hour: float = 1e-4
    initial_soc_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.capacity_kwh, "capacity_kwh")
        require_positive(self.max_charge_kw, "max_charge_kw")
        require_positive(self.max_discharge_kw, "max_discharge_kw")
        if not 0.0 < self.round_trip_efficiency <= 1.0:
            raise ConfigurationError("round_trip_efficiency must lie in (0, 1]")
        require_fraction(self.self_discharge_per_hour, "self_discharge_per_hour")
        require_fraction(self.initial_soc_fraction, "initial_soc_fraction")


class BatteryStorage:
    """Stateful battery with charge/discharge/idle operations on hourly steps."""

    def __init__(self, config: StorageConfig | None = None) -> None:
        self.config = config or StorageConfig()
        self._soc_kwh = self.config.capacity_kwh * self.config.initial_soc_fraction
        self._total_charged_kwh = 0.0
        self._total_discharged_kwh = 0.0
        self._total_losses_kwh = 0.0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def soc_kwh(self) -> float:
        """Current usable state of charge in kWh."""
        return self._soc_kwh

    @property
    def soc_fraction(self) -> float:
        """Current state of charge as a fraction of capacity."""
        return self._soc_kwh / self.config.capacity_kwh

    @property
    def headroom_kwh(self) -> float:
        """How much more energy the battery could absorb (post-efficiency)."""
        return self.config.capacity_kwh - self._soc_kwh

    @property
    def total_charged_kwh(self) -> float:
        """Cumulative grid energy drawn for charging."""
        return self._total_charged_kwh

    @property
    def total_discharged_kwh(self) -> float:
        """Cumulative energy delivered from the battery."""
        return self._total_discharged_kwh

    @property
    def total_losses_kwh(self) -> float:
        """Cumulative conversion + self-discharge losses."""
        return self._total_losses_kwh

    # ------------------------------------------------------------------
    # Operations (hourly granularity)
    # ------------------------------------------------------------------
    def charge(self, offered_kwh: float, duration_h: float = 1.0) -> float:
        """Charge with up to ``offered_kwh`` of grid energy over ``duration_h`` hours.

        Returns the grid energy actually consumed (before efficiency losses),
        which may be less than offered because of the power limit or a full
        battery.
        """
        if offered_kwh < 0:
            raise SimulationError(f"offered_kwh must be non-negative, got {offered_kwh!r}")
        if duration_h <= 0:
            raise SimulationError(f"duration_h must be positive, got {duration_h!r}")
        power_limited = min(offered_kwh, self.config.max_charge_kw * duration_h)
        storable = power_limited * self.config.round_trip_efficiency
        accepted_store = min(storable, self.headroom_kwh)
        if storable <= 0:
            grid_energy = 0.0
        else:
            grid_energy = accepted_store / self.config.round_trip_efficiency
        self._soc_kwh += accepted_store
        self._total_charged_kwh += grid_energy
        self._total_losses_kwh += grid_energy - accepted_store
        return grid_energy

    def discharge(self, requested_kwh: float, duration_h: float = 1.0) -> float:
        """Discharge up to ``requested_kwh`` over ``duration_h`` hours.

        Returns the energy actually delivered, limited by the power limit and
        the current state of charge.
        """
        if requested_kwh < 0:
            raise SimulationError(f"requested_kwh must be non-negative, got {requested_kwh!r}")
        if duration_h <= 0:
            raise SimulationError(f"duration_h must be positive, got {duration_h!r}")
        deliverable = min(
            requested_kwh, self.config.max_discharge_kw * duration_h, self._soc_kwh
        )
        self._soc_kwh -= deliverable
        self._total_discharged_kwh += deliverable
        return deliverable

    def idle(self, duration_h: float = 1.0) -> float:
        """Let the battery sit idle, applying self-discharge; returns energy lost."""
        if duration_h < 0:
            raise SimulationError(f"duration_h must be non-negative, got {duration_h!r}")
        retention = (1.0 - self.config.self_discharge_per_hour) ** duration_h
        lost = self._soc_kwh * (1.0 - retention)
        self._soc_kwh -= lost
        self._total_losses_kwh += lost
        return lost

    def reset(self) -> None:
        """Restore the initial state of charge and zero the counters."""
        self._soc_kwh = self.config.capacity_kwh * self.config.initial_soc_fraction
        self._total_charged_kwh = 0.0
        self._total_discharged_kwh = 0.0
        self._total_losses_kwh = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatteryStorage(soc={self._soc_kwh:.1f}/{self.config.capacity_kwh:.1f} kWh)"
        )
