"""Hourly fuel-mix model for a New-England-like grid.

Figure 2 of the paper plots the monthly share of supplied energy generated
from solar and wind (roughly 4.5%-8.5% over 2020-21) against the facility's
power draw, and observes that the greenest months are February-May while the
facility's consumption peaks in June-August.  This module generates an hourly
generation mix with exactly those seasonal properties:

* **Solar** follows a diurnal bell scaled by day length and a seasonal
  irradiance factor; its share peaks in spring when demand is moderate.
* **Wind** is strongest in winter and early spring, weakest in mid-summer.
* **Hydro, nuclear** are roughly constant baseload.
* **Natural gas** and the residual "other" category absorb whatever demand
  remains, which is why hot, high-demand months dilute the renewable share.

The model is intentionally phenomenological: the reproduction needs the
seasonal shape and relative magnitudes, not a dispatch simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigurationError, DataError
from ..rng import SeedLike, make_rng
from ..timeutils import SimulationCalendar

__all__ = ["FUEL_TYPES", "FuelMixConfig", "GenerationMix", "FuelMixModel"]

#: Order of fuels in all arrays produced by this module.
FUEL_TYPES: tuple[str, ...] = ("solar", "wind", "hydro", "nuclear", "natural_gas", "other")


@dataclass(frozen=True)
class FuelMixConfig:
    """Parameters of the synthetic fuel-mix model.

    The defaults are tuned so that the *monthly* solar+wind share traces the
    4.5%-8.5% band shown in Fig. 2/3, peaking in Feb-May and bottoming out in
    July-August.

    Attributes
    ----------
    solar_peak_share:
        Midday solar share of generation on a clear spring day.
    solar_seasonal_amplitude:
        Relative seasonal modulation of solar output (0 = none).
    wind_mean_share:
        Mean wind share of generation.
    wind_seasonal_amplitude:
        Relative seasonal modulation of wind (peaks in winter/early spring).
    hydro_share / nuclear_share:
        Approximately constant baseload shares.
    weather_noise_std:
        Standard deviation of the day-to-day lognormal weather multiplier
        applied to solar and wind.
    demand_peak_month:
        Month (1-12) when total grid demand peaks (July for ISO-NE); higher
        demand dilutes the renewable share.
    demand_seasonal_amplitude:
        Relative seasonal swing in total grid demand.
    winter_demand_bump:
        Secondary demand bump centred on mid-January (electric heating and
        the New England winter peak), which keeps deep winter from looking
        artificially cheap/green relative to spring.
    """

    solar_peak_share: float = 0.095
    solar_seasonal_amplitude: float = 0.45
    wind_mean_share: float = 0.042
    wind_seasonal_amplitude: float = 0.40
    hydro_share: float = 0.07
    nuclear_share: float = 0.26
    weather_noise_std: float = 0.18
    demand_peak_month: int = 7
    demand_seasonal_amplitude: float = 0.16
    winter_demand_bump: float = 0.08

    def __post_init__(self) -> None:
        require_fraction(self.solar_peak_share, "solar_peak_share")
        require_fraction(self.wind_mean_share, "wind_mean_share")
        require_fraction(self.hydro_share, "hydro_share")
        require_fraction(self.nuclear_share, "nuclear_share")
        require_fraction(self.solar_seasonal_amplitude, "solar_seasonal_amplitude")
        require_fraction(self.wind_seasonal_amplitude, "wind_seasonal_amplitude")
        require_fraction(self.demand_seasonal_amplitude, "demand_seasonal_amplitude")
        require_fraction(self.winter_demand_bump, "winter_demand_bump")
        if self.weather_noise_std < 0:
            raise ConfigurationError("weather_noise_std must be non-negative")
        if not 1 <= self.demand_peak_month <= 12:
            raise ConfigurationError("demand_peak_month must be in 1..12")
        if self.hydro_share + self.nuclear_share >= 0.8:
            raise ConfigurationError("baseload shares leave no room for other fuels")


@dataclass(frozen=True)
class GenerationMix:
    """Hourly generation shares by fuel plus total demand.

    Attributes
    ----------
    hours:
        Simulated hour of each row.
    shares:
        Array of shape (n_hours, len(FUEL_TYPES)); rows sum to 1.
    demand_mw:
        Total grid demand in MW for each hour (relative scale).
    """

    hours: np.ndarray
    shares: np.ndarray
    demand_mw: np.ndarray

    def __post_init__(self) -> None:
        if self.shares.shape != (self.hours.shape[0], len(FUEL_TYPES)):
            raise DataError("shares must have shape (n_hours, n_fuels)")
        if self.demand_mw.shape != self.hours.shape:
            raise DataError("demand_mw must have the same length as hours")
        sums = self.shares.sum(axis=1)
        if self.shares.size and not np.allclose(sums, 1.0, atol=1e-6):
            raise DataError("generation shares must sum to 1 in every hour")

    def share_of(self, fuel: str) -> np.ndarray:
        """Hourly share of a single fuel."""
        try:
            index = FUEL_TYPES.index(fuel)
        except ValueError as exc:
            raise DataError(f"unknown fuel {fuel!r}; known fuels: {FUEL_TYPES}") from exc
        return self.shares[:, index]

    def renewable_share(self) -> np.ndarray:
        """Hourly solar + wind share (the quantity plotted in Figs. 2-3)."""
        return self.share_of("solar") + self.share_of("wind")

    def low_carbon_share(self) -> np.ndarray:
        """Hourly solar + wind + hydro + nuclear share."""
        return (
            self.share_of("solar")
            + self.share_of("wind")
            + self.share_of("hydro")
            + self.share_of("nuclear")
        )


class FuelMixModel:
    """Generates hourly fuel-mix series for a simulation horizon."""

    def __init__(self, config: FuelMixConfig | None = None, *, seed: SeedLike = None) -> None:
        self.config = config or FuelMixConfig()
        self._rng = make_rng(seed, "fuel-mix")

    # ------------------------------------------------------------------
    # Seasonal building blocks (pure functions of time, no noise)
    # ------------------------------------------------------------------
    def solar_capacity_factor(self, day_of_year: np.ndarray, hour_of_day: np.ndarray) -> np.ndarray:
        """Deterministic solar output factor in [0, 1] for given times.

        Combines a seasonal irradiance term (peaking near the summer
        solstice, day ~172) with a daylight bell centred on solar noon whose
        width follows day length.
        """
        doy = np.asarray(day_of_year, dtype=float)
        hod = np.asarray(hour_of_day, dtype=float)
        seasonal = 1.0 + self.config.solar_seasonal_amplitude * np.cos(
            2.0 * np.pi * (doy - 172.0) / 365.0
        )
        # Day length varies between ~9 h (winter) and ~15 h (summer) at 42 N.
        half_width = 4.5 + 1.5 * np.cos(2.0 * np.pi * (doy - 172.0) / 365.0)
        distance = np.abs(hod - 12.5)
        in_day = distance < half_width
        bell = np.where(in_day, np.cos(0.5 * np.pi * distance / half_width) ** 2, 0.0)
        return np.clip(seasonal, 0.0, None) * bell

    def wind_capacity_factor(self, day_of_year: np.ndarray) -> np.ndarray:
        """Deterministic wind output factor, peaking in late winter / early spring."""
        doy = np.asarray(day_of_year, dtype=float)
        # Peak around day 75 (mid March), trough in late summer.
        return 1.0 + self.config.wind_seasonal_amplitude * np.cos(
            2.0 * np.pi * (doy - 75.0) / 365.0
        )

    def demand_factor(self, day_of_year: np.ndarray, hour_of_day: np.ndarray) -> np.ndarray:
        """Relative total grid demand (1.0 = annual mean).

        Summer afternoons are the system peak; there is also a mild diurnal
        cycle with higher demand during waking hours.
        """
        doy = np.asarray(day_of_year, dtype=float)
        hod = np.asarray(hour_of_day, dtype=float)
        peak_doy = (self.config.demand_peak_month - 0.5) * 30.4
        seasonal = 1.0 + self.config.demand_seasonal_amplitude * np.cos(
            2.0 * np.pi * (doy - peak_doy) / 365.0
        )
        # Secondary winter (heating) peak centred on mid January, fading over ~6 weeks.
        winter_distance = np.minimum(np.abs(doy - 15.0), 365.0 - np.abs(doy - 15.0))
        winter = self.config.winter_demand_bump * np.exp(-((winter_distance / 45.0) ** 2))
        diurnal = 1.0 + 0.08 * np.cos(2.0 * np.pi * (hod - 15.0) / 24.0)
        return (seasonal + winter) * diurnal

    # ------------------------------------------------------------------
    # Series generation
    # ------------------------------------------------------------------
    def generate(self, calendar: SimulationCalendar, *, mean_demand_mw: float = 12_000.0) -> GenerationMix:
        """Generate an hourly :class:`GenerationMix` for the calendar horizon."""
        require_positive(mean_demand_mw, "mean_demand_mw")
        hours = calendar.hour_grid(1.0)
        day_of_year = np.asarray([calendar.day_of_year(h) for h in hours])
        hour_of_day = hours % 24.0

        n = hours.shape[0]
        cfg = self.config

        # Weather multipliers change daily, not hourly.
        n_days = int(np.ceil(n / 24.0))
        solar_weather_daily = self._rng.lognormal(mean=0.0, sigma=cfg.weather_noise_std, size=n_days)
        wind_weather_daily = self._rng.lognormal(mean=0.0, sigma=cfg.weather_noise_std, size=n_days)
        day_index = (hours // 24.0).astype(int)
        day_index = np.clip(day_index - day_index[0], 0, n_days - 1)
        solar_weather = solar_weather_daily[day_index]
        wind_weather = wind_weather_daily[day_index]

        demand = self.demand_factor(day_of_year, hour_of_day)

        solar_raw = (
            cfg.solar_peak_share
            * self.solar_capacity_factor(day_of_year, hour_of_day)
            * solar_weather
        )
        wind_raw = cfg.wind_mean_share * self.wind_capacity_factor(day_of_year) * wind_weather

        # Renewable *generation* is weather-driven and independent of demand;
        # its *share* is diluted when demand is high.
        solar_share = np.clip(solar_raw / demand, 0.0, 0.6)
        wind_share = np.clip(wind_raw / demand, 0.0, 0.6)
        hydro_share = np.full(n, cfg.hydro_share) / demand
        nuclear_share = np.full(n, cfg.nuclear_share) / demand

        low_carbon = solar_share + wind_share + hydro_share + nuclear_share
        low_carbon = np.clip(low_carbon, 0.0, 0.95)
        residual = 1.0 - low_carbon
        # Natural gas is the marginal fuel in ISO-NE: it takes ~85% of the residual.
        gas_share = residual * 0.85
        other_share = residual - gas_share

        shares = np.stack(
            [solar_share, wind_share, hydro_share, nuclear_share, gas_share, other_share],
            axis=1,
        )
        shares = shares / shares.sum(axis=1, keepdims=True)
        demand_mw = mean_demand_mw * demand
        return GenerationMix(hours=hours, shares=shares, demand_mw=demand_mw)

    def monthly_renewable_share(
        self, calendar: SimulationCalendar, mix: GenerationMix | None = None
    ) -> np.ndarray:
        """Demand-weighted monthly solar+wind share (% of supplied energy).

        This is the exact quantity on the right axis of Figs. 2 and 3:
        the percentage of total supplied energy derived from solar and wind
        in each month.
        """
        if mix is None:
            mix = self.generate(calendar)
        renewable = mix.renewable_share()
        month_index = calendar.month_indices_for_hours(mix.hours)
        shares = np.empty(calendar.n_months, dtype=float)
        for i in range(calendar.n_months):
            mask = month_index == i
            if not np.any(mask):
                raise DataError(f"no hours found for month index {i}")
            weights = mix.demand_mw[mask]
            shares[i] = float(np.average(renewable[mask], weights=weights))
        return 100.0 * shares
