"""Locational-marginal-price (LMP) model.

Figure 3 of the paper plots monthly average real-time LMPs for south
eastern/central Massachusetts against the monthly solar+wind share and notes
that prices are lowest ($20-25/MWh) exactly in the spring months when the
renewable share is highest, and highest (towards $45-50/MWh) in the
low-renewable, high-demand months.  The model here produces an hourly price
process with that structure:

``price = base * demand_factor * (1 - renewable_discount * renewable_share_normalised)
          * seasonal_gas_factor + noise``

so the *mechanism* of the anti-correlation (renewables displace the expensive
marginal fossil unit; demand raises the clearing price) is represented, and
the figure-level relationship is then *measured* by the analysis layer rather
than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import require_non_negative, require_positive
from ..errors import ConfigurationError, DataError
from ..rng import SeedLike, make_rng
from ..timeutils import SimulationCalendar
from .fuel_mix import GenerationMix

__all__ = ["LmpPriceConfig", "LmpPriceModel"]


@dataclass(frozen=True)
class LmpPriceConfig:
    """Parameters of the synthetic LMP process.

    Attributes
    ----------
    base_price_per_mwh:
        Price of the marginal unit at average demand with no renewable
        displacement, in $/MWh.
    demand_elasticity:
        Exponent applied to the relative demand factor; >1 makes peak hours
        disproportionately expensive (scarcity pricing).
    renewable_discount:
        Fractional price reduction at the highest observed renewable share.
    winter_gas_premium:
        Multiplicative premium applied in December-February, reflecting the
        New England winter gas-constraint phenomenon.
    noise_std_per_mwh:
        Standard deviation of additive hourly price noise.
    price_floor_per_mwh:
        Lower bound on prices (negative LMPs are out of scope).
    """

    base_price_per_mwh: float = 38.0
    demand_elasticity: float = 1.8
    renewable_discount: float = 0.55
    winter_gas_premium: float = 1.22
    noise_std_per_mwh: float = 4.0
    price_floor_per_mwh: float = 5.0

    def __post_init__(self) -> None:
        require_positive(self.base_price_per_mwh, "base_price_per_mwh")
        require_positive(self.demand_elasticity, "demand_elasticity")
        if not 0.0 <= self.renewable_discount < 1.0:
            raise ConfigurationError("renewable_discount must lie in [0, 1)")
        if self.winter_gas_premium < 1.0:
            raise ConfigurationError("winter_gas_premium must be >= 1.0")
        require_non_negative(self.noise_std_per_mwh, "noise_std_per_mwh")
        require_non_negative(self.price_floor_per_mwh, "price_floor_per_mwh")


class LmpPriceModel:
    """Generates hourly LMP series coupled to a :class:`GenerationMix`."""

    def __init__(self, config: LmpPriceConfig | None = None, *, seed: SeedLike = None) -> None:
        self.config = config or LmpPriceConfig()
        self._rng = make_rng(seed, "lmp-price")

    def price_series(self, calendar: SimulationCalendar, mix: GenerationMix) -> np.ndarray:
        """Hourly real-time LMP in $/MWh aligned with ``mix.hours``."""
        cfg = self.config
        hours = mix.hours
        if hours.shape[0] != calendar.total_hours:
            raise DataError(
                "generation mix does not cover the calendar horizon "
                f"({hours.shape[0]} hours vs {calendar.total_hours})"
            )
        demand_rel = mix.demand_mw / float(np.mean(mix.demand_mw))
        renewable = mix.renewable_share()
        max_renewable = float(np.max(renewable)) if renewable.size else 0.0
        renewable_norm = renewable / max_renewable if max_renewable > 0 else renewable

        month_of_hour = calendar.month_indices_for_hours(hours)
        month_numbers = calendar.month_of_year_array()[month_of_hour]
        winter = np.isin(month_numbers, (12, 1, 2))
        gas_factor = np.where(winter, cfg.winter_gas_premium, 1.0)

        price = (
            cfg.base_price_per_mwh
            * demand_rel**cfg.demand_elasticity
            * (1.0 - cfg.renewable_discount * renewable_norm)
            * gas_factor
        )
        if cfg.noise_std_per_mwh > 0:
            price = price + self._rng.normal(0.0, cfg.noise_std_per_mwh, size=price.shape)
        return np.maximum(price, cfg.price_floor_per_mwh)

    def monthly_average_price(
        self, calendar: SimulationCalendar, mix: GenerationMix, prices: np.ndarray | None = None
    ) -> np.ndarray:
        """Monthly mean real-time price (the series plotted in Fig. 3)."""
        if prices is None:
            prices = self.price_series(calendar, mix)
        prices = np.asarray(prices, dtype=float)
        if prices.shape != mix.hours.shape:
            raise DataError("prices must align with mix.hours")
        month_index = calendar.month_indices_for_hours(mix.hours)
        out = np.empty(calendar.n_months, dtype=float)
        for i in range(calendar.n_months):
            mask = month_index == i
            if not np.any(mask):
                raise DataError(f"no hours found for month index {i}")
            out[i] = float(np.mean(prices[mask]))
        return out

    def cost_of_hourly_load(
        self, prices_per_mwh: np.ndarray, load_energy_mwh: np.ndarray
    ) -> float:
        """Total dollar cost of an hourly energy profile at hourly prices."""
        prices = np.asarray(prices_per_mwh, dtype=float)
        load = np.asarray(load_energy_mwh, dtype=float)
        if prices.shape != load.shape:
            raise DataError("price and load series must have the same shape")
        if np.any(load < 0):
            raise DataError("load energy must be non-negative")
        return float(np.sum(prices * load))
