"""Electric-grid substrate: fuel mix, carbon intensity, prices, storage, purchasing.

The MIT SuperCloud draws power from the ISO New England grid; Figures 2 and 3
of the paper relate the facility's monthly power draw and the grid's monthly
locational marginal price (LMP) to the share of supplied energy generated
from solar and wind.  This package provides a synthetic-but-calibrated model
of that grid:

* :class:`~repro.grid.fuel_mix.FuelMixModel` — hourly generation shares by
  fuel (solar, wind, hydro, nuclear, natural gas, other), with the
  New-England seasonality that makes spring the greenest season.
* :class:`~repro.grid.carbon_intensity.CarbonIntensityModel` — converts a fuel
  mix into gCO2e/kWh using standard per-fuel emission factors.
* :class:`~repro.grid.pricing.LmpPriceModel` — an LMP price process whose
  monthly averages are anti-correlated with the renewable share (Fig. 3) and
  span the $20-50/MWh band the paper reports.
* :class:`~repro.grid.storage.BatteryStorage` — a simple round-trip-efficiency
  battery used by storage-backed purchasing strategies.
* :mod:`~repro.grid.purchasing` — energy-purchasing strategies (baseline,
  green-window, price-threshold, storage-backed) evaluated in the
  carbon-aware-shifting benchmark.
"""

from .fuel_mix import FUEL_TYPES, FuelMixConfig, FuelMixModel, GenerationMix
from .carbon_intensity import EMISSION_FACTORS_G_PER_KWH, CarbonIntensityModel
from .pricing import LmpPriceConfig, LmpPriceModel
from .storage import BatteryStorage, StorageConfig
from .purchasing import (
    PurchaseDecision,
    PurchasingOutcome,
    PurchasingStrategy,
    BaselinePurchasing,
    GreenWindowPurchasing,
    PriceThresholdPurchasing,
    StorageBackedPurchasing,
    evaluate_purchasing_strategy,
)
from .iso_ne import IsoNeLikeGrid

__all__ = [
    "FUEL_TYPES",
    "FuelMixConfig",
    "FuelMixModel",
    "GenerationMix",
    "EMISSION_FACTORS_G_PER_KWH",
    "CarbonIntensityModel",
    "LmpPriceConfig",
    "LmpPriceModel",
    "BatteryStorage",
    "StorageConfig",
    "PurchaseDecision",
    "PurchasingOutcome",
    "PurchasingStrategy",
    "BaselinePurchasing",
    "GreenWindowPurchasing",
    "PriceThresholdPurchasing",
    "StorageBackedPurchasing",
    "evaluate_purchasing_strategy",
    "IsoNeLikeGrid",
]
