"""repro.serve — the long-running simulation service.

Everything else in the toolkit is batch: build a world, run it, exit.  This
package keeps worlds *warm* instead.  ``greenhpc serve`` starts an HTTP
daemon (stdlib ``http.server`` — no new dependencies) holding any number of
live mid-run :class:`~repro.cluster.simulator.ClusterSimulator` sessions:

* **Sessions** (:mod:`.session`) — create a session over any registered
  scenario, submit jobs mid-run, advance simulated time in bounded requests.
  Concurrent sessions over the same scenario spec share one cached substrate
  build through a thread-safe :class:`~repro.experiments.ExperimentSession`.
* **Streaming** (:meth:`~.daemon.ServeDaemon._stream_telemetry`) — per-tick
  power/carbon/price telemetry as NDJSON, resumable via ``?since=``.
* **What-if routing** (:meth:`.session.SessionManager.route`) — run any
  router spec from the :mod:`repro.fleet.routing` grammar over the live
  sessions' queue/occupancy/grid snapshots without submitting anything.
* **Checkpoint/restore** (:mod:`.checkpoint`) — periodic and
  SIGTERM-drain checkpoints of each session's exact simulator state
  (:class:`~repro.cluster.simulator.SimulatorSnapshot`); a restarted daemon
  pointed at the same directory resumes every session **bit-identically**.
* **Client** (:mod:`.client`) — a pure-stdlib :class:`ServeClient`;
  ``examples/serve_client.py`` walks the whole lifecycle including a
  kill-and-restore.

Quick start::

    greenhpc serve --port 8714 --checkpoint-dir ./ckpt

    >>> from repro.serve import ServeClient           # doctest: +SKIP
    >>> client = ServeClient("http://127.0.0.1:8714") # doctest: +SKIP
    >>> s = client.create_session(scenario="default", preload_jobs=100)
    >>> client.advance(s["session_id"], until_h=48.0) # doctest: +SKIP
"""

from .checkpoint import CHECKPOINT_FORMAT_VERSION, CheckpointStore
from .client import ServeClient
from .daemon import ServeDaemon, run_serve
from .session import ServeSession, SessionManager, TelemetryObserver, UnknownSessionError

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "ServeClient",
    "ServeDaemon",
    "run_serve",
    "ServeSession",
    "SessionManager",
    "TelemetryObserver",
    "UnknownSessionError",
]
