"""The ``greenhpc serve`` HTTP daemon.

A :class:`~http.server.ThreadingHTTPServer` (stdlib only — the service adds
no dependencies) exposing warm simulation sessions over a small JSON API:

====== =================================== ======================================
Method Path                                Meaning
====== =================================== ======================================
GET    ``/health``                         liveness + session/world counts
GET    ``/version``                        package version
POST   ``/sessions``                       create a session (scenario, policy, …)
GET    ``/sessions``                       list live sessions
GET    ``/sessions/{id}``                  one session's status
DELETE ``/sessions/{id}``                  drop a session
POST   ``/sessions/{id}/jobs``             submit jobs mid-run
POST   ``/sessions/{id}/advance``          advance to ``until_h`` (deadline-bounded)
POST   ``/sessions/{id}/checkpoint``       checkpoint now
POST   ``/sessions/{id}/finalize``         finalize; returns the run summary
GET    ``/sessions/{id}/telemetry``        NDJSON tick stream (``since``, ``follow``)
POST   ``/route``                          what-if routing across live sessions
GET    ``/metrics``                        Prometheus text exposition (scrapeable)
====== =================================== ======================================

Error mapping: :class:`~repro.serve.session.UnknownSessionError` → 404, any
other :class:`~repro.errors.GreenHPCError` → 400, everything else → 500 with
the exception text in ``{"error": ...}``.

Robustness: every session is checkpointed periodically during ``advance``
and on SIGTERM/SIGINT (graceful drain), and a restarting daemon pointed at
the same ``--checkpoint-dir`` restores every session before accepting
requests — the kill-and-restart path the CI smoke exercises.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import GreenHPCError, ServeError
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import get_recorder
from .checkpoint import CheckpointStore
from .session import SessionManager, UnknownSessionError

__all__ = ["ServeDaemon", "run_serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Top-level routes with a fixed label on the request counter; anything else
#: (typos, scans) collapses to "other" so label cardinality stays bounded.
_KNOWN_ROUTES = ("health", "version", "sessions", "route", "metrics")


def _route_label(segments: list[str]) -> str:
    """A bounded-cardinality route label (session ids become ``{id}``)."""
    if not segments:
        return "/"
    if segments[0] not in _KNOWN_ROUTES:
        return "other"
    if segments[0] == "sessions" and len(segments) > 1:
        return "/".join(["sessions", "{id}", *segments[2:3]])
    return "/".join(segments[:2])


class _JsonHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the daemon's session manager."""

    protocol_version = "HTTP/1.1"
    daemon: "ServeDaemon"  # set on the handler class per server

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.daemon.verbose:
            super().log_message(format, *args)

    def setup(self) -> None:
        super().setup()
        # A stuck client must not pin a handler thread forever.
        self.connection.settimeout(self.daemon.request_timeout_s)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ServeError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    def _send_json(self, payload: Any, status: int = 200) -> None:
        encoded = json.dumps(payload).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)
        self._status = status

    def _send_text(self, text: str, status: int = 200, content_type: str = "text/plain; version=0.0.4; charset=utf-8") -> None:
        encoded = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)
        self._status = status

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        segments = [segment for segment in parts.path.split("/") if segment]
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        route = _route_label(segments)
        self._status = 200  # updated by the _send_* helpers
        with get_recorder().span("serve.request", method=method, route=route) as span:
            try:
                handled = self.daemon.handle(self, method, segments, query)
            except UnknownSessionError as exc:
                self._send_json({"error": str(exc)}, status=404)
            except GreenHPCError as exc:
                self._send_json({"error": str(exc)}, status=400)
            except (BrokenPipeError, ConnectionResetError):
                self._status = 0  # client went away mid-response; nothing to answer
            except Exception as exc:  # noqa: BLE001 - the daemon must not die on a request
                self._send_json({"error": f"{type(exc).__name__}: {exc}"}, status=500)
            else:
                if not handled:
                    self._send_json(
                        {"error": f"no route for {method} {parts.path}"}, status=404
                    )
            span.set("status", self._status)
        self.daemon.metrics.counter(
            "serve_requests_total",
            help="API requests handled, by method/route/status",
            method=method,
            route=route,
            status=str(self._status),
        ).inc()

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServeDaemon:
    """The long-running simulation service: session manager + HTTP front end.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (read :attr:`port`
        after construction — tests and the example use this).
    checkpoint_dir:
        Directory for periodic/drain checkpoints.  When it already holds
        checkpoints, every restorable session is brought back *before* the
        server accepts requests.  ``None`` disables checkpointing.
    checkpoint_every_h:
        Simulated hours between automatic checkpoints while an ``advance``
        request is in flight.
    request_timeout_s:
        Socket timeout per request, and the default wall-clock bound on one
        ``advance`` request (the response says how far it got).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every_h: float = 24.0,
        request_timeout_s: float = 30.0,
        verbose: bool = False,
    ) -> None:
        self.manager = SessionManager()
        #: Process-local service metrics, rendered by ``GET /metrics``.
        self.metrics = MetricsRegistry()
        self.store = None if checkpoint_dir is None else CheckpointStore(checkpoint_dir)
        self.checkpoint_every_h = float(checkpoint_every_h)
        self.request_timeout_s = float(request_timeout_s)
        self.verbose = bool(verbose)
        self.restored: list[str] = []
        if self.store is not None:
            self.restored = self.manager.restore_all(self.store)

        handler = type("BoundHandler", (_JsonHandler,), {"daemon": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._shutdown_started = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or a signal)."""
        self._server.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        """Graceful drain: checkpoint every live session, then stop the server.

        Idempotent and safe from signal context — the actual work runs on a
        fresh thread because ``server.shutdown()`` deadlocks when called from
        the ``serve_forever`` thread a signal handler interrupts.
        """
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()

        def _drain() -> None:
            if self.store is not None:
                try:
                    self.manager.checkpoint_all(self.store)
                except GreenHPCError:
                    pass  # a broken session must not block the shutdown
            self._server.shutdown()

        threading.Thread(target=_drain, name="serve-drain", daemon=True).start()

    def close(self) -> None:
        """Release the listening socket (after ``serve_forever`` returns)."""
        self._server.server_close()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to the graceful drain (main thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda _signum, _frame: self.shutdown())

    # ------------------------------------------------------------------
    # Routing table
    # ------------------------------------------------------------------
    def handle(
        self,
        request: _JsonHandler,
        method: str,
        segments: list[str],
        query: dict[str, str],
    ) -> bool:
        """Handle one request; returns whether a route matched."""
        if method == "GET" and segments == ["health"]:
            sessions = self.manager.sessions()
            request._send_json(
                {
                    "status": "ok",
                    "sessions": len(sessions),
                    "worlds": self.manager.n_worlds,
                    "restored": list(self.restored),
                    "checkpointing": self.store is not None,
                    "session_stats": {
                        s.session_id: {
                            "uptime_s": s.uptime_s,
                            "requests": s.request_count,
                        }
                        for s in sessions
                    },
                }
            )
            return True
        if method == "GET" and segments == ["metrics"]:
            self._publish_session_gauges()
            request._send_text(self.metrics.to_prometheus())
            return True
        if method == "GET" and segments == ["version"]:
            from .. import __version__

            request._send_json({"package": "repro", "version": __version__})
            return True
        if segments and segments[0] == "sessions":
            return self._handle_sessions(request, method, segments[1:], query)
        if method == "POST" and segments == ["route"]:
            body = request._read_json()
            result = self.manager.route(
                body.get("job", {}),
                body.get("router", "round-robin"),
                body.get("sessions"),
            )
            request._send_json(result)
            return True
        return False

    def _publish_session_gauges(self) -> None:
        """Refresh the per-session gauges a ``/metrics`` scrape reports."""
        sessions = self.manager.sessions()
        self.metrics.gauge("serve_sessions", help="Live simulation sessions").set(
            len(sessions)
        )
        self.metrics.gauge("serve_worlds", help="Cached substrate worlds").set(
            self.manager.n_worlds
        )
        for session in sessions:
            labels = {"session": session.session_id}
            self.metrics.gauge(
                "serve_session_uptime_seconds",
                help="Seconds since the session was created (monotonic)",
                **labels,
            ).set(session.uptime_s)
            self.metrics.gauge(
                "serve_session_requests",
                help="API requests addressed to the session",
                **labels,
            ).set(session.request_count)
            self.metrics.gauge(
                "serve_session_now_h",
                help="Simulated hours the session has advanced to",
                **labels,
            ).set(session.advanced_to_h)

    def _handle_sessions(
        self,
        request: _JsonHandler,
        method: str,
        rest: list[str],
        query: dict[str, str],
    ) -> bool:
        if not rest:
            if method == "POST":
                session = self.manager.create_session(request._read_json())
                request._send_json(session.status(), status=201)
                return True
            if method == "GET":
                request._send_json(
                    {"sessions": [s.status() for s in self.manager.sessions()]}
                )
                return True
            return False
        session = self.manager.get(rest[0])
        session.count_request()
        action = rest[1] if len(rest) > 1 else None
        if action is None:
            if method == "GET":
                request._send_json(session.status())
                return True
            if method == "DELETE":
                self.manager.remove(session.session_id)
                request._send_json({"deleted": session.session_id})
                return True
            return False
        if method == "POST" and action == "jobs":
            body = request._read_json()
            jobs = body.get("jobs")
            if not isinstance(jobs, list):
                raise ServeError("body must carry a 'jobs' list")
            accepted = session.submit_jobs(jobs)
            request._send_json({"accepted": accepted, **session.status()})
            return True
        if method == "POST" and action == "advance":
            body = request._read_json()
            if "until_h" not in body:
                raise ServeError("body must carry 'until_h'")
            status = session.advance_to(
                float(body["until_h"]),
                deadline_s=float(body.get("deadline_s", self.request_timeout_s)),
                checkpoint_every_h=self.checkpoint_every_h,
                store=self.store,
            )
            request._send_json(status)
            return True
        if method == "POST" and action == "checkpoint":
            if self.store is None:
                raise ServeError(
                    "checkpointing is disabled (start the daemon with --checkpoint-dir)"
                )
            path = session.checkpoint(self.store)
            request._send_json({"checkpoint": path, **session.status()})
            return True
        if method == "POST" and action == "finalize":
            request._send_json({"summary": session.finalize(), **session.status()})
            return True
        if method == "GET" and action == "telemetry":
            self._stream_telemetry(request, session, query)
            return True
        return False

    # ------------------------------------------------------------------
    # NDJSON telemetry
    # ------------------------------------------------------------------
    def _stream_telemetry(
        self, request: _JsonHandler, session: Any, query: dict[str, str]
    ) -> None:
        """Stream tick rows as NDJSON from ``since`` on; ``follow=1`` waits for more.

        Rows are copied out under the session lock and written outside it, so
        a slow reader never stalls the simulation.  The response closes the
        connection (no chunked framing needed on HTTP/1.1).
        """
        # Validate the query BEFORE any response bytes go out: a bad value
        # must surface as a clean 400 (via the dispatch error mapping), not
        # a 500 after headers are already on the wire.
        raw_since = query.get("since", "0")
        try:
            cursor = int(raw_since)
        except ValueError:
            raise ServeError(
                f"query parameter 'since' must be an integer, got {raw_since!r}"
            ) from None
        if cursor < 0:
            raise ServeError(f"query parameter 'since' must be >= 0, got {cursor}")
        follow = query.get("follow", "0") not in ("0", "false", "")
        try:
            max_wait_s = min(float(query.get("max_wait_s", 10.0)), self.request_timeout_s)
        except ValueError:
            raise ServeError(
                f"query parameter 'max_wait_s' must be a number, "
                f"got {query.get('max_wait_s')!r}"
            ) from None
        request.send_response(200)
        request.send_header("Content-Type", "application/x-ndjson")
        request.send_header("Cache-Control", "no-store")
        request.send_header("Connection", "close")
        request.end_headers()
        try:
            while True:
                rows = session.ticks_since(cursor)
                for row in rows:
                    request.wfile.write(json.dumps(row).encode() + b"\n")
                cursor += len(rows)
                if rows:
                    request.wfile.flush()
                if not follow or session.finalized:
                    break
                if not session.wait_for_ticks(cursor, max_wait_s):
                    break  # idle long enough; let the client re-poll with ?since=
        except (BrokenPipeError, ConnectionResetError):
            pass  # reader went away; the stream is resumable via ?since=
        request.close_connection = True


def run_serve(args: Any) -> int:
    """CLI entry point for ``greenhpc serve`` (blocks until SIGTERM/SIGINT)."""
    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_h=args.checkpoint_every_h,
        request_timeout_s=args.request_timeout_s,
        verbose=bool(getattr(args, "verbose", False)),
    )
    daemon.install_signal_handlers()
    # One parseable line so scripts (and the example) can discover the port.
    print(f"greenhpc-serve listening on http://{daemon.host}:{daemon.port}", flush=True)
    if daemon.restored:
        print(f"restored sessions: {', '.join(daemon.restored)}", flush=True)
    try:
        daemon.serve_forever()
    finally:
        daemon.close()
    return 0
