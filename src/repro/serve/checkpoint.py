"""On-disk checkpoint store for the simulation service.

One directory holds every session's checkpoints as JSON files named
``<session_id>.<sequence>.json``.  Writes are atomic (temp file +
``os.replace``) so a crash mid-write never corrupts the latest restorable
state, and only the newest ``keep`` checkpoints per session are retained.

The payload written here is the service-level envelope: session metadata
(scenario name, overrides, policy, horizon) next to the simulator's
versioned :class:`~repro.cluster.simulator.SimulatorSnapshot` payload and
the telemetry rows already streamed, so a restarted daemon resumes both the
simulation *and* the stream exactly where they stopped.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Optional

from ..errors import CheckpointError

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointStore"]

#: Version of the service checkpoint envelope (the simulator snapshot inside
#: carries its own version).
CHECKPOINT_FORMAT_VERSION = 1

_FILENAME = re.compile(r"^(?P<session>[A-Za-z0-9_-]+)\.(?P<seq>\d{8})\.json$")


class CheckpointStore:
    """Atomic, pruned, per-session checkpoint files under one root directory.

    Parameters
    ----------
    root:
        Directory to hold the checkpoint files (created if missing).
    keep:
        Newest checkpoints retained per session; older ones are pruned after
        every successful save.
    """

    def __init__(self, root: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be at least 1, got {keep!r}")
        self.root = Path(root)
        self.keep = int(keep)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def checkpoints(self, session_id: str) -> list[Path]:
        """This session's checkpoint files, oldest first."""
        entries = []
        for path in self.root.iterdir():
            match = _FILENAME.match(path.name)
            if match and match.group("session") == session_id:
                entries.append((int(match.group("seq")), path))
        return [path for _, path in sorted(entries)]

    def session_ids(self) -> list[str]:
        """Every session id with at least one checkpoint on disk (sorted)."""
        ids = set()
        for path in self.root.iterdir():
            match = _FILENAME.match(path.name)
            if match:
                ids.add(match.group("session"))
        return sorted(ids)

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, session_id: str, payload: dict) -> Path:
        """Atomically write the next checkpoint for ``session_id``; prune old ones."""
        existing = self.checkpoints(session_id)
        if existing:
            last = int(_FILENAME.match(existing[-1].name).group("seq"))
        else:
            last = -1
        target = self.root / f"{session_id}.{last + 1:08d}.json"
        try:
            encoded = json.dumps(payload, allow_nan=False, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint payload for session {session_id!r} is not "
                f"JSON-serializable: {exc}"
            ) from None
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise CheckpointError(
                f"could not write checkpoint {target.name!r}: {exc}"
            ) from None
        for stale in self.checkpoints(session_id)[: -self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass  # pruning is best-effort; the new checkpoint is durable
        return target

    def load(self, path: Path) -> dict:
        """Read and validate one checkpoint file."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"could not read checkpoint {path!s}: {exc}") from None
        version = payload.get("format") if isinstance(payload, dict) else None
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!s} has format version {version!r}; "
                f"this build reads version {CHECKPOINT_FORMAT_VERSION}"
            )
        return payload

    def latest(self, session_id: str) -> Optional[dict]:
        """The newest restorable checkpoint payload for ``session_id``.

        Corrupt or partially written files are skipped (newest first), so a
        crash during a save falls back to the previous durable checkpoint;
        returns ``None`` when nothing restorable exists.
        """
        for path in reversed(self.checkpoints(session_id)):
            try:
                return self.load(path)
            except CheckpointError:
                continue
        return None
