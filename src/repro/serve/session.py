"""Live simulation sessions and the daemon's session manager.

A :class:`ServeSession` is one warm world: a mid-run
:class:`~repro.cluster.simulator.ClusterSimulator` plus the telemetry rows
it has streamed, guarded by a per-session lock so HTTP handler threads can
submit jobs, advance time, stream ticks and checkpoint concurrently without
corrupting the event loop.

The :class:`SessionManager` keys shared substrate caches by scenario spec:
two sessions over the same spec share one (thread-safe)
:class:`~repro.experiments.ExperimentSession`, so their weather/trace/grid
substrates are built once.  It also answers fleet-style *what-if* routing
queries — "which of these live sessions should take this job?" — by building
:class:`~repro.fleet.routing.SiteSnapshot`\\ s from each session's live
queue/occupancy/grid state and running any router spec over them.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from typing import Any, Optional, Sequence

from ..cluster.cooling import CoolingModel
from ..cluster.observers import SimulatorObserver
from ..cluster.resources import Cluster
from ..cluster.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulatorSnapshot,
)
from ..core.levers import make_scheduler
from ..errors import CheckpointError, ServeError
from ..experiments.session import ExperimentSession
from ..experiments.spec import ScenarioSpec, get_scenario, get_site
from ..fleet.routing import SiteSnapshot, make_router
from ..scheduler.job import Job
from .checkpoint import CHECKPOINT_FORMAT_VERSION, CheckpointStore

__all__ = [
    "UnknownSessionError",
    "TelemetryObserver",
    "ServeSession",
    "SessionManager",
]

#: Job fields a client may set when submitting over the API; everything else
#: (runtime state) is owned by the simulator.
_JOB_FIELDS = (
    "job_id",
    "user_id",
    "n_gpus",
    "duration_h",
    "submit_time_h",
    "utilization",
    "priority",
    "deadline_h",
    "deferrable",
    "max_defer_h",
    "queue_name",
    "power_cap_fraction",
    "tags",
)
_REQUIRED_JOB_FIELDS = ("job_id", "user_id", "n_gpus", "duration_h", "submit_time_h")


class UnknownSessionError(ServeError):
    """Raised when a request addresses a session id the daemon does not hold."""


def _spec_hash(spec: ScenarioSpec) -> str:
    """A short stable digest of a scenario spec (the substrate-sharing key)."""
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


def resolve_spec(scenario: str, overrides: dict[str, Any]) -> ScenarioSpec:
    """A registered scenario name plus simple overrides -> a concrete spec.

    Only the scalar overrides a checkpoint can faithfully replay are
    accepted (``seed``, ``start_year``, ``n_months``, and a registered
    ``site`` name) — the same surface the CLI's shared flags expose.
    """
    spec = get_scenario(scenario)
    changes: dict[str, Any] = {}
    for field_name in ("seed", "start_year", "n_months"):
        if overrides.get(field_name) is not None:
            changes[field_name] = int(overrides[field_name])
    if overrides.get("site") is not None:
        changes["site"] = get_site(overrides["site"])
    unknown = set(overrides) - {"seed", "start_year", "n_months", "site"}
    if unknown:
        raise ServeError(
            f"unsupported scenario overrides {sorted(unknown)}; "
            f"supported: seed, start_year, n_months, site"
        )
    return spec.replace(**changes) if changes else spec


class TelemetryObserver(SimulatorObserver):
    """Feeds every recording tick into the owning session's stream buffer.

    Stateless by design (the rows live on the session and ride along in the
    service checkpoint), so the base class's null snapshot protocol applies.
    """

    def __init__(self, session: "ServeSession") -> None:
        self._session = session

    def on_tick(self, simulator: ClusterSimulator, now_h: float, it_power_w: float) -> None:
        self._session._record_tick(simulator, now_h, it_power_w)


class ServeSession:
    """One live, lockable simulation session held by the daemon.

    Build through :meth:`create` (fresh) or :meth:`from_checkpoint`
    (restored); both construct the simulator from the scenario's cached
    substrates, so restarts share builds with surviving sessions.
    """

    def __init__(
        self,
        *,
        session_id: str,
        scenario_name: str,
        overrides: dict[str, Any],
        spec: ScenarioSpec,
        policy: str,
        power_cap_fraction: Optional[float],
        simulator: ClusterSimulator,
        preload_jobs: int,
    ) -> None:
        self.session_id = session_id
        self.scenario_name = scenario_name
        self.overrides = dict(overrides)
        self.spec = spec
        self.policy = policy
        self.power_cap_fraction = power_cap_fraction
        self.simulator = simulator
        self.preload_jobs = int(preload_jobs)
        self.created_at = time.time()
        # Uptime math uses the monotonic clock: wall-clock (time.time) can
        # jump under NTP adjustment, which would skew or negate uptimes.
        self.created_monotonic = time.monotonic()
        self.request_count = 0
        self.result = None  # SimulationResult after finalize()
        self.result_summary: Optional[dict[str, Any]] = None
        self._ticks: list[dict[str, Any]] = []
        self.lock = threading.RLock()
        #: Signals new telemetry rows / finalization to streaming readers.
        self.ticks_available = threading.Condition(self.lock)
        self.last_checkpoint_h: Optional[float] = None
        self.checkpoint_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _build_simulator(
        session: "ServeSession",
        world: ExperimentSession,
    ) -> ClusterSimulator:
        """The one construction path used by both create and restore.

        Restoring must rebuild the simulator *exactly* as creation did —
        same substrates, config and scheduler — so the adopted snapshot
        continues bit-identically.
        """
        scenario = world.scenario(session.spec)
        return ClusterSimulator(
            Cluster(session.spec.facility, gpu_model=session.spec.workload.gpu_model),
            make_scheduler(session.policy, session.power_cap_fraction),
            session._config,
            weather_hourly_c=scenario.weather_hourly_c,
            cooling=CoolingModel(),
            grid=scenario.grid,
            observers=[TelemetryObserver(session)],
        )

    @classmethod
    def create(
        cls,
        *,
        session_id: str,
        scenario_name: str,
        overrides: dict[str, Any],
        policy: str,
        horizon_h: float,
        tick_h: float,
        facility_power_budget_w: Optional[float],
        power_cap_fraction: Optional[float],
        preload_jobs: int,
        world: ExperimentSession,
    ) -> "ServeSession":
        """Build a fresh session, ``begin()`` its run, optionally preload a trace."""
        spec = resolve_spec(scenario_name, overrides)
        session = cls.__new__(cls)
        config = SimulationConfig(
            horizon_h=float(horizon_h),
            tick_h=float(tick_h),
            facility_power_budget_w=facility_power_budget_w,
        )
        session.__init__(
            session_id=session_id,
            scenario_name=scenario_name,
            overrides=overrides,
            spec=spec,
            policy=policy,
            power_cap_fraction=power_cap_fraction,
            simulator=None,  # type: ignore[arg-type]  # set just below
            preload_jobs=preload_jobs,
        )
        session._config = config
        session.simulator = cls._build_simulator(session, world)
        if preload_jobs:
            trace = world.job_trace(
                n_jobs=preload_jobs, horizon_h=float(horizon_h), spec=spec
            )
            session.simulator.begin([job.clone_pending() for job in trace])
        else:
            session.simulator.begin()
        return session

    @classmethod
    def from_checkpoint(cls, payload: dict, world: ExperimentSession) -> "ServeSession":
        """Rebuild a session (simulator + telemetry backlog) from a checkpoint."""
        meta = payload["meta"]
        snapshot = SimulatorSnapshot.from_jsonable(payload["snapshot"])
        spec = resolve_spec(meta["scenario"], meta["overrides"])
        session = cls.__new__(cls)
        config = SimulationConfig(
            horizon_h=float(meta["horizon_h"]),
            tick_h=float(meta["tick_h"]),
            facility_power_budget_w=meta["facility_power_budget_w"],
        )
        session.__init__(
            session_id=meta["session_id"],
            scenario_name=meta["scenario"],
            overrides=dict(meta["overrides"]),
            spec=spec,
            policy=meta["policy"],
            power_cap_fraction=meta["power_cap_fraction"],
            simulator=None,  # type: ignore[arg-type]
            preload_jobs=meta["preload_jobs"],
        )
        session._config = config
        session.simulator = cls._build_simulator(session, world)
        session.simulator.restore(snapshot)
        session._ticks = list(payload["ticks"])
        session.checkpoint_count = int(meta.get("checkpoint_count", 0))
        session.last_checkpoint_h = snapshot.now_h
        return session

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec_hash(self) -> str:
        """Digest of the session's scenario spec (the substrate-sharing key)."""
        return _spec_hash(self.spec)

    @property
    def finalized(self) -> bool:
        """Whether the session's run has been finalized."""
        return self.result_summary is not None

    @property
    def uptime_s(self) -> float:
        """Seconds since this session object was created (monotonic clock).

        Restored sessions count from the restore, not the original creation —
        the monotonic clock does not survive a process restart.
        """
        return time.monotonic() - self.created_monotonic

    def count_request(self) -> None:
        """Tally one API request addressed to this session."""
        with self.lock:
            self.request_count += 1

    def status(self) -> dict[str, Any]:
        """The session's live state as one JSON-able dict."""
        with self.lock:
            simulator = self.simulator
            return {
                "session_id": self.session_id,
                "scenario": self.scenario_name,
                "overrides": dict(self.overrides),
                "spec_hash": self.spec_hash,
                "policy": self.policy,
                "horizon_h": self._config.horizon_h,
                "tick_h": self._config.tick_h,
                "now_h": self.advanced_to_h,
                "n_pending": simulator.n_pending,
                "n_running": simulator.n_running,
                "it_power_w": simulator.current_it_power_w,
                "ticks_recorded": len(self._ticks),
                "finalized": self.finalized,
                "checkpoints": self.checkpoint_count,
                "last_checkpoint_h": self.last_checkpoint_h,
                "uptime_s": self.uptime_s,
                "requests": self.request_count,
            }

    @property
    def advanced_to_h(self) -> float:
        """The time bound the session has advanced to (its public cursor)."""
        return self.simulator._advanced_to

    # ------------------------------------------------------------------
    # Request handlers (each takes the session lock)
    # ------------------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[dict[str, Any]]) -> int:
        """Validate and feed client-supplied job dicts into the running simulation."""
        built = [self._build_job(data) for data in jobs]
        with self.lock:
            if self.finalized:
                raise ServeError(f"session {self.session_id!r} is finalized")
            for job in built:
                self.simulator.submit(job)
        return len(built)

    @staticmethod
    def _build_job(data: dict[str, Any]) -> Job:
        if not isinstance(data, dict):
            raise ServeError(f"each job must be a JSON object, got {type(data).__name__}")
        missing = [name for name in _REQUIRED_JOB_FIELDS if name not in data]
        if missing:
            raise ServeError(f"job is missing required fields {missing}")
        unknown = set(data) - set(_JOB_FIELDS)
        if unknown:
            raise ServeError(
                f"unknown job fields {sorted(unknown)}; accepted: {list(_JOB_FIELDS)}"
            )
        return Job(**{name: data[name] for name in _JOB_FIELDS if name in data})

    def advance_to(
        self,
        until_h: float,
        *,
        deadline_s: Optional[float] = None,
        checkpoint_every_h: Optional[float] = None,
        store: Optional[CheckpointStore] = None,
    ) -> dict[str, Any]:
        """Advance the simulation to ``until_h``, bounded by a wall-clock deadline.

        The loop advances in tick-sized chunks so a long request can stop at
        a consistent hour boundary when ``deadline_s`` expires (the response
        carries ``timed_out`` and how far it got — the client simply asks
        again), and so periodic checkpoints land every ``checkpoint_every_h``
        simulated hours while a month-long advance is in flight.
        """
        deadline = None if deadline_s is None else time.monotonic() + float(deadline_s)
        timed_out = False
        with self.lock:
            if self.finalized:
                raise ServeError(f"session {self.session_id!r} is finalized")
            target = min(float(until_h), self._config.horizon_h)
            step = max(self._config.tick_h, 1e-6)
            reached = self.advanced_to_h
            while reached < target - 1e-12:
                reached = min(reached + step, target)
                self.simulator.advance(reached)
                if (
                    store is not None
                    and checkpoint_every_h
                    and reached - (self.last_checkpoint_h or 0.0) >= checkpoint_every_h
                ):
                    self.checkpoint(store)
                if deadline is not None and time.monotonic() > deadline and reached < target:
                    timed_out = True
                    break
            self.ticks_available.notify_all()
        status = self.status()
        status["timed_out"] = timed_out
        return status

    def finalize(self) -> dict[str, Any]:
        """Finalize the run; the summary is kept for repeat reads."""
        with self.lock:
            if self.result_summary is None:
                self.result = self.simulator.finalize()
                self.result_summary = self.result.summary()
                self.ticks_available.notify_all()
            return dict(self.result_summary)

    # ------------------------------------------------------------------
    # Telemetry stream
    # ------------------------------------------------------------------
    def _record_tick(self, simulator: ClusterSimulator, now_h: float, it_power_w: float) -> None:
        """Observer callback: append one stream row (under the session lock)."""
        context = simulator.scheduling_context(now_h)
        pue = context.current_pue
        self._ticks.append(
            {
                "tick": len(self._ticks),
                "session_id": self.session_id,
                "now_h": now_h,
                "it_power_w": it_power_w,
                "pue": pue,
                "facility_power_w": it_power_w * pue,
                "carbon_intensity_g_per_kwh": context.carbon_intensity_g_per_kwh,
                "price_per_mwh": context.price_per_mwh,
                "renewable_share": context.renewable_share,
                "n_pending": simulator.n_pending,
                "n_running": simulator.n_running,
            }
        )
        self.ticks_available.notify_all()

    def ticks_since(self, cursor: int) -> list[dict[str, Any]]:
        """Stream rows from ``cursor`` on (a copy, safe to write outside the lock)."""
        with self.lock:
            return list(self._ticks[cursor:])

    def wait_for_ticks(self, cursor: int, timeout_s: float) -> bool:
        """Block until rows beyond ``cursor`` exist, the run finalizes, or timeout.

        Returns whether new rows are available.
        """
        deadline = time.monotonic() + timeout_s
        with self.lock:
            while len(self._ticks) <= cursor and not self.finalized:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self.ticks_available.wait(remaining)
            return len(self._ticks) > cursor

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, store: CheckpointStore) -> str:
        """Write this session's full state to the store; returns the file path."""
        with self.lock:
            if self.finalized:
                raise ServeError(
                    f"session {self.session_id!r} is finalized; nothing left to checkpoint"
                )
            snapshot = self.simulator.snapshot()
            self.checkpoint_count += 1
            payload = {
                "format": CHECKPOINT_FORMAT_VERSION,
                "meta": {
                    "session_id": self.session_id,
                    "scenario": self.scenario_name,
                    "overrides": dict(self.overrides),
                    "policy": self.policy,
                    "horizon_h": self._config.horizon_h,
                    "tick_h": self._config.tick_h,
                    "facility_power_budget_w": self._config.facility_power_budget_w,
                    "power_cap_fraction": self.power_cap_fraction,
                    "preload_jobs": self.preload_jobs,
                    "checkpoint_count": self.checkpoint_count,
                },
                "snapshot": snapshot.to_jsonable(),
                "ticks": list(self._ticks),
            }
            path = store.save(self.session_id, payload)
            self.last_checkpoint_h = snapshot.now_h
            return str(path)

    # ------------------------------------------------------------------
    # Routing snapshot (the what-if surface)
    # ------------------------------------------------------------------
    def site_snapshot(self, index: int) -> SiteSnapshot:
        """This session's live state as a fleet-routing :class:`SiteSnapshot`."""
        with self.lock:
            simulator = self.simulator
            context = simulator.scheduling_context(self.advanced_to_h)
            return SiteSnapshot(
                index=index,
                name=self.session_id,
                queue_length=simulator.n_pending,
                running_jobs=simulator.n_running,
                free_gpus=simulator.cluster.n_free_gpus,
                total_gpus=simulator.cluster.total_gpus,
                it_power_w=simulator.current_it_power_w,
                carbon_intensity_g_per_kwh=context.carbon_intensity_g_per_kwh,
                price_per_mwh=context.price_per_mwh,
                renewable_share=context.renewable_share,
            )


class SessionManager:
    """The daemon's session table plus the spec-keyed shared substrate caches."""

    def __init__(self) -> None:
        self._sessions: dict[str, ServeSession] = {}
        self._worlds: dict[ScenarioSpec, ExperimentSession] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Substrate sharing
    # ------------------------------------------------------------------
    def world_for(self, spec: ScenarioSpec) -> ExperimentSession:
        """The shared (thread-safe) substrate cache for ``spec``.

        Sessions over identical specs get the identical
        :class:`ExperimentSession`, so concurrent creations build weather /
        trace / grid once — the session's own build lock serializes the
        racing builders.
        """
        with self._lock:
            world = self._worlds.get(spec)
            if world is None:
                world = ExperimentSession(spec)
                self._worlds[spec] = world
            return world

    @property
    def n_worlds(self) -> int:
        """Distinct substrate caches currently shared across sessions."""
        with self._lock:
            return len(self._worlds)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def create_session(self, params: dict[str, Any]) -> ServeSession:
        """Create (and register) a session from a client's request body."""
        if not isinstance(params, dict):
            raise ServeError("session creation body must be a JSON object")
        session_id = params.get("session_id") or f"s-{uuid.uuid4().hex[:12]}"
        if not isinstance(session_id, str) or not session_id.replace("-", "").replace(
            "_", ""
        ).isalnum():
            raise ServeError(
                f"session_id must be alphanumeric plus '-'/'_', got {session_id!r}"
            )
        scenario_name = params.get("scenario", "default")
        overrides = {
            key: params[key]
            for key in ("seed", "start_year", "n_months", "site")
            if params.get(key) is not None
        }
        spec = resolve_spec(scenario_name, overrides)
        world = self.world_for(spec)
        session = ServeSession.create(
            session_id=session_id,
            scenario_name=scenario_name,
            overrides=overrides,
            policy=params.get("policy", "backfill"),
            horizon_h=float(params.get("horizon_h", 7 * 24.0)),
            tick_h=float(params.get("tick_h", 1.0)),
            facility_power_budget_w=params.get("facility_power_budget_w"),
            power_cap_fraction=params.get("power_cap_fraction"),
            preload_jobs=int(params.get("preload_jobs", 0)),
            world=world,
        )
        with self._lock:
            if session_id in self._sessions:
                raise ServeError(f"session {session_id!r} already exists")
            self._sessions[session_id] = session
        return session

    def restore_session(self, payload: dict) -> ServeSession:
        """Register a session rebuilt from a checkpoint payload."""
        meta = payload.get("meta", {})
        spec = resolve_spec(meta["scenario"], meta.get("overrides", {}))
        session = ServeSession.from_checkpoint(payload, self.world_for(spec))
        with self._lock:
            if session.session_id in self._sessions:
                raise ServeError(f"session {session.session_id!r} already exists")
            self._sessions[session.session_id] = session
        return session

    def restore_all(self, store: CheckpointStore) -> list[str]:
        """Restore every session with a usable checkpoint; returns restored ids."""
        restored = []
        for session_id in store.session_ids():
            with self._lock:
                if session_id in self._sessions:
                    continue
            payload = store.latest(session_id)
            if payload is None:
                continue
            try:
                self.restore_session(payload)
            except CheckpointError:
                continue  # unreadable under this build; leave the files be
            restored.append(session_id)
        return restored

    def get(self, session_id: str) -> ServeSession:
        """The live session for ``session_id`` (404-mapped error when absent)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"no session {session_id!r}")
        return session

    def remove(self, session_id: str) -> None:
        """Drop a session from the table (checkpoint files are left on disk)."""
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise UnknownSessionError(f"no session {session_id!r}")

    def sessions(self) -> list[ServeSession]:
        """The live sessions, in creation order."""
        with self._lock:
            return list(self._sessions.values())

    def checkpoint_all(self, store: CheckpointStore) -> list[str]:
        """Checkpoint every non-finalized session (the SIGTERM drain path)."""
        paths = []
        for session in self.sessions():
            if not session.finalized:
                paths.append(session.checkpoint(store))
        return paths

    # ------------------------------------------------------------------
    # What-if routing across live sessions
    # ------------------------------------------------------------------
    def route(
        self,
        job_data: dict[str, Any],
        router_spec: str,
        session_ids: Optional[Sequence[str]] = None,
    ) -> dict[str, Any]:
        """Which live session would a fleet router send this job to?

        Builds one :class:`SiteSnapshot` per candidate session from its live
        queue / occupancy / grid signals and runs ``router_spec`` (any spec
        in the :mod:`repro.fleet.routing` grammar) over them.  Purely
        advisory: nothing is submitted.
        """
        job = ServeSession._build_job(job_data)
        if session_ids is None:
            candidates = [s for s in self.sessions() if not s.finalized]
        else:
            candidates = [self.get(session_id) for session_id in session_ids]
        if not candidates:
            raise ServeError("no live sessions to route across")
        snapshots = [session.site_snapshot(i) for i, session in enumerate(candidates)]
        router = make_router(router_spec)
        router.begin_fleet(len(snapshots))
        now_h = max(snapshot_session.advanced_to_h for snapshot_session in candidates)
        index = router.select(job, snapshots, now_h)
        if not 0 <= index < len(candidates):
            raise ServeError(
                f"router {router.name!r} returned site index {index!r} "
                f"for {len(candidates)} candidate sessions"
            )
        return {
            "session_id": candidates[index].session_id,
            "router": router.name,
            "candidates": [
                {
                    "session_id": session.session_id,
                    "queue_length": snapshot.queue_length,
                    "free_gpus": snapshot.free_gpus,
                    "carbon_intensity_g_per_kwh": snapshot.carbon_intensity_g_per_kwh,
                    "price_per_mwh": snapshot.price_per_mwh,
                    "renewable_share": snapshot.renewable_share,
                }
                for session, snapshot in zip(candidates, snapshots)
            ],
        }
