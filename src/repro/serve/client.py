"""A pure-stdlib client for the ``greenhpc serve`` daemon.

Thin ``urllib`` wrappers over the JSON API — one method per endpoint plus a
generator over the NDJSON telemetry stream.  Error responses
(``{"error": ...}``) surface as :class:`~repro.errors.ServeError`, so client
code handles daemon-side validation failures the same way it handles local
ones.

>>> client = ServeClient("http://127.0.0.1:8714")   # doctest: +SKIP
>>> s = client.create_session(scenario="default", policy="backfill",
...                           preload_jobs=50)      # doctest: +SKIP
>>> client.advance(s["session_id"], until_h=24.0)   # doctest: +SKIP
>>> for row in client.stream_telemetry(s["session_id"]):  # doctest: +SKIP
...     print(row["now_h"], row["facility_power_w"])
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Optional, Sequence
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import urlencode

from ..errors import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """Talks to one ``greenhpc serve`` daemon at ``base_url``."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> Any:
        data = None if body is None else json.dumps(body).encode()
        req = urlrequest.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urlrequest.urlopen(req, timeout=timeout_s or self.timeout_s) as resp:
                return json.loads(resp.read())
        except urlerror.HTTPError as exc:
            raise ServeError(self._error_message(exc)) from None
        except urlerror.URLError as exc:
            raise ServeError(f"cannot reach daemon at {self.base_url}: {exc.reason}") from None

    @staticmethod
    def _error_message(exc: urlerror.HTTPError) -> str:
        try:
            payload = json.loads(exc.read())
            return f"{exc.code}: {payload['error']}"
        except (ValueError, KeyError, OSError):
            return f"{exc.code}: {exc.reason}"

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Daemon liveness, session/world counts, restored-session ids."""
        return self._request("GET", "/health")

    def version(self) -> dict:
        """The daemon's package version."""
        return self._request("GET", "/version")

    def create_session(self, **params: Any) -> dict:
        """Create a session; keyword args mirror the POST /sessions body."""
        return self._request("POST", "/sessions", params)

    def list_sessions(self) -> list[dict]:
        """Status dicts of every live session."""
        return self._request("GET", "/sessions")["sessions"]

    def session_status(self, session_id: str) -> dict:
        """One session's live status."""
        return self._request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        """Drop a session from the daemon (checkpoints stay on disk)."""
        return self._request("DELETE", f"/sessions/{session_id}")

    def submit_jobs(self, session_id: str, jobs: Sequence[dict]) -> dict:
        """Submit job dicts into a running session."""
        return self._request("POST", f"/sessions/{session_id}/jobs", {"jobs": list(jobs)})

    def advance(
        self, session_id: str, until_h: float, *, deadline_s: Optional[float] = None
    ) -> dict:
        """Advance the session to ``until_h``; the reply carries ``timed_out``."""
        body: dict[str, Any] = {"until_h": until_h}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        timeout = None if deadline_s is None else deadline_s + self.timeout_s
        return self._request(
            "POST", f"/sessions/{session_id}/advance", body, timeout_s=timeout
        )

    def checkpoint(self, session_id: str) -> dict:
        """Checkpoint the session now; returns the file path written."""
        return self._request("POST", f"/sessions/{session_id}/checkpoint", {})

    def finalize(self, session_id: str) -> dict:
        """Finalize the session's run; returns the result summary."""
        return self._request("POST", f"/sessions/{session_id}/finalize", {})

    def route(
        self,
        job: dict,
        *,
        router: str = "round-robin",
        sessions: Optional[Sequence[str]] = None,
    ) -> dict:
        """What-if: which live session would ``router`` send this job to?"""
        body: dict[str, Any] = {"job": job, "router": router}
        if sessions is not None:
            body["sessions"] = list(sessions)
        return self._request("POST", "/route", body)

    def stream_telemetry(
        self,
        session_id: str,
        *,
        since: int = 0,
        follow: bool = False,
        max_wait_s: float = 10.0,
    ) -> Iterator[dict]:
        """Yield tick rows from the NDJSON stream, starting at row ``since``.

        With ``follow=True`` the daemon holds the connection open waiting for
        new rows (up to ``max_wait_s`` of idleness); resume an interrupted
        stream by passing the last row count as ``since``.
        """
        query = urlencode(
            {"since": since, "follow": int(follow), "max_wait_s": max_wait_s}
        )
        url = f"{self.base_url}/sessions/{session_id}/telemetry?{query}"
        timeout = self.timeout_s + (max_wait_s if follow else 0.0)
        try:
            with urlrequest.urlopen(url, timeout=timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urlerror.HTTPError as exc:
            raise ServeError(self._error_message(exc)) from None
        except urlerror.URLError as exc:
            raise ServeError(f"cannot reach daemon at {self.base_url}: {exc.reason}") from None
