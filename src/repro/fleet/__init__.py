"""Multi-site fleet co-simulation with geo-aware job routing.

Real green-computing operators do not run one datacenter: they route work
*across* sites to follow sun, wind and cheap/clean power.  This package adds
that dimension to the toolkit:

* :mod:`~repro.fleet.spec` — the declarative :class:`FleetSpec` (N member
  sites, each an ordinary scenario — the ``scenario@site`` shorthand
  relocates a registered scenario to a registered site, adopting the target
  region's grid profile) plus the named fleet registry.
* :mod:`~repro.fleet.routing` — pluggable routing policies in an open
  registry sharing the ``+``/parenthesis spec grammar of
  :mod:`repro.scheduler.compose`: scorers (``round-robin``,
  ``least-queued``, ``carbon-min``, ``price-min``, ``renewable-max``)
  composed with filters (``queue-cap(max=50)``, ``carbon-cap``,
  ``price-cap``, ``renewable-floor``, ``free-gpus``).
* :mod:`~repro.fleet.simulator` — the :class:`FleetSimulator`, stepping one
  :class:`~repro.cluster.ClusterSimulator` per site in hourly lockstep and
  dispatching each arriving job of the shared workload through the router.
* :mod:`~repro.fleet.result` — the :class:`FleetResult`: per-site results,
  the job→site assignment table, and fleet totals that equal the sum of the
  member sites bit-for-bit.

Quick start::

    >>> from repro.fleet import FleetSimulator
    >>> result = FleetSimulator(
    ...     "tri-site-small", router="carbon-min+queue-cap(max=50)"
    ... ).run(n_jobs=120)                                   # doctest: +SKIP
    >>> result.dispatch_counts()                            # doctest: +SKIP

A one-site fleet reproduces the single-site
:class:`~repro.experiments.ExperimentSession` results bit-identically, and
the ``fleet`` experiment makes ``router`` a sweepable campaign lever::

    greenhpc fleet --router "round-robin,carbon-min" --json
    greenhpc sweep --experiments fleet --grid "router=round-robin,carbon-min,renewable-max"
"""

from .result import FleetResult, JobAssignment
from .routing import (
    CompositeRouter,
    Router,
    RouterDefinition,
    SiteFilter,
    SiteScorer,
    SiteSnapshot,
    get_router_definition,
    list_router_definitions,
    make_router,
    parse_router,
    register_router,
    router_names,
)
from .simulator import FleetSimulator
from .spec import (
    REGION_GRIDS,
    FleetSpec,
    fleet_names,
    get_fleet,
    list_fleets,
    register_fleet,
    resolve_member,
)

__all__ = [
    "FleetSpec",
    "REGION_GRIDS",
    "resolve_member",
    "register_fleet",
    "get_fleet",
    "fleet_names",
    "list_fleets",
    "Router",
    "SiteScorer",
    "SiteFilter",
    "SiteSnapshot",
    "CompositeRouter",
    "RouterDefinition",
    "register_router",
    "get_router_definition",
    "router_names",
    "list_router_definitions",
    "parse_router",
    "make_router",
    "FleetSimulator",
    "FleetResult",
    "JobAssignment",
]
