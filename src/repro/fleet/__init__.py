"""Multi-site fleet co-simulation with geo-aware job routing.

Real green-computing operators do not run one datacenter: they route work
*across* sites to follow sun, wind and cheap/clean power.  This package adds
that dimension to the toolkit:

* :mod:`~repro.fleet.spec` — the declarative :class:`FleetSpec` (N member
  sites, each an ordinary scenario — the ``scenario@site`` shorthand
  relocates a registered scenario to a registered site, adopting the target
  region's grid profile) plus the named fleet registry.
* :mod:`~repro.fleet.routing` — pluggable routing policies in an open
  registry sharing the ``+``/parenthesis spec grammar of
  :mod:`repro.scheduler.compose`: scorers (``round-robin``,
  ``least-queued``, ``carbon-min``, ``price-min``, ``renewable-max``)
  composed with filters (``queue-cap(max=50)``, ``carbon-cap``,
  ``price-cap``, ``renewable-floor``, ``free-gpus``).
* :mod:`~repro.fleet.simulator` — the :class:`FleetSimulator`, stepping one
  :class:`~repro.cluster.ClusterSimulator` per site in hourly lockstep and
  dispatching each arriving job of the shared workload through the router.
* :mod:`~repro.fleet.parallel` — the process-parallel stepping backend: a
  :class:`FleetWorkerPool` hosts the per-site simulators on worker processes
  behind a pipe protocol while routing stays in the coordinator.
* :mod:`~repro.fleet.result` — the :class:`FleetResult`: per-site results,
  the job→site assignment table, the :class:`FleetStepTimings` breakdown,
  and fleet totals that equal the sum of the member sites bit-for-bit.

Quick start::

    >>> from repro.fleet import FleetSimulator
    >>> result = FleetSimulator(
    ...     "tri-site-small", router="carbon-min+queue-cap(max=50)"
    ... ).run(n_jobs=120)                                   # doctest: +SKIP
    >>> result.dispatch_counts()                            # doctest: +SKIP

A one-site fleet reproduces the single-site
:class:`~repro.experiments.ExperimentSession` results bit-identically, and
the ``fleet`` experiment makes ``router`` a sweepable campaign lever::

    greenhpc fleet --router "round-robin,carbon-min" --json
    greenhpc sweep --experiments fleet --grid "router=round-robin,carbon-min,renewable-max"

Scaling guide — when to step in parallel
----------------------------------------

``FleetSimulator(..., parallel=ParallelConfig(n_workers=N))`` (the CLI's
``--workers`` / ``GREENHPC_WORKERS``) moves the per-site event loops onto
worker processes.  Results are **bit-identical** to serial stepping in
either mode — routing never leaves the coordinator — so the only question
is wall-clock:

* The steady-state IPC cost is two pipe messages down and one up, per
  worker, per hourly window (a routed batch plus a pipelined ``advance``),
  roughly a tenth of a millisecond each; worker start-up is a ``fork`` plus
  one build acknowledgement, and full results ship once, at ``finalize``.
* Parallel stepping wins when per-window simulator work dominates that
  exchange: big facilities (``supercloud-medium`` and up, e.g. the
  ``quad-climate-medium`` speedup fleet of the scale benchmarks), dense
  traces, or many members (``deca-continental-*``, ``duo-xlarge``).
* Keep the serial default for small fleets of small sites — a 3x
  ``supercloud-small`` week steps in well under a second — and inside
  already-parallel campaign sweeps unless the fleet itself is the
  bottleneck (worker counts multiply: W sweep processes x F fleet workers).
"""

from .parallel import (
    FleetWorkerPool,
    SiteFinal,
    SitePayload,
    fleet_start_method,
)
from .result import FleetResult, FleetStepTimings, JobAssignment
from .routing import (
    CompositeRouter,
    Router,
    RouterDefinition,
    SiteFilter,
    SiteScorer,
    SiteSnapshot,
    get_router_definition,
    list_router_definitions,
    make_router,
    parse_router,
    register_router,
    router_names,
)
from .simulator import FleetSimulator
from .spec import (
    REGION_GRIDS,
    FleetSpec,
    fleet_names,
    get_fleet,
    list_fleets,
    register_fleet,
    resolve_member,
)

__all__ = [
    "FleetSpec",
    "REGION_GRIDS",
    "resolve_member",
    "register_fleet",
    "get_fleet",
    "fleet_names",
    "list_fleets",
    "Router",
    "SiteScorer",
    "SiteFilter",
    "SiteSnapshot",
    "CompositeRouter",
    "RouterDefinition",
    "register_router",
    "get_router_definition",
    "router_names",
    "list_router_definitions",
    "parse_router",
    "make_router",
    "FleetSimulator",
    "FleetWorkerPool",
    "SitePayload",
    "SiteFinal",
    "fleet_start_method",
    "FleetResult",
    "FleetStepTimings",
    "JobAssignment",
]
