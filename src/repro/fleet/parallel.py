"""Process-parallel fleet stepping: per-site simulators on worker processes.

The serial :class:`~repro.fleet.simulator.FleetSimulator` loop advances every
member site on one core, so fleet wall-clock grows linearly with fleet size.
This module moves the expensive part — the per-site
:class:`~repro.cluster.simulator.ClusterSimulator` event loops — onto worker
processes while the *routing* stays in the coordinator, which is what keeps
parallel runs bit-identical to serial ones:

* Each worker process hosts one or more member sites (assigned round-robin by
  member index) and speaks a small command protocol over a duplex
  :func:`multiprocessing.Pipe`: ``begin`` / ``submit-batch`` / ``advance`` /
  ``snapshot`` / ``power-summary`` / ``finalize`` / ``stop``.
* The coordinator routes one hourly window at a time from the workers'
  :class:`~repro.fleet.routing.SiteSnapshot` states, ships one batched
  ``submit-batch`` message per worker per window, then pipelines the
  ``advance`` command behind it — pipes are ordered, so the submit lands
  first and no round trip is paid between the two.
* The ``advance`` reply carries the post-advance snapshot state of every
  hosted site, so routing the next window needs no extra exchange: steady
  state is exactly two messages down and one message up, per worker, per
  window.

Routers (which may be stateful, e.g. ``round-robin``'s cursor) never cross
the process boundary, job batches are routed in trace order, and workers
execute the identical ``submit → advance`` sequence the serial loop would —
same dispatch order, same event order, bit-identical per-site job records.

Worker death (a crash, an OOM kill) surfaces as a typed
:class:`~repro.errors.FleetError` naming the member sites the dead worker
hosted; worker-side exceptions are forwarded verbatim and re-raised as
:class:`FleetError` by the coordinator.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from ..cluster.cooling import CoolingModel
from ..cluster.resources import Cluster
from ..cluster.simulator import ClusterSimulator, SimulationConfig, SimulationResult, SitePowerSummary
from ..core.levers import make_scheduler
from ..errors import FleetError, SimulationError
from ..experiments.spec import ScenarioSpec
from ..grid.iso_ne import IsoNeLikeGrid
from ..obs.recorder import NULL_RECORDER, SpanRecord, TraceRecorder, set_recorder
from ..scheduler.job import Job

__all__ = ["SitePayload", "SiteState", "SiteFinal", "FleetWorkerPool", "fleet_start_method"]


def fleet_start_method() -> str:
    """The multiprocessing start method fleet workers use.

    ``fork`` where the platform offers it: workers inherit the registries
    (custom policies, scorers, scheduler stages) and the shipped substrate
    arrays without a pickling round trip, and start in a few milliseconds.
    Elsewhere (``spawn`` platforms) the payloads below are fully picklable,
    at the cost of a slower worker start.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else mp.get_start_method(allow_none=False)


@dataclass(frozen=True)
class SitePayload:
    """Everything a worker needs to build one member site's simulator.

    The substrates (``weather_hourly_c``, ``grid``) are the coordinator
    session's *already built* arrays, shipped rather than rebuilt, so the
    worker's simulator consumes bit-identical inputs to a serial run over the
    same session.
    """

    index: int
    spec: ScenarioSpec
    policy: str
    horizon_h: float
    power_cap_fraction: Optional[float]
    weather_hourly_c: np.ndarray
    grid: IsoNeLikeGrid


#: Post-advance routing state of one site, as shipped over the pipe:
#: ``(queue_length, running_jobs, free_gpus, it_power_w, carbon, price,
#: renewable)`` — the per-site :class:`~repro.fleet.routing.SiteSnapshot`
#: fields the coordinator cannot know without asking the simulator.
SiteState = tuple  # noqa: UP006 - 7-tuple documented above


@dataclass(frozen=True)
class SiteFinal:
    """One site's end-of-run payload: full result, power summary, and the
    ``fleet.site_advance`` spans recorded while stepping it.

    The spans are what used to be hand-rolled ``perf_counter`` sums: workers
    (and the serial backend) record one span per site per window into a local
    :class:`~repro.obs.recorder.TraceRecorder` and ship the batch here at
    finalize, so parallel traces show per-site timelines and
    :class:`~repro.fleet.result.FleetStepTimings` stays a pure recorder view.
    """

    result: SimulationResult
    power: SitePowerSummary
    spans: tuple[SpanRecord, ...] = ()

    @property
    def advance_wall_s(self) -> float:
        """Total wall seconds spent advancing this site's simulator."""
        return sum(s.wall_s for s in self.spans if s.name == "fleet.site_advance")


def build_site_simulator(payload: SitePayload) -> ClusterSimulator:
    """Construct one member site's simulator from its shipped payload.

    Raises the same :class:`FleetError` a serial
    :meth:`FleetSimulator._build_sites` would, so a member that cannot host
    the horizon fails identically in both modes.
    """
    spec = payload.spec
    try:
        return ClusterSimulator(
            Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
            make_scheduler(payload.policy, payload.power_cap_fraction),
            SimulationConfig(horizon_h=payload.horizon_h),
            weather_hourly_c=payload.weather_hourly_c,
            cooling=CoolingModel(),
            grid=payload.grid,
        )
    except SimulationError as exc:
        raise FleetError(
            f"fleet member {spec.name!r} cannot host a "
            f"{payload.horizon_h / 24.0:.1f}-day horizon: {exc}"
        ) from None


def site_state(simulator: ClusterSimulator, now_h: float) -> SiteState:
    """The routing-relevant state of ``simulator`` at ``now_h``.

    Field-for-field the simulator reads of
    :meth:`FleetSimulator._snapshots`, so coordinator-side snapshots built
    from this tuple match the serial loop's exactly.
    """
    context = simulator.scheduling_context(now_h)
    return (
        simulator.n_pending,
        simulator.n_running,
        simulator.cluster.n_free_gpus,
        simulator.current_it_power_w,
        context.carbon_intensity_g_per_kwh,
        context.price_per_mwh,
        context.renewable_share,
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _fleet_worker_main(conn: Any, payloads: Sequence[SitePayload]) -> None:
    """One worker process: build the hosted sites, then serve the protocol.

    Replies are ``("ok", payload)`` or ``("error", message)``.  Commands that
    send no reply (``submit-batch``) defer any failure to the next replying
    command, so the coordinator's pipelined send pattern still observes it.
    """
    # Fork-started workers inherit the coordinator's ambient recorder; reset
    # it so instrumented layers in this process stay no-op — site stepping is
    # timed explicitly into the local recorder below and shipped at finalize.
    set_recorder(NULL_RECORDER)
    recorder = TraceRecorder()
    sims: dict[int, ClusterSimulator] = {}
    site_names: dict[int, str] = {}
    deferred_error: Optional[str] = None
    try:
        try:
            for payload in payloads:
                sims[payload.index] = build_site_simulator(payload)
                site_names[payload.index] = payload.spec.name
        except Exception as exc:  # noqa: BLE001 - forwarded to the coordinator
            conn.send(("error", str(exc)))
            return
        conn.send(("ok", sorted(sims)))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                return
            try:
                if deferred_error is not None and command != "submit-batch":
                    error, deferred_error = deferred_error, None
                    conn.send(("error", error))
                    continue
                if command == "begin":
                    for index in sorted(sims):
                        sims[index].begin()
                    conn.send(("ok", {i: site_state(sims[i], 0.0) for i in sorted(sims)}))
                elif command == "submit-batch":
                    _, batches = message
                    for index in sorted(batches):
                        for job in batches[index]:
                            sims[index].submit(job)
                elif command == "advance":
                    _, until_h, snapshot_h = message
                    for index in sorted(sims):
                        with recorder.span(
                            "fleet.site_advance",
                            site=site_names[index],
                            index=index,
                            until_h=until_h,
                        ):
                            sims[index].advance(until_h)
                    conn.send(
                        ("ok", {i: site_state(sims[i], snapshot_h) for i in sorted(sims)})
                    )
                elif command == "snapshot":
                    _, at_h = message
                    conn.send(("ok", {i: site_state(sims[i], at_h) for i in sorted(sims)}))
                elif command == "power-summary":
                    conn.send(("ok", {i: sims[i].site_power_summary() for i in sorted(sims)}))
                elif command == "finalize":
                    site_spans: dict[int, list[SpanRecord]] = {i: [] for i in sims}
                    for record in recorder.spans:
                        owner = record.attributes.get("index")
                        if owner in site_spans:
                            site_spans[owner].append(record)
                    finals = {}
                    for index in sorted(sims):
                        result = sims[index].finalize()
                        finals[index] = SiteFinal(
                            result=result,
                            power=sims[index].site_power_summary(),
                            spans=tuple(site_spans[index]),
                        )
                    conn.send(("ok", finals))
                else:
                    conn.send(("error", f"unknown fleet worker command {command!r}"))
            except Exception as exc:  # noqa: BLE001 - forwarded to the coordinator
                if command == "submit-batch":
                    deferred_error = str(exc)
                else:
                    conn.send(("error", str(exc)))
    except (EOFError, OSError, KeyboardInterrupt):  # coordinator went away
        return
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """One live worker: its process, pipe end, and the site indices it hosts."""

    process: Any
    conn: Any
    site_indices: tuple[int, ...]
    site_names: tuple[str, ...]
    #: Set when the worker died or errored; further exchanges refuse early.
    failed: bool = field(default=False)


class FleetWorkerPool:
    """Coordinator end of the fleet worker protocol.

    Spawns ``n_workers`` processes (capped at the number of sites), assigns
    member sites round-robin by index, and exposes the protocol as bulk
    operations over all sites: every method sends to the relevant workers
    first and only then collects replies, so workers run concurrently.

    Use as a context manager; :meth:`close` is idempotent and always
    terminates stragglers.
    """

    def __init__(self, payloads: Sequence[SitePayload], n_workers: int) -> None:
        if not payloads:
            raise FleetError("fleet worker pool needs at least one site payload")
        self._payloads = tuple(payloads)
        self.n_workers = max(1, min(int(n_workers), len(self._payloads)))
        self.workers: list[_WorkerHandle] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and wait until every one has built its sites."""
        context = mp.get_context(fleet_start_method())
        assigned: list[list[SitePayload]] = [[] for _ in range(self.n_workers)]
        for position, payload in enumerate(self._payloads):
            assigned[position % self.n_workers].append(payload)
        for worker_payloads in assigned:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_fleet_worker_main,
                args=(child_conn, worker_payloads),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(
                _WorkerHandle(
                    process=process,
                    conn=parent_conn,
                    site_indices=tuple(p.index for p in worker_payloads),
                    site_names=tuple(p.spec.name for p in worker_payloads),
                )
            )
        # The build acknowledgement doubles as the construction error channel.
        for worker in self.workers:
            self._recv(worker)

    def __enter__(self) -> "FleetWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker; escalate to terminate/kill for stragglers."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
            worker.conn.close()

    # ------------------------------------------------------------------
    # Exchange plumbing
    # ------------------------------------------------------------------
    def _dead(self, worker: _WorkerHandle, cause: str) -> FleetError:
        worker.failed = True
        names = ", ".join(repr(name) for name in worker.site_names)
        return FleetError(
            f"fleet worker hosting site(s) {names} {cause}; "
            "the co-simulation cannot continue"
        )

    def _send(self, worker: _WorkerHandle, message: tuple) -> None:
        if worker.failed:
            raise self._dead(worker, "already failed")
        try:
            worker.conn.send(message)
        except (OSError, BrokenPipeError, ValueError) as exc:
            raise self._dead(worker, f"died (pipe closed: {exc})") from None

    def _recv(self, worker: _WorkerHandle) -> Any:
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise self._dead(
                worker, f"died mid-run (exit code {worker.process.exitcode}, {exc!r})"
            ) from None
        if status != "ok":
            worker.failed = True
            names = ", ".join(repr(name) for name in worker.site_names)
            raise FleetError(f"fleet worker hosting site(s) {names} failed: {payload}")
        return payload

    def _collect(self, workers: Sequence[_WorkerHandle]) -> dict[int, Any]:
        merged: dict[int, Any] = {}
        for worker in workers:
            merged.update(self._recv(worker))
        return merged

    # ------------------------------------------------------------------
    # Protocol operations (bulk, over all sites)
    # ------------------------------------------------------------------
    def begin(self) -> dict[int, SiteState]:
        """``begin`` every site; returns each site's state at hour 0."""
        for worker in self.workers:
            self._send(worker, ("begin",))
        return self._collect(self.workers)

    def submit_batch(self, batches: Mapping[int, Sequence[Job]]) -> None:
        """Ship one window's routed jobs — one message per involved worker.

        Sends no reply (the next ``advance``/``snapshot``/``finalize`` reply
        reports any deferred submit failure), so the coordinator can pipeline
        the window's ``advance`` right behind it.
        """
        if not batches:
            return
        for worker in self.workers:
            worker_batches = {
                index: list(batches[index]) for index in worker.site_indices if index in batches
            }
            if worker_batches:
                self._send(worker, ("submit-batch", worker_batches))

    def advance(self, until_h: float, snapshot_h: float) -> dict[int, SiteState]:
        """Advance every site to ``until_h``; returns states at ``snapshot_h``."""
        for worker in self.workers:
            self._send(worker, ("advance", until_h, snapshot_h))
        return self._collect(self.workers)

    def snapshot(self, at_h: float) -> dict[int, SiteState]:
        """Fresh per-site states at ``at_h`` without advancing anything."""
        for worker in self.workers:
            self._send(worker, ("snapshot", at_h))
        return self._collect(self.workers)

    def power_summary(self) -> dict[int, SitePowerSummary]:
        """Mid-run (or post-run) per-site power summaries, by member index."""
        for worker in self.workers:
            self._send(worker, ("power-summary",))
        return self._collect(self.workers)

    def finalize(self) -> dict[int, SiteFinal]:
        """Finalize every site; returns results, power summaries and timings."""
        for worker in self.workers:
            self._send(worker, ("finalize",))
        return self._collect(self.workers)
