"""Geo-aware job routing: pluggable, composable site-selection policies.

A *router* decides, for each arriving job, which member site of a fleet
receives it.  Routers see one :class:`SiteSnapshot` per site — queue length,
free GPUs, and the site's current grid signals (carbon intensity, price,
renewable share) — and return the index of the chosen site.

Like scheduling policies (:mod:`repro.scheduler.compose`), routers are
addressable by a spec string in the same ``token('+')token`` grammar::

    round-robin
    carbon-min
    carbon-min+queue-cap(max=50)
    renewable-max+free-gpus(min=4)+queue-cap(max=100)

Tokens come in two kinds:

* **scorer** — picks among the candidate sites (``round-robin``,
  ``least-queued``, ``carbon-min``, ``price-min``, ``renewable-max``); at
  most one per spec, defaulting to ``round-robin``;
* **filter** — prunes the candidate set before scoring (``queue-cap``,
  ``carbon-cap``, ``price-cap``, ``renewable-floor``, ``free-gpus``).  When
  every site is filtered out, the filters are waived for that job (a router
  must always route) — the scorer then picks among all feasible sites.

Sites that cannot ever fit a job (``job.n_gpus`` exceeding the site's total
GPU count) are never candidates; a job too large for every member raises
:class:`~repro.errors.FleetError`.

The vocabulary is an open registry — :func:`register_router` adds new tokens,
and :func:`make_router` resolves any spec (or a :class:`Router` instance)
everywhere a router is addressed: :class:`~repro.fleet.FleetSpec`, the
``fleet`` experiment, campaign grids (``--grid "router=..."``), and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from ..errors import FleetError, SchedulingError
from ..scheduler.compose import PolicySpec, StageParam, StageSpec
from ..scheduler.job import Job

__all__ = [
    "SiteSnapshot",
    "Router",
    "SiteScorer",
    "SiteFilter",
    "CompositeRouter",
    "RouterDefinition",
    "register_router",
    "get_router_definition",
    "router_names",
    "list_router_definitions",
    "parse_router",
    "make_router",
]


@dataclass(slots=True)
class SiteSnapshot:
    """What a router sees of one member site at a dispatch instant.

    Queue/occupancy state comes from the site's lockstepped
    :class:`~repro.cluster.simulator.ClusterSimulator`; the grid signals are
    the site's own hourly series evaluated at the dispatch hour.  Mutable on
    purpose (and ``__slots__``-backed for cheap construction): the fleet
    dispatch loop bumps ``queue_length``/``dispatched`` in place as a
    window's arrivals land, so routers see in-flight dispatches without a
    rebuild per job.  ``dispatched`` is the site's cumulative dispatch count
    over the whole run — the hook for balance-style custom routers
    (``score = site.dispatched`` evens out assignment without O(n) replays
    of the assignment table).
    """

    index: int
    name: str
    queue_length: int
    running_jobs: int
    free_gpus: int
    total_gpus: int
    it_power_w: float
    carbon_intensity_g_per_kwh: Optional[float] = None
    price_per_mwh: Optional[float] = None
    renewable_share: Optional[float] = None
    dispatched: int = 0


class Router:
    """Base class: route each arriving job to a member site by index."""

    name: str = "router"

    def begin_fleet(self, n_sites: int) -> None:
        """Reset per-run state; called once before a fleet run starts."""

    def select(self, job: Job, sites: Sequence[SiteSnapshot], now_h: float) -> int:
        """The index of the site that should receive ``job``."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class SiteScorer:
    """A scorer token: rank candidate sites, lowest (score, index) wins."""

    name: str = "scorer"

    def begin_fleet(self, n_sites: int) -> None:
        """Reset per-run state; called once before a fleet run starts."""

    def score(self, job: Job, site: SiteSnapshot, now_h: float) -> float:
        raise NotImplementedError

    def choose(self, job: Job, candidates: Sequence[SiteSnapshot], now_h: float) -> SiteSnapshot:
        """The winning candidate (minimum score; ties go to the lowest index)."""
        return min(candidates, key=lambda site: (self.score(job, site, now_h), site.index))


class SiteFilter:
    """A filter token: prune candidate sites before scoring."""

    name: str = "filter"

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Built-in scorers
# ---------------------------------------------------------------------------


def _signal_or_inf(value: Optional[float]) -> float:
    """Missing grid signals sort last (sites without a grid are avoided)."""
    return value if value is not None else float("inf")


class RoundRobinScorer(SiteScorer):
    """Cycle through the sites, skipping non-candidates without losing turn order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0
        self._n_sites = 1

    def begin_fleet(self, n_sites: int) -> None:
        self._next = 0
        self._n_sites = max(n_sites, 1)

    def choose(self, job: Job, candidates: Sequence[SiteSnapshot], now_h: float) -> SiteSnapshot:
        chosen = min(
            candidates, key=lambda site: (site.index - self._next) % self._n_sites
        )
        self._next = (chosen.index + 1) % self._n_sites
        return chosen


class LeastQueuedScorer(SiteScorer):
    name = "least-queued"

    def score(self, job: Job, site: SiteSnapshot, now_h: float) -> float:
        return float(site.queue_length)


class CarbonMinScorer(SiteScorer):
    name = "carbon-min"

    def score(self, job: Job, site: SiteSnapshot, now_h: float) -> float:
        return _signal_or_inf(site.carbon_intensity_g_per_kwh)


class PriceMinScorer(SiteScorer):
    name = "price-min"

    def score(self, job: Job, site: SiteSnapshot, now_h: float) -> float:
        return _signal_or_inf(site.price_per_mwh)


class RenewableMaxScorer(SiteScorer):
    name = "renewable-max"

    def score(self, job: Job, site: SiteSnapshot, now_h: float) -> float:
        share = site.renewable_share if site.renewable_share is not None else 0.0
        return -share


# ---------------------------------------------------------------------------
# Built-in filters
# ---------------------------------------------------------------------------


class QueueCapFilter(SiteFilter):
    name = "queue-cap"

    def __init__(self, max_queue: int) -> None:
        self.max_queue = int(max_queue)

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        return site.queue_length <= self.max_queue


class CarbonCapFilter(SiteFilter):
    name = "carbon-cap"

    def __init__(self, max_intensity: float) -> None:
        self.max_intensity = float(max_intensity)

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        signal = site.carbon_intensity_g_per_kwh
        return signal is None or signal <= self.max_intensity

class PriceCapFilter(SiteFilter):
    name = "price-cap"

    def __init__(self, max_price: float) -> None:
        self.max_price = float(max_price)

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        signal = site.price_per_mwh
        return signal is None or signal <= self.max_price


class RenewableFloorFilter(SiteFilter):
    name = "renewable-floor"

    def __init__(self, min_share: float) -> None:
        self.min_share = float(min_share)

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        signal = site.renewable_share
        return signal is not None and signal >= self.min_share


class FreeGpusFilter(SiteFilter):
    name = "free-gpus"

    def __init__(self, min_free: int) -> None:
        self.min_free = int(min_free)

    def admits(self, job: Job, site: SiteSnapshot, now_h: float) -> bool:
        return site.free_gpus >= self.min_free


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------


class CompositeRouter(Router):
    """Filters prune the candidate set; one scorer picks the winner.

    Candidates start as the sites that can ever fit the job (total GPUs);
    filters then prune in spec order.  An over-constrained filter chain (no
    site admitted) is waived for that job — a router must always route — and
    the scorer decides among all feasible sites.
    """

    def __init__(
        self,
        scorer: SiteScorer,
        filters: Sequence[SiteFilter] = (),
        *,
        name: Optional[str] = None,
    ) -> None:
        self.scorer = scorer
        self.filters = tuple(filters)
        self.name = name if name is not None else scorer.name

    def begin_fleet(self, n_sites: int) -> None:
        self.scorer.begin_fleet(n_sites)

    def select(self, job: Job, sites: Sequence[SiteSnapshot], now_h: float) -> int:
        feasible = [site for site in sites if site.total_gpus >= job.n_gpus]
        if not feasible:
            largest = max((site.total_gpus for site in sites), default=0)
            raise FleetError(
                f"job {job.job_id!r} needs {job.n_gpus} GPUs but the largest fleet "
                f"member has {largest}"
            )
        candidates = feasible
        for site_filter in self.filters:
            admitted = [
                site for site in candidates if site_filter.admits(job, site, now_h)
            ]
            candidates = admitted
            if not candidates:
                break
        if not candidates:
            candidates = feasible
        return self.scorer.choose(job, candidates, now_h).index


# ---------------------------------------------------------------------------
# Registry and grammar
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouterDefinition:
    """A registered router token: metadata plus a factory for its stage.

    ``kind`` is ``"scorer"`` or ``"filter"``; ``build`` receives the resolved
    parameter dictionary and returns the corresponding stage instance.
    Parameters reuse the :class:`~repro.scheduler.compose.StageParam`
    machinery, so defaults, ``none`` handling and type coercion behave exactly
    like scheduling-stage tokens.
    """

    name: str
    kind: str  # "scorer" | "filter"
    help: str
    params: tuple[StageParam, ...] = ()
    build: Callable[[dict[str, Any]], Union[SiteScorer, SiteFilter]] = field(
        default=lambda params: RoundRobinScorer(), repr=False
    )

    def resolve_params(self, token: StageSpec) -> dict[str, Any]:
        declared = {p.name: p for p in self.params}
        unknown = [key for key, _ in token.params if key not in declared]
        if unknown:
            raise FleetError(
                f"unknown argument(s) {unknown} for router token {str(token)!r}; "
                f"declared: {sorted(declared)}"
            )
        given = token.param_dict()
        resolved: dict[str, Any] = {}
        for param in self.params:
            if param.name in given:
                try:
                    resolved[param.name] = param.coerce(given[param.name], token)
                except SchedulingError as exc:
                    raise FleetError(str(exc).replace("policy token", "router token")) from None
            elif param.required:
                raise FleetError(
                    f"router token {str(token)!r} is missing required argument {param.name!r}"
                )
            else:
                resolved[param.name] = param.default
        return resolved


_ROUTERS: dict[str, RouterDefinition] = {}


def register_router(definition: RouterDefinition, *, overwrite: bool = False) -> RouterDefinition:
    """Register a router token; duplicate names raise unless ``overwrite``."""
    if definition.kind not in ("scorer", "filter"):
        raise FleetError(f"unknown router token kind {definition.kind!r}")
    if definition.name in _ROUTERS and not overwrite:
        raise FleetError(f"router token {definition.name!r} is already registered")
    _ROUTERS[definition.name] = definition
    return definition


def get_router_definition(name: str) -> RouterDefinition:
    """Look up a registered router token by name."""
    try:
        return _ROUTERS[name]
    except KeyError:
        raise FleetError(
            f"unknown router token {name!r}; registered tokens: {sorted(_ROUTERS)}"
        ) from None


def router_names() -> tuple[str, ...]:
    """Names of all registered router tokens, in registration order."""
    return tuple(_ROUTERS)


def list_router_definitions() -> Iterator[RouterDefinition]:
    """Iterate over registered router definitions, in registration order."""
    return iter(tuple(_ROUTERS.values()))


def parse_router(text: str) -> tuple[StageSpec, ...]:
    """Parse a router spec into stage tokens (shared ``+``/paren grammar).

    Raises :class:`FleetError` naming the offending token; every token must
    be registered, and at most one may be a scorer.
    """
    if isinstance(text, Router):  # pragma: no cover - defensive convenience
        raise FleetError("parse_router expects spec text; pass Router instances to make_router")
    try:
        tokens = PolicySpec.parse(text).stages
    except SchedulingError as exc:
        raise FleetError(
            str(exc).replace("policy spec", "router spec").replace("policy token", "router token")
        ) from None
    scorers = []
    for token in tokens:
        definition = get_router_definition(token.name)
        if definition.kind == "scorer":
            scorers.append(token.name)
    if len(scorers) > 1:
        raise FleetError(
            f"router spec {text!r} names {len(scorers)} scorers {scorers}; at most one "
            "scorer is allowed (filters compose freely)"
        )
    return tokens


def make_router(spec: Union[str, Router]) -> Router:
    """Resolve a router spec string (or pass through a :class:`Router`).

    The returned router is freshly built — stateful scorers such as
    ``round-robin`` do not share state between fleet runs resolved from the
    same spec string.
    """
    if isinstance(spec, Router):
        return spec
    tokens = parse_router(spec)
    scorer: Optional[SiteScorer] = None
    filters: list[SiteFilter] = []
    for token in tokens:
        definition = get_router_definition(token.name)
        stage = definition.build(definition.resolve_params(token))
        if definition.kind == "scorer":
            scorer = stage
        else:
            filters.append(stage)
    if scorer is None:
        scorer = RoundRobinScorer()
    canonical = "+".join(str(token) for token in tokens)
    return CompositeRouter(scorer, filters, name=canonical)


# ---------------------------------------------------------------------------
# Built-in vocabulary
# ---------------------------------------------------------------------------

register_router(
    RouterDefinition(
        name="round-robin",
        kind="scorer",
        help="cycle dispatches through the member sites in index order",
        build=lambda params: RoundRobinScorer(),
    )
)
register_router(
    RouterDefinition(
        name="least-queued",
        kind="scorer",
        help="send each job to the site with the shortest pending queue",
        build=lambda params: LeastQueuedScorer(),
    )
)
register_router(
    RouterDefinition(
        name="carbon-min",
        kind="scorer",
        help="send each job to the site with the lowest current carbon intensity",
        build=lambda params: CarbonMinScorer(),
    )
)
register_router(
    RouterDefinition(
        name="price-min",
        kind="scorer",
        help="send each job to the site with the lowest current electricity price",
        build=lambda params: PriceMinScorer(),
    )
)
register_router(
    RouterDefinition(
        name="renewable-max",
        kind="scorer",
        help="send each job to the site with the highest current renewable share",
        build=lambda params: RenewableMaxScorer(),
    )
)
register_router(
    RouterDefinition(
        name="queue-cap",
        kind="filter",
        help="exclude sites whose pending queue exceeds a maximum length",
        params=(StageParam("max", int, 50, "largest admissible queue length"),),
        build=lambda params: QueueCapFilter(params["max"]),
    )
)
register_router(
    RouterDefinition(
        name="carbon-cap",
        kind="filter",
        help="exclude sites whose current carbon intensity exceeds a ceiling",
        params=(StageParam("max", float, help="carbon-intensity ceiling in g/kWh"),),
        build=lambda params: CarbonCapFilter(params["max"]),
    )
)
register_router(
    RouterDefinition(
        name="price-cap",
        kind="filter",
        help="exclude sites whose current electricity price exceeds a ceiling",
        params=(StageParam("max", float, help="price ceiling in $/MWh"),),
        build=lambda params: PriceCapFilter(params["max"]),
    )
)
register_router(
    RouterDefinition(
        name="renewable-floor",
        kind="filter",
        help="exclude sites whose current renewable share is below a floor",
        params=(StageParam("min", float, 0.3, "minimum solar+wind share"),),
        build=lambda params: RenewableFloorFilter(params["min"]),
    )
)
register_router(
    RouterDefinition(
        name="free-gpus",
        kind="filter",
        help="exclude sites with fewer than a minimum number of free GPUs",
        params=(StageParam("min", int, 1, "minimum free GPUs at dispatch time"),),
        build=lambda params: FreeGpusFilter(params["min"]),
    )
)
