"""The multi-site fleet co-simulator.

A :class:`FleetSimulator` builds one
:class:`~repro.cluster.simulator.ClusterSimulator` per member site of a
:class:`~repro.fleet.spec.FleetSpec` (each against its *own* weather, cooling
and grid substrates) and steps them in hourly lockstep via the simulator's
stepping API: at each hour boundary the jobs arriving in the next window are
dispatched to a site by the routing policy, then every site advances one hour.

Because the per-site event order is exactly what a monolithic single-site
``run()`` of the same assigned jobs would produce, a one-site fleet
reproduces the single-site :class:`~repro.experiments.ExperimentSession`
results **bit-identically** — the parity anchor of the subsystem's tests —
and every fleet total is the exact sum of its member-site totals.

The shared workload arrives from the first member's trace configuration (one
generator, one seed), mirroring
:meth:`~repro.experiments.ExperimentSession.job_trace`; substrates are built
through an (optionally shared) session, so comparing R routers on the same
fleet builds each site's world once, not R times.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from ..cluster.cooling import CoolingModel
from ..cluster.resources import Cluster
from ..cluster.simulator import ClusterSimulator, SimulationConfig
from ..core.levers import make_scheduler
from ..errors import FleetError, SimulationError
from ..experiments.session import ExperimentSession
from ..experiments.spec import ScenarioSpec
from ..scheduler.job import Job
from .result import FleetResult, JobAssignment
from .routing import Router, SiteSnapshot, make_router
from .spec import FleetSpec

__all__ = ["FleetSimulator"]


class _FleetSite:
    """One member site mid-co-simulation: spec, simulator and counters."""

    def __init__(self, index: int, spec: ScenarioSpec, simulator: ClusterSimulator) -> None:
        self.index = index
        self.spec = spec
        self.simulator = simulator
        self.dispatched = 0


class FleetSimulator:
    """Co-simulates a fleet's member sites under a geo-aware routing policy.

    Parameters
    ----------
    fleet:
        The fleet to simulate — a :class:`FleetSpec` or a registered fleet
        name.
    router:
        Routing policy override: a spec string in the
        :mod:`~repro.fleet.routing` grammar or a :class:`Router` instance;
        ``None`` uses the fleet's own default.
    policy:
        Per-site scheduling policy (registered name or pipeline spec string),
        applied at every member site.
    horizon_h:
        Simulated horizon in hours (shared by all sites).
    power_cap_fraction:
        Optional GPU power-cap lever handed to the per-site scheduler.
    session:
        Substrate cache to build member worlds through; a private
        :class:`ExperimentSession` keyed to the first member is created when
        omitted.  Passing the experiment's session shares weather/trace/grid
        builds across routers and campaign points.
    """

    def __init__(
        self,
        fleet: Union[FleetSpec, str],
        *,
        router: Union[str, Router, None] = None,
        policy: str = "backfill",
        horizon_h: float = 7 * 24.0,
        power_cap_fraction: Optional[float] = None,
        session: Optional[ExperimentSession] = None,
    ) -> None:
        if isinstance(fleet, str):
            from .spec import get_fleet

            fleet = get_fleet(fleet)
        self.fleet = fleet
        self.router: Router = make_router(router if router is not None else fleet.router)
        self.policy = policy
        self.horizon_h = float(horizon_h)
        self.power_cap_fraction = power_cap_fraction
        self._session = session if session is not None else ExperimentSession(fleet.members[0])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_sites(self) -> list[_FleetSite]:
        sites = []
        for index, spec in enumerate(self.fleet.members):
            scenario = self._session.scenario(spec)
            try:
                simulator = ClusterSimulator(
                    Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
                    make_scheduler(self.policy, self.power_cap_fraction),
                    SimulationConfig(horizon_h=self.horizon_h),
                    weather_hourly_c=scenario.weather_hourly_c,
                    cooling=CoolingModel(),
                    grid=scenario.grid,
                )
            except SimulationError as exc:
                raise FleetError(
                    f"fleet member {spec.name!r} cannot host a "
                    f"{self.horizon_h / 24.0:.1f}-day horizon: {exc}"
                ) from None
            sites.append(_FleetSite(index, spec, simulator))
        return sites

    def shared_job_trace(self, *, n_jobs: int = 300) -> list[Job]:
        """The fleet's shared workload: the first member's generated trace."""
        return self._session.job_trace(
            n_jobs=n_jobs, horizon_h=self.horizon_h, spec=self.fleet.members[0]
        )

    def _snapshots(self, sites: Sequence[_FleetSite], now_h: float) -> list[SiteSnapshot]:
        """Fresh snapshots of every site at ``now_h`` (one context read each).

        Built once per dispatch window: grid signals only change hourly, and
        queue/occupancy state only changes when a site ``advance``\\ s.  Within
        a window, :meth:`run` updates the receiving site's snapshot
        incrementally after each dispatch so routers see in-flight arrivals.
        """
        snapshots = []
        for site in sites:
            simulator = site.simulator
            context = simulator.scheduling_context(now_h)
            snapshots.append(
                SiteSnapshot(
                    index=site.index,
                    name=site.spec.name,
                    queue_length=simulator.n_pending,
                    running_jobs=simulator.n_running,
                    free_gpus=simulator.cluster.n_free_gpus,
                    total_gpus=site.spec.facility.total_gpus,
                    it_power_w=simulator.current_it_power_w,
                    carbon_intensity_g_per_kwh=context.carbon_intensity_g_per_kwh,
                    price_per_mwh=context.price_per_mwh,
                    renewable_share=context.renewable_share,
                    dispatched=site.dispatched,
                )
            )
        return snapshots

    # ------------------------------------------------------------------
    # The lockstep loop
    # ------------------------------------------------------------------
    def run(self, jobs: Optional[Sequence[Job]] = None, *, n_jobs: int = 300) -> FleetResult:
        """Co-simulate the fleet over a job trace and return the fleet result.

        ``jobs`` defaults to the shared workload trace
        (:meth:`shared_job_trace`); explicit traces are dispatched as given.
        Jobs are cloned at dispatch, so the input trace can be reused across
        routers and runs.
        """
        trace = list(jobs) if jobs is not None else self.shared_job_trace(n_jobs=n_jobs)
        # Stable sort: same-instant jobs keep trace order, so a site's event
        # sequence is identical to a monolithic run of its assigned jobs.
        trace.sort(key=lambda job: job.submit_time_h)

        sites = self._build_sites()
        for site in sites:
            site.simulator.begin()
        self.router.begin_fleet(len(sites))

        assignments: list[JobAssignment] = []
        snapshots: Optional[list[SiteSnapshot]] = None

        def dispatch(job: Job, now_h: float, hour: int) -> None:
            nonlocal snapshots
            if snapshots is None:  # first arrival of this window
                snapshots = self._snapshots(sites, now_h)
            index = self.router.select(job, snapshots, now_h)
            if not 0 <= index < len(sites):
                raise FleetError(
                    f"router {self.router.name!r} returned site index {index!r} "
                    f"for job {job.job_id!r} (fleet has {len(sites)} sites)"
                )
            site = sites[index]
            site.simulator.submit(job.clone_pending())
            site.dispatched += 1
            # In-flight accounting: later arrivals of the same window see the
            # receiving site's queue grow (its simulator only drains the
            # submit when it next advances).
            chosen = snapshots[index]
            chosen.queue_length += 1
            chosen.dispatched = site.dispatched
            assignments.append(
                JobAssignment(
                    job_id=job.job_id,
                    site_index=site.index,
                    site_name=site.spec.name,
                    submit_time_h=job.submit_time_h,
                    dispatch_hour=hour,
                )
            )

        n_hours = int(math.ceil(self.horizon_h))
        cursor = 0
        for hour in range(n_hours):
            # Route this window's arrivals first, then advance every site
            # through the window — submits at instant `hour` must be enqueued
            # before that instant's events are drained.
            while cursor < len(trace) and trace[cursor].submit_time_h < hour + 1:
                dispatch(trace[cursor], float(hour), hour)
                cursor += 1
            snapshots = None
            for site in sites:
                site.simulator.advance(hour + 1)
        # Jobs submitting at/after the horizon still get routed (and recorded
        # as never-started), so every generated job is dispatched exactly once.
        while cursor < len(trace):
            dispatch(trace[cursor], self.horizon_h, n_hours)
            cursor += 1

        site_results = tuple(site.simulator.finalize() for site in sites)
        site_power = tuple(site.simulator.site_power_summary() for site in sites)
        return FleetResult(
            fleet_name=self.fleet.name,
            router=self.router.name,
            policy=self.policy,
            site_names=self.fleet.member_names,
            site_results=site_results,
            site_power=site_power,
            assignments=tuple(assignments),
        )
