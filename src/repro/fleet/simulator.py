"""The multi-site fleet co-simulator.

A :class:`FleetSimulator` builds one
:class:`~repro.cluster.simulator.ClusterSimulator` per member site of a
:class:`~repro.fleet.spec.FleetSpec` (each against its *own* weather, cooling
and grid substrates) and steps them in hourly lockstep via the simulator's
stepping API: at each hour boundary the jobs arriving in the next window are
dispatched to a site by the routing policy, then every site advances one hour.

Because the per-site event order is exactly what a monolithic single-site
``run()`` of the same assigned jobs would produce, a one-site fleet
reproduces the single-site :class:`~repro.experiments.ExperimentSession`
results **bit-identically** — the parity anchor of the subsystem's tests —
and every fleet total is the exact sum of its member-site totals.

The member sites step either in-process (the default) or on worker processes
(``parallel=ParallelConfig(n_workers=N)``, see :mod:`repro.fleet.parallel`).
Both modes share this module's coordinator loop — routing state, in-window
snapshot bumping, dispatch order — and both step the same
:class:`ClusterSimulator` against the same shipped substrates, so their
per-site job records are bit-identical; only the wall-clock differs.

The shared workload arrives from the first member's trace configuration (one
generator, one seed), mirroring
:meth:`~repro.experiments.ExperimentSession.job_trace`; substrates are built
through an (optionally shared) session, so comparing R routers on the same
fleet builds each site's world once, not R times.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence, Union

from ..errors import FleetError
from ..experiments.session import ExperimentSession
from ..obs.profile import RunProfile
from ..obs.recorder import SpanRecord, TraceRecorder, get_recorder
from ..parallel.pool import ParallelConfig
from ..scheduler.job import Job
from .parallel import (
    FleetWorkerPool,
    SiteFinal,
    SitePayload,
    SiteState,
    build_site_simulator,
    site_state,
)
from .result import FleetResult, FleetStepTimings, JobAssignment
from .routing import Router, SiteSnapshot, make_router
from .spec import FleetSpec

__all__ = ["FleetSimulator"]


class _SerialBackend:
    """In-process stepping of the member sites (the ``workers<=1`` path).

    Speaks the same bulk operations as :class:`~repro.fleet.parallel.
    FleetWorkerPool` so the coordinator loop in :meth:`FleetSimulator.run`
    is one piece of code for both modes.
    """

    n_workers = 1

    def __init__(self, payloads: Sequence[SitePayload]) -> None:
        self._payloads = tuple(payloads)
        self._sims: dict[int, Any] = {}
        self._names: dict[int, str] = {}
        # Site stepping is always timed (FleetStepTimings is a view over
        # these spans); a private recorder keeps that identical whether or
        # not the ambient recorder is enabled.
        self._recorder = TraceRecorder()

    def __enter__(self) -> "_SerialBackend":
        for payload in self._payloads:
            self._sims[payload.index] = build_site_simulator(payload)
            self._names[payload.index] = payload.spec.name
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def _states(self, at_h: float) -> dict[int, SiteState]:
        return {index: site_state(sim, at_h) for index, sim in self._sims.items()}

    def begin(self) -> dict[int, SiteState]:
        for index in sorted(self._sims):
            self._sims[index].begin()
        return self._states(0.0)

    def submit_batch(self, batches: Mapping[int, Sequence[Job]]) -> None:
        for index in sorted(batches):
            for job in batches[index]:
                self._sims[index].submit(job)

    def advance(self, until_h: float, snapshot_h: float) -> dict[int, SiteState]:
        for index in sorted(self._sims):
            with self._recorder.span(
                "fleet.site_advance",
                site=self._names[index],
                index=index,
                until_h=until_h,
            ):
                self._sims[index].advance(until_h)
        return self._states(snapshot_h)

    def snapshot(self, at_h: float) -> dict[int, SiteState]:
        return self._states(at_h)

    def finalize(self) -> dict[int, SiteFinal]:
        site_spans: dict[int, list[SpanRecord]] = {i: [] for i in self._sims}
        for record in self._recorder.spans:
            owner = record.attributes.get("index")
            if owner in site_spans:
                site_spans[owner].append(record)
        finals = {}
        for index in sorted(self._sims):
            sim = self._sims[index]
            finals[index] = SiteFinal(
                result=sim.finalize(),
                power=sim.site_power_summary(),
                spans=tuple(site_spans[index]),
            )
        return finals


class FleetSimulator:
    """Co-simulates a fleet's member sites under a geo-aware routing policy.

    Parameters
    ----------
    fleet:
        The fleet to simulate — a :class:`FleetSpec` or a registered fleet
        name.
    router:
        Routing policy override: a spec string in the
        :mod:`~repro.fleet.routing` grammar or a :class:`Router` instance;
        ``None`` uses the fleet's own default.
    policy:
        Per-site scheduling policy (registered name or pipeline spec string),
        applied at every member site.
    horizon_h:
        Simulated horizon in hours (shared by all sites).
    power_cap_fraction:
        Optional GPU power-cap lever handed to the per-site scheduler.
    parallel:
        Execution configuration for the stepping itself.  ``None`` or a
        resolved worker count of 1 steps every site in-process (serial
        lockstep); more than one worker steps the sites on worker processes
        (:mod:`repro.fleet.parallel`) with bit-identical per-site records.
        ``n_workers=0`` means "all cores".  Unlike the sweep layer,
        ``min_tasks_for_processes`` does not apply here — an explicit
        multi-worker request always parallelises, even a one-site fleet
        (which is how the degenerate parity tests exercise the worker path).
    session:
        Substrate cache to build member worlds through; a private
        :class:`ExperimentSession` keyed to the first member is created when
        omitted.  Passing the experiment's session shares weather/trace/grid
        builds across routers and campaign points.
    """

    def __init__(
        self,
        fleet: Union[FleetSpec, str],
        *,
        router: Union[str, Router, None] = None,
        policy: str = "backfill",
        horizon_h: float = 7 * 24.0,
        power_cap_fraction: Optional[float] = None,
        parallel: Optional[ParallelConfig] = None,
        session: Optional[ExperimentSession] = None,
    ) -> None:
        if isinstance(fleet, str):
            from .spec import get_fleet

            fleet = get_fleet(fleet)
        self.fleet = fleet
        self.router: Router = make_router(router if router is not None else fleet.router)
        self.policy = policy
        self.horizon_h = float(horizon_h)
        self.power_cap_fraction = power_cap_fraction
        self.parallel = parallel
        self._session = session if session is not None else ExperimentSession(fleet.members[0])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _site_payloads(self) -> list[SitePayload]:
        """One buildable payload per member, substrates already built.

        The session builds (and caches) each member's weather and grid once;
        payloads ship those arrays to whichever backend steps the site, so
        serial and parallel runs consume bit-identical substrate inputs.
        """
        payloads = []
        for index, spec in enumerate(self.fleet.members):
            scenario = self._session.scenario(spec)
            payloads.append(
                SitePayload(
                    index=index,
                    spec=spec,
                    policy=self.policy,
                    horizon_h=self.horizon_h,
                    power_cap_fraction=self.power_cap_fraction,
                    weather_hourly_c=scenario.weather_hourly_c,
                    grid=scenario.grid,
                )
            )
        return payloads

    def _requested_workers(self) -> int:
        """The resolved stepping worker count (1 = serial lockstep)."""
        if self.parallel is None:
            return 1
        return self.parallel.resolved_workers()

    def shared_job_trace(self, *, n_jobs: int = 300) -> list[Job]:
        """The fleet's shared workload: the first member's generated trace."""
        return self._session.job_trace(
            n_jobs=n_jobs, horizon_h=self.horizon_h, spec=self.fleet.members[0]
        )

    # ------------------------------------------------------------------
    # The lockstep loop
    # ------------------------------------------------------------------
    def run(self, jobs: Optional[Sequence[Job]] = None, *, n_jobs: int = 300) -> FleetResult:
        """Co-simulate the fleet over a job trace and return the fleet result.

        ``jobs`` defaults to the shared workload trace
        (:meth:`shared_job_trace`); explicit traces are dispatched as given.
        Jobs are cloned at dispatch, so the input trace can be reused across
        routers and runs.
        """
        trace = list(jobs) if jobs is not None else self.shared_job_trace(n_jobs=n_jobs)
        # Stable sort: same-instant jobs keep trace order, so a site's event
        # sequence is identical to a monolithic run of its assigned jobs.
        trace.sort(key=lambda job: job.submit_time_h)

        members = self.fleet.members
        member_names = self.fleet.member_names
        workers = self._requested_workers()
        backend: Any
        if workers > 1:
            backend = FleetWorkerPool(self._site_payloads(), workers)
        else:
            backend = _SerialBackend(self._site_payloads())

        mode = "parallel" if workers > 1 else "serial"
        # The fleet loop is always timed — FleetStepTimings is a view over
        # these spans — into the ambient recorder when tracing is on, else a
        # private one that never leaves this call.
        ambient = get_recorder()
        recorder = ambient if ambient.enabled else TraceRecorder()
        run_span = recorder.span(
            "fleet.run",
            fleet=self.fleet.name,
            router=self.router.name,
            policy=self.policy,
            mode=mode,
            n_sites=len(members),
        )
        route_records: list[SpanRecord] = []
        advance_records: list[SpanRecord] = []
        dispatched = [0] * len(members)
        assignments: list[JobAssignment] = []
        self.router.begin_fleet(len(members))

        def make_snapshots(states: Mapping[int, SiteState]) -> list[SiteSnapshot]:
            snapshots = []
            for index, member in enumerate(members):
                queue, running, free, it_power, carbon, price, renewable = states[index]
                snapshots.append(
                    SiteSnapshot(
                        index=index,
                        name=member.name,
                        queue_length=queue,
                        running_jobs=running,
                        free_gpus=free,
                        total_gpus=member.facility.total_gpus,
                        it_power_w=it_power,
                        carbon_intensity_g_per_kwh=carbon,
                        price_per_mwh=price,
                        renewable_share=renewable,
                        dispatched=dispatched[index],
                    )
                )
            return snapshots

        def route_window(
            window: Sequence[Job], states: Mapping[int, SiteState], now_h: float, hour: int
        ) -> dict[int, list[Job]]:
            """Route one window's arrivals; returns per-site submit batches.

            Snapshots are built once per window; the receiving site's snapshot
            is bumped in place after each dispatch so routers see in-flight
            arrivals — identical bookkeeping in serial and parallel mode.
            """
            snapshots = make_snapshots(states)
            batches: dict[int, list[Job]] = {}
            for job in window:
                index = self.router.select(job, snapshots, now_h)
                if not 0 <= index < len(members):
                    raise FleetError(
                        f"router {self.router.name!r} returned site index {index!r} "
                        f"for job {job.job_id!r} (fleet has {len(members)} sites)"
                    )
                dispatched[index] += 1
                chosen = snapshots[index]
                chosen.queue_length += 1
                chosen.dispatched = dispatched[index]
                batches.setdefault(index, []).append(job.clone_pending())
                assignments.append(
                    JobAssignment(
                        job_id=job.job_id,
                        site_index=index,
                        site_name=member_names[index],
                        submit_time_h=job.submit_time_h,
                        dispatch_hour=hour,
                    )
                )
            return batches

        n_hours = int(math.ceil(self.horizon_h))
        cursor = 0
        with run_span, backend:
            states = backend.begin()
            for hour in range(n_hours):
                # Route this window's arrivals first, then advance every site
                # through the window — submits at instant `hour` must be
                # enqueued before that instant's events are drained.
                window = []
                while cursor < len(trace) and trace[cursor].submit_time_h < hour + 1:
                    window.append(trace[cursor])
                    cursor += 1
                if window:
                    with recorder.span(
                        "fleet.route", hour=hour, n_jobs=len(window)
                    ) as route_span:
                        batches = route_window(window, states, float(hour), hour)
                    route_records.append(route_span.record)
                    backend.submit_batch(batches)
                with recorder.span("fleet.advance", hour=hour) as advance_span:
                    states = backend.advance(hour + 1.0, float(hour + 1))
                advance_records.append(advance_span.record)
            if cursor < len(trace):
                # Jobs submitting at/after the horizon still get routed (and
                # recorded as never-started), so every generated job is
                # dispatched exactly once.  Their routing context is clamped
                # to the last in-horizon dispatch window: the grid/weather
                # series end at the horizon boundary, and the hour after the
                # simulation ends carries no signal.
                tail_h = min(self.horizon_h, float(max(n_hours - 1, 0)))
                states = backend.snapshot(tail_h)
                with recorder.span(
                    "fleet.route", hour=n_hours, n_jobs=len(trace) - cursor, tail=True
                ) as route_span:
                    batches = route_window(trace[cursor:], states, tail_h, n_hours)
                route_records.append(route_span.record)
                backend.submit_batch(batches)
            finals = backend.finalize()

        # Merge the per-site stepping spans (recorded worker-side in parallel
        # mode, backend-side in serial mode) into this run's recorder, so an
        # exported trace shows one timeline per site/process.
        site_span_batches = [list(finals[i].spans) for i in range(len(members))]
        for batch in site_span_batches:
            recorder.extend(batch)

        step_timings = FleetStepTimings.from_spans(
            mode=mode,
            n_workers=backend.n_workers,
            n_windows=n_hours,
            run_span=run_span.record,
            route_spans=route_records,
            advance_spans=advance_records,
            site_spans=site_span_batches,
        )
        all_spans = [run_span.record, *route_records, *advance_records]
        for batch in site_span_batches:
            all_spans.extend(batch)
        profile = RunProfile.from_spans(
            all_spans,
            total_s=run_span.record.wall_s,
            metrics=recorder.metrics.snapshot(),
        )
        return FleetResult(
            fleet_name=self.fleet.name,
            router=self.router.name,
            policy=self.policy,
            site_names=member_names,
            site_results=tuple(finals[i].result for i in range(len(members))),
            site_power=tuple(finals[i].power for i in range(len(members))),
            assignments=tuple(assignments),
            step_timings=step_timings,
            profile=profile,
        )
