"""Declarative fleet specification and the named fleet registry.

A :class:`FleetSpec` names N member sites — each an ordinary
:class:`~repro.experiments.spec.ScenarioSpec` — plus the fleet's default
routing policy.  Members are most conveniently addressed with the
``scenario@site`` shorthand, which relocates a registered scenario to a
registered site::

    >>> from repro.fleet import FleetSpec, resolve_member
    >>> member = resolve_member("supercloud-small@phoenix-az")
    >>> member.site.name
    'phoenix-az'

A small registry (:func:`register_fleet` / :func:`get_fleet` /
:func:`fleet_names`) makes fleets addressable by name from the ``fleet``
experiment, campaigns and the CLI, pre-populated with a degenerate single
site fleet (the parity anchor), a two-site fleet, and the three-site fleet
used throughout the examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Union

from ..config import config_replace, config_to_jsonable
from ..errors import ConfigurationError
from ..experiments.spec import GridSpec, ScenarioSpec, get_scenario, get_site
from ..grid.fuel_mix import FuelMixConfig
from ..grid.pricing import LmpPriceConfig
from .routing import make_router

__all__ = [
    "FleetSpec",
    "REGION_GRIDS",
    "resolve_member",
    "register_fleet",
    "get_fleet",
    "fleet_names",
    "list_fleets",
]

MemberLike = Union[str, ScenarioSpec]

#: Regional grid profiles by :attr:`~repro.config.SiteConfig.grid_region`.
#: Relocating a scenario with ``scenario@site`` adopts the target region's
#: fuel-mix and price parameters (unless the scenario already carries explicit
#: grid overrides), so fleet members see genuinely different carbon, price and
#: renewable signals — the substrate geo-aware routers act on.  ``ISO-NE``
#: (the paper's region) is the model default and needs no entry.
REGION_GRIDS: dict[str, GridSpec] = {
    # Arizona: strong midday solar, little wind, nuclear baseload (Palo
    # Verde), mild winters with no gas-constraint premium.
    "AZPS": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.30,
            solar_seasonal_amplitude=0.25,
            wind_mean_share=0.015,
            hydro_share=0.05,
            nuclear_share=0.30,
            winter_demand_bump=0.0,
        ),
        price=LmpPriceConfig(base_price_per_mwh=33.0, winter_gas_premium=1.0),
    ),
    # Iceland: hydro-dominated near-zero-carbon grid, cheap power, winter
    # demand peak (heating), negligible solar.
    "IS": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.01,
            solar_seasonal_amplitude=0.10,
            wind_mean_share=0.05,
            hydro_share=0.62,
            nuclear_share=0.0,
            weather_noise_std=0.10,
            demand_peak_month=1,
        ),
        price=LmpPriceConfig(base_price_per_mwh=24.0, winter_gas_premium=1.05),
    ),
    # Pacific Northwest (BPA): hydro-dominated, cheap, spring-runoff rich;
    # modest wind, winter heating load.
    "BPA": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.03,
            wind_mean_share=0.08,
            hydro_share=0.55,
            nuclear_share=0.04,
            weather_noise_std=0.14,
            winter_demand_bump=0.06,
        ),
        price=LmpPriceConfig(base_price_per_mwh=27.0, winter_gas_premium=1.08),
    ),
    # Texas (ERCOT): strong wind (West Texas nights), growing solar, hot
    # summer demand peak with scarcity pricing, no winter gas premium.
    "ERCO": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.12,
            wind_mean_share=0.22,
            wind_seasonal_amplitude=0.30,
            hydro_share=0.01,
            nuclear_share=0.10,
            demand_peak_month=8,
            demand_seasonal_amplitude=0.24,
            winter_demand_bump=0.02,
        ),
        price=LmpPriceConfig(
            base_price_per_mwh=30.0, demand_elasticity=2.4, winter_gas_premium=1.0
        ),
    ),
    # Colorado (PSCO): front-range wind plus high-altitude solar over a coal/
    # gas base, continental seasons.
    "PSCO": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.14,
            wind_mean_share=0.24,
            hydro_share=0.02,
            nuclear_share=0.0,
        ),
        price=LmpPriceConfig(base_price_per_mwh=32.0, winter_gas_premium=1.06),
    ),
    # US Southeast (Southern Co.): nuclear + gas baseload, some utility
    # solar, hot summers, mild winters.
    "SOCO": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.10,
            wind_mean_share=0.005,
            hydro_share=0.03,
            nuclear_share=0.16,
            demand_peak_month=7,
            winter_demand_bump=0.03,
        ),
        price=LmpPriceConfig(base_price_per_mwh=36.0, winter_gas_premium=1.05),
    ),
    # California (CAISO): very strong midday solar (duck curve), modest wind,
    # expensive evenings, negligible winter gas effect.
    "CISO": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.34,
            solar_seasonal_amplitude=0.30,
            wind_mean_share=0.07,
            hydro_share=0.09,
            nuclear_share=0.08,
            demand_peak_month=8,
        ),
        price=LmpPriceConfig(
            base_price_per_mwh=42.0, renewable_discount=0.65, winter_gas_premium=1.0
        ),
    ),
    # Upper Midwest (MISO North): plains wind over a nuclear/coal base,
    # four-season demand with both summer and winter peaks.
    "MISO": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.04,
            wind_mean_share=0.14,
            wind_seasonal_amplitude=0.35,
            hydro_share=0.01,
            nuclear_share=0.14,
            winter_demand_bump=0.06,
        ),
        price=LmpPriceConfig(base_price_per_mwh=31.0, winter_gas_premium=1.12),
    ),
    # Mid-Atlantic (PJM): nuclear-heavy baseload, little wind/solar inside
    # data-center alley, moderate winter gas exposure.
    "PJM": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.03,
            wind_mean_share=0.035,
            hydro_share=0.02,
            nuclear_share=0.33,
            winter_demand_bump=0.05,
        ),
        price=LmpPriceConfig(base_price_per_mwh=34.0, winter_gas_premium=1.15),
    ),
    # Québec (Hydro-Québec): near-total hydro, very cheap and near-zero
    # carbon, strong winter heating peak.
    "HQ": GridSpec(
        fuel=FuelMixConfig(
            solar_peak_share=0.005,
            wind_mean_share=0.04,
            hydro_share=0.74,
            nuclear_share=0.0,
            weather_noise_std=0.08,
            demand_peak_month=1,
            winter_demand_bump=0.08,
        ),
        price=LmpPriceConfig(base_price_per_mwh=22.0, winter_gas_premium=1.04),
    ),
}


def resolve_member(member: MemberLike) -> ScenarioSpec:
    """Resolve one fleet member reference to a full :class:`ScenarioSpec`.

    Accepts a spec instance, a registered scenario name, or the
    ``scenario@site`` shorthand (registered scenario relocated to a
    registered site, renamed ``"<scenario>@<site>"``).  Relocation also
    adopts the target region's grid profile from :data:`REGION_GRIDS` when
    the scenario carries no explicit grid overrides of its own.
    """
    if isinstance(member, ScenarioSpec):
        return member
    if not isinstance(member, str) or not member.strip():
        raise ConfigurationError(f"fleet member must be a scenario spec or name, got {member!r}")
    name, sep, site_name = member.partition("@")
    scenario = get_scenario(name.strip())
    if not sep:
        return scenario
    site = get_site(site_name.strip())
    changes: dict[str, Any] = {"site": site, "name": f"{scenario.name}@{site.name}"}
    if scenario.grid == GridSpec():
        changes["grid"] = REGION_GRIDS.get(site.grid_region, GridSpec())
    return scenario.replace(**changes)


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to (re)build one multi-site fleet, declaratively.

    Attributes
    ----------
    name:
        Registry name / report label.
    members:
        The member sites, each a full :class:`ScenarioSpec` (see
        :func:`resolve_member` for the ``scenario@site`` shorthand).  The
        first member is also the fleet's shared workload source: the job
        trace is generated from its spec, then routed across all members.
    router:
        Default routing spec (overridable per run/experiment); any string
        the :mod:`~repro.fleet.routing` grammar accepts.
    description:
        One-line human description shown by registry listings.
    """

    name: str
    members: tuple[ScenarioSpec, ...] = ()
    router: str = "round-robin"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fleet name must be non-empty")
        members = tuple(resolve_member(member) for member in self.members)
        if not members:
            raise ConfigurationError(f"fleet {self.name!r} must have at least one member site")
        names = [member.name for member in members]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"fleet {self.name!r} member names must be unique, got {names}"
            )
        object.__setattr__(self, "members", members)
        make_router(self.router)  # fail registration, not first use, on bad specs

    @property
    def n_sites(self) -> int:
        """Number of member sites."""
        return len(self.members)

    @property
    def member_names(self) -> tuple[str, ...]:
        """The member scenario names, in member order."""
        return tuple(member.name for member in self.members)

    def replace(self, **changes: Any) -> "FleetSpec":
        """A copy of the spec with ``changes`` applied (unknown fields raise)."""
        return config_replace(self, **changes)

    def with_member_overrides(self, **changes: Any) -> "FleetSpec":
        """A copy with spec-field ``changes`` applied to *every* member.

        This is how the session's world overrides (``--seed``, ``--months``)
        reach all sites of a fleet uniformly.
        """
        return self.replace(members=tuple(m.replace(**changes) for m in self.members))

    def to_dict(self) -> dict[str, Any]:
        """Deep, JSON-ready dictionary form of the spec."""
        return config_to_jsonable(self)


# ---------------------------------------------------------------------------
# Fleet registry
# ---------------------------------------------------------------------------

_FLEETS: dict[str, FleetSpec] = {}


def register_fleet(spec: FleetSpec, *, overwrite: bool = False) -> FleetSpec:
    """Register ``spec`` under ``spec.name``; returns the spec for chaining."""
    if spec.name in _FLEETS and not overwrite:
        raise ConfigurationError(f"fleet {spec.name!r} is already registered")
    _FLEETS[spec.name] = spec
    return spec


def get_fleet(name: str) -> FleetSpec:
    """Look up a registered fleet by name."""
    try:
        return _FLEETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fleet {name!r}; registered fleets: {sorted(_FLEETS)}"
        ) from None


def fleet_names() -> tuple[str, ...]:
    """Names of all registered fleets, in registration order."""
    return tuple(_FLEETS)


def list_fleets() -> Iterator[FleetSpec]:
    """Iterate over the registered fleet specs, in registration order."""
    return iter(tuple(_FLEETS.values()))


register_fleet(
    FleetSpec(
        name="solo-small",
        members=("supercloud-small",),
        description=(
            "a degenerate one-site fleet (the parity anchor: it must reproduce "
            "the single-site ExperimentSession results bit-identically)"
        ),
    )
)
register_fleet(
    FleetSpec(
        name="duo-climate-small",
        members=("supercloud-small", "supercloud-small@phoenix-az"),
        router="least-queued",
        description="the small facility twinned across a temperate and a desert climate",
    )
)
register_fleet(
    FleetSpec(
        name="tri-site-small",
        members=(
            "supercloud-small",
            "supercloud-small@phoenix-az",
            "supercloud-small@reykjavik-is",
        ),
        description=(
            "three small-facility sites across climates (Holyoke-like, desert, "
            "subarctic) — the standard fleet of the examples and tests"
        ),
    )
)
register_fleet(
    FleetSpec(
        name="quad-climate-medium",
        members=(
            "supercloud-medium",
            "supercloud-medium@phoenix-az",
            "supercloud-medium@columbia-wa",
            "supercloud-medium@dallas-tx",
        ),
        router="least-queued",
        description=(
            "four medium (256-GPU) sites across climates and grid regions — "
            "the parallel-vs-serial speedup fleet of the scale benchmarks"
        ),
    )
)

#: The ten continental member sites (one per grid region) shared by the
#: ``deca-continental-*`` fleets below — the ROADMAP's 10-site study ladder.
_CONTINENTAL_SITES = (
    "",  # the home site (Holyoke, ISO-NE)
    "@phoenix-az",
    "@columbia-wa",
    "@dallas-tx",
    "@denver-co",
    "@atlanta-ga",
    "@sanjose-ca",
    "@chicago-il",
    "@ashburn-va",
    "@quebec-qc",
)
register_fleet(
    FleetSpec(
        name="deca-continental-small",
        members=tuple(f"supercloud-small{site}" for site in _CONTINENTAL_SITES),
        router="least-queued",
        description=(
            "ten small sites spanning ten North-American grid regions "
            "(hydro, wind, solar and nuclear dominated) — the continental "
            "routing-study fleet; pair with --workers N"
        ),
    )
)
register_fleet(
    FleetSpec(
        name="deca-continental-medium",
        members=tuple(f"supercloud-medium{site}" for site in _CONTINENTAL_SITES),
        router="least-queued",
        description=(
            "the continental ten-site fleet at the medium (256-GPU) tier — "
            "sized so parallel stepping pays; pair with --workers N"
        ),
    )
)
register_fleet(
    FleetSpec(
        name="duo-xlarge",
        members=("supercloud-xlarge", "supercloud-xlarge@quebec-qc"),
        router="carbon-min+free-gpus(min=512)",
        description=(
            "the 8192-GPU build-out twinned with a hydro-powered Québec "
            "sibling — the top rung of the fleet scale ladder"
        ),
    )
)
