"""The aggregated outcome of one fleet co-simulation.

A :class:`FleetResult` keeps every member site's full
:class:`~repro.cluster.simulator.SimulationResult` (and its
:class:`~repro.cluster.simulator.SitePowerSummary`) plus the job→site
assignment table, and derives fleet-level totals **as sums over the member
results** — so "fleet == Σ sites" holds bit-for-bit by construction, and the
conservation tests verify it independently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..cluster.simulator import SimulationResult, SitePowerSummary
from ..config import config_to_jsonable
from ..errors import FleetError
from ..obs.profile import RunProfile

__all__ = ["JobAssignment", "FleetStepTimings", "FleetResult"]


@dataclass(frozen=True, slots=True)
class JobAssignment:
    """One routing decision: which site received which job, and when."""

    job_id: str
    site_index: int
    site_name: str
    submit_time_h: float
    dispatch_hour: int


@dataclass(frozen=True, slots=True)
class FleetStepTimings:
    """Wall-clock breakdown of one fleet run's lockstep loop.

    Recorded by :meth:`~repro.fleet.simulator.FleetSimulator.run` in both
    stepping modes, so serial-vs-parallel speedup is observable from the
    result object itself, not just an external benchmark harness.

    Attributes
    ----------
    mode / n_workers:
        ``"serial"`` (in-process stepping) or ``"parallel"`` (worker
        processes), and the number of stepping workers actually used.
    n_windows:
        Number of hourly dispatch windows in the run.
    total_s:
        Wall time of the whole run (build + loop + finalize).
    route_s:
        Coordinator time spent routing arrivals (snapshot build + router
        selection + assignment bookkeeping), summed over windows.
    advance_s:
        Coordinator wall time spent advancing the sites: the serial per-site
        advance loop, or — in parallel mode — the time waiting on the
        workers' ``advance`` replies.
    site_advance_s:
        Per-site cumulative ``advance`` wall seconds, in member order
        (measured inside the worker for parallel runs).  Their max is the
        parallel critical path; their sum is the serial cost.
    """

    mode: str
    n_workers: int
    n_windows: int
    total_s: float
    route_s: float
    advance_s: float
    site_advance_s: tuple[float, ...]

    @classmethod
    def from_spans(
        cls,
        *,
        mode: str,
        n_workers: int,
        n_windows: int,
        run_span: Any,
        route_spans: Sequence[Any],
        advance_spans: Sequence[Any],
        site_spans: Sequence[Sequence[Any]],
    ) -> "FleetStepTimings":
        """Build the timing breakdown as a view over recorded spans.

        ``run_span`` is the finished ``fleet.run``
        :class:`~repro.obs.recorder.SpanRecord`; ``route_spans`` /
        ``advance_spans`` are the coordinator's per-window ``fleet.route`` /
        ``fleet.advance`` records; ``site_spans`` holds each member's
        ``fleet.site_advance`` records, in member order.  This is the only
        constructor :meth:`~repro.fleet.simulator.FleetSimulator.run` uses —
        the dataclass fields (and :meth:`to_dict`) are unchanged, the wall
        times just come from the trace instead of inline clock arithmetic.
        """
        return cls(
            mode=mode,
            n_workers=n_workers,
            n_windows=n_windows,
            total_s=run_span.wall_s,
            route_s=float(sum(s.wall_s for s in route_spans)),
            advance_s=float(sum(s.wall_s for s in advance_spans)),
            site_advance_s=tuple(
                float(sum(s.wall_s for s in spans if s.name == "fleet.site_advance"))
                for spans in site_spans
            ),
        )

    @property
    def max_site_advance_s(self) -> float:
        """The slowest site's cumulative advance time (parallel critical path)."""
        return max(self.site_advance_s) if self.site_advance_s else 0.0

    @property
    def sum_site_advance_s(self) -> float:
        """All sites' advance time summed (what a serial loop must pay)."""
        return float(sum(self.site_advance_s))

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form of the timing breakdown."""
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "n_windows": self.n_windows,
            "total_s": self.total_s,
            "route_s": self.route_s,
            "advance_s": self.advance_s,
            "site_advance_s": list(self.site_advance_s),
        }


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet-comparison experiment needs from one co-simulation.

    Attributes
    ----------
    fleet_name / router / policy:
        Identity of the run: the fleet, the routing spec actually used
        (canonical spelling) and the per-site scheduling policy.
    site_names:
        Member site labels, in member order.
    site_results:
        One full single-site :class:`SimulationResult` per member.
    site_power:
        The members' :class:`SitePowerSummary` objects (the one per-site
        power-accounting API; fleet aggregation reads these).
    assignments:
        The job→site table, in dispatch order.
    step_timings:
        Wall-clock breakdown of the lockstep loop (:class:`FleetStepTimings`);
        ``None`` only for results constructed outside the simulator.
    profile:
        The run's :class:`~repro.obs.profile.RunProfile` — per-span-name
        aggregates over the fleet trace; ``None`` only for results
        constructed outside the simulator.
    """

    fleet_name: str
    router: str
    policy: str
    site_names: tuple[str, ...]
    site_results: tuple[SimulationResult, ...]
    site_power: tuple[SitePowerSummary, ...]
    assignments: tuple[JobAssignment, ...]
    step_timings: Optional[FleetStepTimings] = None
    profile: Optional[RunProfile] = None

    def __post_init__(self) -> None:
        if len(self.site_names) != len(self.site_results) or len(self.site_names) != len(
            self.site_power
        ):
            raise FleetError("site_names, site_results and site_power must align")
        if not self.site_names:
            raise FleetError("a fleet result needs at least one site")

    # ------------------------------------------------------------------
    # Fleet totals (sums over the member sites, bit-for-bit)
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of member sites."""
        return len(self.site_names)

    @property
    def n_jobs(self) -> int:
        """Number of jobs dispatched across the fleet."""
        return len(self.assignments)

    @property
    def it_energy_kwh(self) -> float:
        """Fleet IT energy: the sum of the member sites' totals."""
        return sum(power.it_energy_kwh for power in self.site_power)

    @property
    def facility_energy_kwh(self) -> float:
        """Fleet facility energy: the sum of the member sites' totals."""
        return sum(power.facility_energy_kwh for power in self.site_power)

    @property
    def cooling_energy_kwh(self) -> float:
        """Fleet cooling energy: the sum of the member sites' totals."""
        return sum(power.cooling_energy_kwh for power in self.site_power)

    @property
    def total_emissions_kg(self) -> float:
        """Fleet emissions: the sum of the member sites' totals."""
        return sum(result.total_emissions_kg for result in self.site_results)

    @property
    def total_cost_usd(self) -> float:
        """Fleet electricity cost: the sum of the member sites' totals."""
        return sum(result.total_cost_usd for result in self.site_results)

    @property
    def completed_jobs(self) -> int:
        """Jobs completed within the horizon, fleet-wide."""
        return sum(result.completed_jobs for result in self.site_results)

    @property
    def delivered_gpu_hours(self) -> float:
        """Baseline GPU-hours of completed work, fleet-wide."""
        return sum(result.delivered_gpu_hours for result in self.site_results)

    @property
    def peak_fleet_power_w(self) -> float:
        """Peak of the fleet-wide (summed, tick-aligned) facility power series."""
        series = self.fleet_facility_power_w
        if series.size == 0:
            return 0.0
        return float(np.max(series))

    @property
    def fleet_facility_power_w(self) -> np.ndarray:
        """The tick-aligned sum of the member sites' facility power series."""
        return np.sum([power.facility_power_w for power in self.site_power], axis=0)

    # ------------------------------------------------------------------
    # Service quality (over the union of all sites' job records)
    # ------------------------------------------------------------------
    def _waits(self) -> list[float]:
        return [
            record.wait_time_h
            for result in self.site_results
            for record in result.job_records
            if record.wait_time_h is not None
        ]

    @property
    def mean_wait_h(self) -> float:
        """Mean queue wait among started jobs, fleet-wide (NaN when none)."""
        waits = self._waits()
        return float(np.mean(waits)) if waits else float("nan")

    @property
    def p95_wait_h(self) -> float:
        """95th-percentile queue wait among started jobs, fleet-wide."""
        waits = self._waits()
        return float(np.percentile(waits, 95)) if waits else float("nan")

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying jobs fleet-wide that missed."""
        deadline_jobs = [
            record
            for result in self.site_results
            for record in result.job_records
            if record.had_deadline
        ]
        if not deadline_jobs:
            return 0.0
        missed = sum(1 for r in deadline_jobs if r.missed_deadline or not r.completed)
        return missed / len(deadline_jobs)

    @property
    def energy_per_gpu_hour_kwh(self) -> float:
        """Fleet facility energy per delivered baseline GPU-hour."""
        delivered = self.delivered_gpu_hours
        if delivered == 0:
            return float("nan")
        return self.facility_energy_kwh / delivered

    # ------------------------------------------------------------------
    # Assignment accounting
    # ------------------------------------------------------------------
    def dispatch_counts(self) -> dict[str, int]:
        """Jobs routed to each site, keyed by site name (member order)."""
        counts = {name: 0 for name in self.site_names}
        for assignment in self.assignments:
            counts[assignment.site_name] += 1
        return counts

    def assignment_for(self, job_id: str) -> JobAssignment:
        """The routing decision for one job id."""
        for assignment in self.assignments:
            if assignment.job_id == job_id:
                return assignment
        raise FleetError(f"no assignment recorded for job {job_id!r}")

    # ------------------------------------------------------------------
    # Flat views
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """A flat dictionary of the fleet-level headline metrics."""
        return {
            "fleet": self.fleet_name,
            "router": self.router,
            "policy": self.policy,
            "n_sites": self.n_sites,
            "n_jobs": self.n_jobs,
            "it_energy_kwh": self.it_energy_kwh,
            "facility_energy_kwh": self.facility_energy_kwh,
            "cooling_energy_kwh": self.cooling_energy_kwh,
            "emissions_kg": self.total_emissions_kg,
            "cost_usd": self.total_cost_usd,
            "peak_fleet_power_kw": self.peak_fleet_power_w / 1e3,
            "completed_jobs": float(self.completed_jobs),
            "delivered_gpu_hours": self.delivered_gpu_hours,
            "mean_wait_h": self.mean_wait_h,
            "p95_wait_h": self.p95_wait_h,
            "deadline_miss_rate": self.deadline_miss_rate,
            "energy_per_gpu_hour_kwh": self.energy_per_gpu_hour_kwh,
        }

    def site_rows(self) -> list[dict[str, Any]]:
        """One flat record per member site (summary + dispatch count)."""
        counts = self.dispatch_counts()
        rows = []
        for name, result, power in zip(self.site_names, self.site_results, self.site_power):
            row = {
                "site": name,
                "router": self.router,
                "jobs_dispatched": counts[name],
                "it_energy_kwh": power.it_energy_kwh,
                "facility_energy_kwh": power.facility_energy_kwh,
                "cooling_energy_kwh": power.cooling_energy_kwh,
                "emissions_kg": result.total_emissions_kg,
                "cost_usd": result.total_cost_usd,
                "completed_jobs": float(result.completed_jobs),
                "delivered_gpu_hours": result.delivered_gpu_hours,
                "mean_wait_h": result.mean_wait_h,
            }
            rows.append(row)
        return rows

    def to_dict(self, *, include_assignments: bool = True) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form of the fleet outcome."""
        payload: dict[str, Any] = {
            "fleet": self.fleet_name,
            "router": self.router,
            "policy": self.policy,
            "summary": config_to_jsonable(self.summary()),
            "sites": config_to_jsonable(self.site_rows()),
            "dispatch_counts": self.dispatch_counts(),
        }
        if self.step_timings is not None:
            payload["step_timings"] = self.step_timings.to_dict()
        if self.profile is not None:
            payload["profile"] = self.profile.to_dict()
        if include_assignments:
            payload["assignments"] = [
                {
                    "job_id": a.job_id,
                    "site": a.site_name,
                    "site_index": a.site_index,
                    "submit_time_h": a.submit_time_h,
                    "dispatch_hour": a.dispatch_hour,
                }
                for a in self.assignments
            ]
        return payload

    def to_json(self, *, indent: Optional[int] = None, include_assignments: bool = True) -> str:
        """Serialize :meth:`to_dict` as strict JSON text."""
        return json.dumps(
            config_to_jsonable(self.to_dict(include_assignments=include_assignments)),
            indent=indent,
            allow_nan=False,
        )
