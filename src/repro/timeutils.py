"""Simulation-calendar helpers.

The paper's figures are monthly aggregates over the 2020-2021 window, while
the simulation substrates operate in continuous time (seconds or hours).
This module provides a tiny calendar model that maps between the two without
pulling in timezone-aware datetimes: simulated time starts at hour 0 of
January 1st of ``start_year`` and advances in hours.  Months use their true
lengths (with leap years), so 24 simulated months spanning 2020-2021 line up
with the paper's x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .errors import DataError

__all__ = [
    "MONTH_NAMES",
    "MONTH_ABBREVIATIONS",
    "is_leap_year",
    "days_in_month",
    "days_in_year",
    "hours_in_month",
    "hours_in_year",
    "MonthIndex",
    "SimulationCalendar",
]

MONTH_NAMES: tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

MONTH_ABBREVIATIONS: tuple[str, ...] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def is_leap_year(year: int) -> bool:
    """True for Gregorian leap years (2020 is, 2021 is not)."""
    return (year % 4 == 0 and year % 100 != 0) or year % 400 == 0


def days_in_month(year: int, month: int) -> int:
    """Number of days in ``month`` (1-12) of ``year``."""
    if not 1 <= month <= 12:
        raise DataError(f"month must be in 1..12, got {month!r}")
    if month == 2 and is_leap_year(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def days_in_year(year: int) -> int:
    """Number of days in ``year``."""
    return 366 if is_leap_year(year) else 365


def hours_in_month(year: int, month: int) -> int:
    """Number of hours in ``month`` of ``year``."""
    return days_in_month(year, month) * 24


def hours_in_year(year: int) -> int:
    """Number of hours in ``year``."""
    return days_in_year(year) * 24


@dataclass(frozen=True)
class MonthIndex:
    """A (year, month) pair identifying one calendar month in the simulation.

    ``month`` is 1-based (January == 1) to match the paper's figures.
    """

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise DataError(f"month must be in 1..12, got {self.month!r}")

    @property
    def label(self) -> str:
        """Short label such as ``"Jul 2020"`` for reports and figure axes."""
        return f"{MONTH_ABBREVIATIONS[self.month - 1]} {self.year}"

    @property
    def month_of_year(self) -> int:
        """The 1-12 month number, independent of year (x-axis of Figs. 2-4)."""
        return self.month

    def next(self) -> "MonthIndex":
        """The month immediately following this one."""
        if self.month == 12:
            return MonthIndex(self.year + 1, 1)
        return MonthIndex(self.year, self.month + 1)


class SimulationCalendar:
    """Maps simulated hours to calendar months and back.

    Parameters
    ----------
    start_year:
        Calendar year at which simulated hour 0 falls (January 1st, 00:00).
    n_months:
        Number of months covered by the simulation horizon.
    """

    def __init__(self, start_year: int = 2020, n_months: int = 24) -> None:
        if n_months <= 0:
            raise DataError(f"n_months must be positive, got {n_months!r}")
        self.start_year = int(start_year)
        self.n_months = int(n_months)
        self._months: list[MonthIndex] = []
        self._month_start_hours: list[int] = []
        hour = 0
        current = MonthIndex(self.start_year, 1)
        for _ in range(self.n_months):
            self._months.append(current)
            self._month_start_hours.append(hour)
            hour += hours_in_month(current.year, current.month)
            current = current.next()
        self._total_hours = hour
        self._start_hours_array = np.asarray(self._month_start_hours, dtype=float)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def total_hours(self) -> int:
        """Total number of simulated hours across the horizon."""
        return self._total_hours

    @property
    def months(self) -> Sequence[MonthIndex]:
        """The months covered, in order."""
        return tuple(self._months)

    def __len__(self) -> int:
        return self.n_months

    def __iter__(self) -> Iterator[MonthIndex]:
        return iter(self._months)

    # ------------------------------------------------------------------
    # Hour <-> month mapping
    # ------------------------------------------------------------------
    def month_start_hour(self, index: int) -> int:
        """Simulated hour at which month ``index`` (0-based) begins."""
        return self._month_start_hours[self._check_index(index)]

    def month_length_hours(self, index: int) -> int:
        """Number of hours in month ``index`` (0-based)."""
        month = self._months[self._check_index(index)]
        return hours_in_month(month.year, month.month)

    def month_of_hour(self, hour: float) -> int:
        """0-based month index containing simulated ``hour``.

        Hours beyond the horizon raise :class:`DataError`; fractional hours
        are allowed.
        """
        if hour < 0 or hour >= self._total_hours:
            raise DataError(
                f"hour {hour!r} outside the simulated horizon [0, {self._total_hours})"
            )
        return int(np.searchsorted(self._start_hours_array, hour, side="right") - 1)

    def month_indices_for_hours(self, hours: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`month_of_hour` for an array of hour values."""
        arr = np.asarray(hours, dtype=float)
        if arr.size and (arr.min() < 0 or arr.max() >= self._total_hours):
            raise DataError("hours outside the simulated horizon")
        return np.searchsorted(self._start_hours_array, arr, side="right") - 1

    def hour_grid(self, step_hours: float = 1.0) -> np.ndarray:
        """Uniform grid of simulated hours covering the horizon (end exclusive)."""
        if step_hours <= 0:
            raise DataError(f"step_hours must be positive, got {step_hours!r}")
        return np.arange(0.0, float(self._total_hours), float(step_hours))

    def hour_of_year(self, hour: float) -> float:
        """Hour within its calendar year (0-based), used for seasonal models."""
        index = self.month_of_hour(hour)
        month = self._months[index]
        # Hours from Jan 1 of month.year to the start of this month.
        offset = sum(
            hours_in_month(month.year, m) for m in range(1, month.month)
        )
        return offset + (hour - self._month_start_hours[index])

    def day_of_year(self, hour: float) -> float:
        """Fractional day of year (0-based) for seasonal temperature models."""
        return self.hour_of_year(hour) / 24.0

    def hour_of_day(self, hour: float) -> float:
        """Hour within the simulated day in [0, 24)."""
        return float(hour) % 24.0

    def month_of_year_array(self) -> np.ndarray:
        """1-12 month-of-year number for every month in the horizon."""
        return np.asarray([m.month for m in self._months], dtype=int)

    def year_array(self) -> np.ndarray:
        """Calendar year for every month in the horizon."""
        return np.asarray([m.year for m in self._months], dtype=int)

    def labels(self) -> list[str]:
        """Human-readable labels (``"Jan 2020"``, ...) for every month."""
        return [m.label for m in self._months]

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def monthly_mean(self, hourly_values: np.ndarray) -> np.ndarray:
        """Average an hourly series into per-month means.

        ``hourly_values`` must have exactly :attr:`total_hours` entries
        (one per simulated hour).
        """
        values = np.asarray(hourly_values, dtype=float)
        if values.shape != (self._total_hours,):
            raise DataError(
                f"expected {self._total_hours} hourly values, got shape {values.shape}"
            )
        out = np.empty(self.n_months, dtype=float)
        for i in range(self.n_months):
            start = self._month_start_hours[i]
            stop = start + self.month_length_hours(i)
            out[i] = values[start:stop].mean()
        return out

    def monthly_sum(self, hourly_values: np.ndarray) -> np.ndarray:
        """Sum an hourly series into per-month totals."""
        values = np.asarray(hourly_values, dtype=float)
        if values.shape != (self._total_hours,):
            raise DataError(
                f"expected {self._total_hours} hourly values, got shape {values.shape}"
            )
        out = np.empty(self.n_months, dtype=float)
        for i in range(self.n_months):
            start = self._month_start_hours[i]
            stop = start + self.month_length_hours(i)
            out[i] = values[start:stop].sum()
        return out

    def _check_index(self, index: int) -> int:
        if not 0 <= index < self.n_months:
            raise DataError(
                f"month index {index!r} outside [0, {self.n_months})"
            )
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationCalendar(start_year={self.start_year}, n_months={self.n_months}, "
            f"total_hours={self._total_hours})"
        )
