"""The :class:`GreenDatacenterModel` facade.

A convenience object that wires the substrates together the way the paper's
narrative does: one facility, one site, one grid, one conference-driven
demand stream — and exposes the framework's questions as methods:

* ``monthly_figures()`` — the Fig. 2-5 series for this facility;
* ``opportunity_cost()`` — the Section II.A head-room;
* ``load_shifting()`` — what carbon/price-aware shifting would capture;
* ``deadline_options()`` — the Section III restructuring comparison;
* ``stress_tests()`` — the Section II.B battery;
* ``optimize_operations()`` — the Eq. 1 search on a job-level trace.

Examples and the CLI use this facade; benchmarks call the underlying pieces
directly so each experiment stays independently reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..climate.weather import WeatherModel
from ..cluster.cooling import CoolingModel
from ..cluster.simulator import SimulationConfig
from ..config import ExperimentConfig, FacilityConfig, SiteConfig
from ..grid.iso_ne import IsoNeLikeGrid
from ..scheduler.job import Job
from ..timeutils import SimulationCalendar
from ..workloads.demand import DeadlineDemandModel
from ..workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator
from ..analysis.figures import (
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    SuperCloudScenario,
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
)
from .objective import ActivityConstraint, ActivityKind, EnergyObjective, ObjectiveKind
from .optimizer import DatacenterOptimizer, OptimizationOutcome
from .levers import OperatingPoint
from .opportunity_cost import OpportunityCostReport, opportunity_cost_of_profile
from .policies import (
    DeadlinePolicyOutcome,
    LoadShiftingPolicy,
    ShiftingOutcome,
    evaluate_deadline_restructuring,
    evaluate_load_shifting,
)
from .stress import StressTestHarness, StressTestResult

__all__ = ["GreenDatacenterModel"]


@dataclass
class GreenDatacenterModel:
    """One facility, one site, one grid — the paper's world in an object.

    Attributes
    ----------
    experiment:
        Seed and horizon configuration.
    facility / site:
        Hardware and location descriptions.
    """

    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    facility: FacilityConfig = field(default_factory=FacilityConfig)
    site: SiteConfig = field(default_factory=SiteConfig)

    def __post_init__(self) -> None:
        self.calendar = SimulationCalendar(
            start_year=self.experiment.start_year, n_months=self.experiment.n_months
        )
        self._scenario: Optional[SuperCloudScenario] = None

    # ------------------------------------------------------------------
    # Shared scenario
    # ------------------------------------------------------------------
    @property
    def scenario(self) -> SuperCloudScenario:
        """The shared SuperCloud-like scenario (built lazily, then cached)."""
        if self._scenario is None:
            self._scenario = SuperCloudScenario.build(
                seed=self.experiment.seed,
                start_year=self.experiment.start_year,
                n_months=self.experiment.n_months,
            )
        return self._scenario

    @property
    def grid(self) -> IsoNeLikeGrid:
        """The grid model behind the scenario."""
        return self.scenario.grid

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------
    def monthly_figures(self) -> Mapping[str, object]:
        """The Fig. 2-5 results for this facility's scenario."""
        scenario = self.scenario
        results: dict[str, object] = {
            "fig2": fig2_power_vs_green_share(scenario),
            "fig3": fig3_price_vs_green_share(scenario),
            "fig4": fig4_power_vs_temperature(scenario),
        }
        if self.calendar.n_months >= 16:
            results["fig5"] = fig5_energy_vs_deadlines(scenario)
        return results

    # ------------------------------------------------------------------
    # Section II.A — purchasing / shifting
    # ------------------------------------------------------------------
    def hourly_facility_load_kwh(self) -> np.ndarray:
        """The facility's hourly energy profile in kWh (1-hour steps)."""
        return self.scenario.load_trace.facility_power_w / 1e3

    def opportunity_cost(
        self, *, deferrable_fraction: float = 0.3, window_h: int = 24
    ) -> OpportunityCostReport:
        """Section II.A head-room: avoidable emissions and spend."""
        return opportunity_cost_of_profile(
            self.hourly_facility_load_kwh(),
            self.grid,
            deferrable_fraction=deferrable_fraction,
            window_h=window_h,
        )

    def load_shifting(self, policy: LoadShiftingPolicy | None = None) -> ShiftingOutcome:
        """Evaluate a carbon/price-aware load-shifting policy on this facility."""
        return evaluate_load_shifting(
            facility_load_kwh=self.hourly_facility_load_kwh(),
            grid=self.grid,
            policy=policy or LoadShiftingPolicy(),
        )

    # ------------------------------------------------------------------
    # Section III — deadlines
    # ------------------------------------------------------------------
    def deadline_options(
        self, options: Sequence[str] = ("actual", "uniform", "winter", "rolling")
    ) -> dict[str, DeadlinePolicyOutcome]:
        """Compare the deadline-restructuring options on this facility."""
        return evaluate_deadline_restructuring(
            options=options,
            seed=self.experiment.seed,
            start_year=self.experiment.start_year,
            n_months=self.experiment.n_months,
        )

    # ------------------------------------------------------------------
    # Section II.B — stress tests
    # ------------------------------------------------------------------
    def stress_tests(self) -> dict[str, StressTestResult]:
        """Run the standard stress battery on this facility."""
        harness = StressTestHarness(
            start_year=self.experiment.start_year,
            n_months=self.experiment.n_months,
            seed=self.experiment.seed,
            trace_config=SuperCloudTraceConfig(facility=self.facility),
        )
        return harness.run_battery()

    # ------------------------------------------------------------------
    # Eq. 1 — operations optimization on a job trace
    # ------------------------------------------------------------------
    def generate_job_trace(self, *, n_jobs: int = 300, horizon_h: float = 7 * 24.0) -> list[Job]:
        """A SuperCloud-like job-level trace for scheduler experiments."""
        generator = SuperCloudTraceGenerator(
            SuperCloudTraceConfig(facility=self.facility),
            demand_model=DeadlineDemandModel(seed=self.experiment.seed),
            seed=self.experiment.seed,
        )
        return generator.generate_jobs(n_jobs=n_jobs, horizon_h=horizon_h)

    def optimize_operations(
        self,
        jobs: Sequence[Job] | None = None,
        *,
        horizon_h: float = 7 * 24.0,
        activity_floor_fraction: float = 0.9,
        points: Sequence[OperatingPoint] | None = None,
        objective_kind: ObjectiveKind = ObjectiveKind.FACILITY_ENERGY_KWH,
    ) -> OptimizationOutcome:
        """Run the Eq. 1 search on a job trace.

        ``activity_floor_fraction`` sets α as a fraction of the baseline
        (uncapped backfill) delivered GPU-hours, which is how an operator
        would phrase "no more than a 10% hit to throughput".
        """
        trace = list(jobs) if jobs is not None else self.generate_job_trace(horizon_h=horizon_h)
        weather = WeatherModel(seed=self.experiment.seed).hourly_temperature_c(self.calendar)
        simulation_config = SimulationConfig(horizon_h=horizon_h, tick_h=1.0)

        # Baseline run to set alpha.
        baseline_optimizer = DatacenterOptimizer(
            self.facility,
            EnergyObjective(kind=objective_kind),
            ActivityConstraint(kind=ActivityKind.DELIVERED_GPU_HOURS, alpha=0.0),
            simulation_config=simulation_config,
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=self.grid,
        )
        baseline_point = OperatingPoint(policy_name="backfill")
        baseline_result = baseline_optimizer.evaluate_point(baseline_point, trace)
        alpha = activity_floor_fraction * baseline_result.result.delivered_gpu_hours

        optimizer = DatacenterOptimizer(
            self.facility,
            EnergyObjective(kind=objective_kind),
            ActivityConstraint(kind=ActivityKind.DELIVERED_GPU_HOURS, alpha=alpha),
            simulation_config=simulation_config,
            weather_hourly_c=weather,
            cooling=CoolingModel(),
            grid=self.grid,
            baseline_point=baseline_point,
        )
        return optimizer.optimize(trace, points=points)
