"""The :class:`GreenDatacenterModel` facade (back-compat shim).

Historically this object wired the substrates together itself; it is now a
thin shim over :class:`repro.experiments.ExperimentSession`, which owns the
scenario cache and the experiment registry.  The methods keep their original
signatures and (for identical configuration/seed) their original results, so
existing examples and notebooks continue to work:

* ``monthly_figures()`` — the Fig. 2-5 series for this facility;
* ``opportunity_cost()`` — the Section II.A head-room;
* ``load_shifting()`` — what carbon/price-aware shifting would capture;
* ``deadline_options()`` — the Section III restructuring comparison;
* ``stress_tests()`` — the Section II.B battery;
* ``optimize_operations()`` — the Eq. 1 search on a job-level trace.

New code should use :class:`~repro.experiments.ExperimentSession` directly —
it exposes the same analyses as registered experiments returning structured
:class:`~repro.experiments.ExperimentResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..config import ExperimentConfig, FacilityConfig, SiteConfig
from ..grid.iso_ne import IsoNeLikeGrid
from ..scheduler.job import Job
from ..timeutils import SimulationCalendar
from ..analysis.figures import (
    SuperCloudScenario,
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
)
from .objective import ObjectiveKind
from .optimizer import OptimizationOutcome
from .levers import OperatingPoint
from .opportunity_cost import OpportunityCostReport, opportunity_cost_of_profile
from .policies import (
    DeadlinePolicyOutcome,
    LoadShiftingPolicy,
    ShiftingOutcome,
    evaluate_load_shifting,
)
from .stress import StressTestResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.session import ExperimentSession

__all__ = ["GreenDatacenterModel"]


@dataclass
class GreenDatacenterModel:
    """One facility, one site, one grid — the paper's world in an object.

    Attributes
    ----------
    experiment:
        Seed and horizon configuration.
    facility / site:
        Hardware and location descriptions.
    """

    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    facility: FacilityConfig = field(default_factory=FacilityConfig)
    site: SiteConfig = field(default_factory=SiteConfig)

    def __post_init__(self) -> None:
        # Imported lazily: repro.core.__init__ imports this module while the
        # experiments package (which imports repro.core submodules) may still
        # be mid-import.
        from ..experiments.session import ExperimentSession
        from ..experiments.spec import ScenarioSpec

        spec = ScenarioSpec(
            name=self.experiment.label or "model",
            seed=self.experiment.seed,
            start_year=self.experiment.start_year,
            n_months=self.experiment.n_months,
            site=self.site,
            facility=self.facility,
        )
        self.session: "ExperimentSession" = ExperimentSession(spec)
        self.calendar = SimulationCalendar(
            start_year=self.experiment.start_year, n_months=self.experiment.n_months
        )

    # ------------------------------------------------------------------
    # Shared scenario
    # ------------------------------------------------------------------
    @property
    def scenario(self) -> SuperCloudScenario:
        """The shared SuperCloud-like scenario (built lazily, then cached)."""
        return self.session.scenario()

    @property
    def grid(self) -> IsoNeLikeGrid:
        """The grid model behind the scenario."""
        return self.session.grid

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------
    def monthly_figures(self) -> Mapping[str, object]:
        """The Fig. 2-5 results for this facility's scenario."""
        scenario = self.scenario
        results: dict[str, object] = {
            "fig2": fig2_power_vs_green_share(scenario),
            "fig3": fig3_price_vs_green_share(scenario),
            "fig4": fig4_power_vs_temperature(scenario),
        }
        if self.calendar.n_months >= 16:
            results["fig5"] = fig5_energy_vs_deadlines(scenario)
        return results

    # ------------------------------------------------------------------
    # Section II.A — purchasing / shifting
    # ------------------------------------------------------------------
    def hourly_facility_load_kwh(self) -> np.ndarray:
        """The facility's hourly energy profile in kWh (1-hour steps)."""
        return self.session.hourly_facility_load_kwh()

    def opportunity_cost(
        self, *, deferrable_fraction: float = 0.3, window_h: int = 24
    ) -> OpportunityCostReport:
        """Section II.A head-room: avoidable emissions and spend."""
        return opportunity_cost_of_profile(
            self.hourly_facility_load_kwh(),
            self.grid,
            deferrable_fraction=deferrable_fraction,
            window_h=window_h,
        )

    def load_shifting(self, policy: LoadShiftingPolicy | None = None) -> ShiftingOutcome:
        """Evaluate a carbon/price-aware load-shifting policy on this facility."""
        return evaluate_load_shifting(
            facility_load_kwh=self.hourly_facility_load_kwh(),
            grid=self.grid,
            policy=policy or LoadShiftingPolicy(),
        )

    # ------------------------------------------------------------------
    # Section III — deadlines
    # ------------------------------------------------------------------
    def deadline_options(
        self, options: Sequence[str] = ("actual", "uniform", "winter", "rolling")
    ) -> dict[str, DeadlinePolicyOutcome]:
        """Compare the deadline-restructuring options on this facility."""
        from ..workloads.supercloud import SuperCloudTraceConfig
        from .policies import evaluate_deadline_restructuring

        scenario = self.scenario
        return evaluate_deadline_restructuring(
            options=options,
            seed=self.experiment.seed,
            start_year=self.experiment.start_year,
            n_months=self.experiment.n_months,
            demand_model=scenario.demand_model,
            weather_hourly_c=scenario.weather_hourly_c,
            grid=scenario.grid,
            trace_config=SuperCloudTraceConfig(facility=self.facility),
        )

    # ------------------------------------------------------------------
    # Section II.B — stress tests
    # ------------------------------------------------------------------
    def stress_tests(self) -> dict[str, StressTestResult]:
        """Run the standard stress battery on this facility."""
        from ..workloads.supercloud import SuperCloudTraceConfig
        from .stress import StressTestHarness

        scenario = self.scenario
        harness = StressTestHarness(
            start_year=self.experiment.start_year,
            n_months=self.experiment.n_months,
            seed=self.experiment.seed,
            trace_config=SuperCloudTraceConfig(facility=self.facility),
            baseline_weather_c=scenario.weather_hourly_c,
            grid=scenario.grid,
        )
        return harness.run_battery()

    # ------------------------------------------------------------------
    # Eq. 1 — operations optimization on a job trace
    # ------------------------------------------------------------------
    def generate_job_trace(self, *, n_jobs: int = 300, horizon_h: float = 7 * 24.0) -> list[Job]:
        """A SuperCloud-like job-level trace for scheduler experiments."""
        return self.session.job_trace(n_jobs=n_jobs, horizon_h=horizon_h)

    def optimize_operations(
        self,
        jobs: Sequence[Job] | None = None,
        *,
        horizon_h: float = 7 * 24.0,
        activity_floor_fraction: float = 0.9,
        points: Sequence[OperatingPoint] | None = None,
        objective_kind: ObjectiveKind = ObjectiveKind.FACILITY_ENERGY_KWH,
    ) -> OptimizationOutcome:
        """Run the Eq. 1 search on a job trace (see ``ExperimentSession``)."""
        return self.session.optimize_operations(
            jobs,
            horizon_h=horizon_h,
            activity_floor_fraction=activity_floor_fraction,
            points=points,
            objective_kind=objective_kind,
        )
