"""Demand-side policies: carbon-aware load shifting and deadline restructuring.

Two of the paper's proposals act on the *timing* of demand rather than on
hardware:

* **Load shifting** (Section II.A): move deferrable compute from hours when
  the grid is dirty/expensive into hours when it is green/cheap.  The policy
  here operates on the hourly facility-load profile: a configurable fraction
  of each hour's load is deferrable within a bounded window, and the policy
  re-times it toward the greenest (or cheapest) hours of that window.
* **Deadline restructuring** (Section III): compare the status-quo conference
  calendar against the paper's options (1) uniform spread, (2) winter/spring
  concentration, (3) rolling submissions, holding the total yearly research
  output fixed, and measure annual energy, emissions, cost, and peak power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import OptimizationError
from ..grid.iso_ne import IsoNeLikeGrid
from ..timeutils import SimulationCalendar
from ..workloads.conferences import ConferenceCalendar
from ..workloads.demand import DeadlineDemandModel
from ..workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator
from ..climate.weather import WeatherModel

__all__ = [
    "LoadShiftingPolicy",
    "ShiftingOutcome",
    "evaluate_load_shifting",
    "DeadlinePolicyOutcome",
    "evaluate_deadline_restructuring",
]


@dataclass(frozen=True)
class LoadShiftingPolicy:
    """Parameters of the carbon/price-aware load-shifting policy.

    Attributes
    ----------
    deferrable_fraction:
        Fraction of each hour's facility load that can be re-timed.
    window_h:
        Maximum number of hours a unit of load may be moved (forward or
        backward) from its original hour.
    signal:
        ``"carbon"`` shifts toward low-carbon hours, ``"price"`` toward cheap
        hours, ``"renewable"`` toward high-renewable hours.
    """

    deferrable_fraction: float = 0.3
    window_h: int = 24
    signal: str = "carbon"

    def __post_init__(self) -> None:
        if not 0.0 <= self.deferrable_fraction <= 1.0:
            raise OptimizationError("deferrable_fraction must lie in [0, 1]")
        if self.window_h < 1:
            raise OptimizationError("window_h must be >= 1")
        if self.signal not in ("carbon", "price", "renewable"):
            raise OptimizationError("signal must be 'carbon', 'price' or 'renewable'")


@dataclass(frozen=True)
class ShiftingOutcome:
    """Before/after comparison of a load-shifting policy."""

    policy: LoadShiftingPolicy
    baseline_emissions_kg: float
    shifted_emissions_kg: float
    baseline_cost_usd: float
    shifted_cost_usd: float
    baseline_energy_mwh: float
    shifted_energy_mwh: float
    peak_power_change_fraction: float

    @property
    def emissions_savings_fraction(self) -> float:
        """Fractional emission reduction achieved by shifting."""
        if self.baseline_emissions_kg == 0:
            return 0.0
        return 1.0 - self.shifted_emissions_kg / self.baseline_emissions_kg

    @property
    def cost_savings_fraction(self) -> float:
        """Fractional cost reduction achieved by shifting."""
        if self.baseline_cost_usd == 0:
            return 0.0
        return 1.0 - self.shifted_cost_usd / self.baseline_cost_usd

    def summary(self) -> Mapping[str, float]:
        """Flat record for tables."""
        return {
            "deferrable_fraction": self.policy.deferrable_fraction,
            "window_h": float(self.policy.window_h),
            "signal_is_price": float(self.policy.signal == "price"),
            "emissions_savings_pct": 100.0 * self.emissions_savings_fraction,
            "cost_savings_pct": 100.0 * self.cost_savings_fraction,
            "baseline_emissions_t": self.baseline_emissions_kg / 1e3,
            "shifted_emissions_t": self.shifted_emissions_kg / 1e3,
            "peak_power_change_pct": 100.0 * self.peak_power_change_fraction,
        }


def _shift_load(
    load_kwh: np.ndarray, signal: np.ndarray, policy: LoadShiftingPolicy
) -> np.ndarray:
    """Re-time the deferrable share of an hourly load profile.

    Within every non-overlapping window of ``window_h`` hours, the deferrable
    share of the window's load is pooled and re-allocated to the hours with
    the *lowest* signal value (greedy water-filling up to a per-hour headroom
    of twice the window's mean load).  Total energy is conserved exactly.
    """
    load = np.asarray(load_kwh, dtype=float)
    sig = np.asarray(signal, dtype=float)
    if load.shape != sig.shape:
        raise OptimizationError("load and signal series must have equal shapes")
    if np.any(load < 0):
        raise OptimizationError("load must be non-negative")
    shifted = load.copy()
    n = load.shape[0]
    window = policy.window_h
    for start in range(0, n, window):
        stop = min(start + window, n)
        block_load = shifted[start:stop]
        block_signal = sig[start:stop]
        deferrable = block_load * policy.deferrable_fraction
        pool = float(deferrable.sum())
        if pool <= 0:
            continue
        remaining = block_load - deferrable
        headroom_cap = 2.0 * float(block_load.mean())
        order = np.argsort(block_signal)
        reallocated = remaining.copy()
        for index in order:
            if pool <= 0:
                break
            capacity = max(headroom_cap - reallocated[index], 0.0)
            take = min(capacity, pool)
            reallocated[index] += take
            pool -= take
        if pool > 0:
            # No headroom left: spread the remainder evenly (energy conservation).
            reallocated += pool / reallocated.shape[0]
        shifted[start:stop] = reallocated
    return shifted


def evaluate_load_shifting(
    *,
    facility_load_kwh: np.ndarray,
    grid: IsoNeLikeGrid,
    policy: LoadShiftingPolicy,
) -> ShiftingOutcome:
    """Apply a load-shifting policy against a grid and compare emissions/cost."""
    load = np.asarray(facility_load_kwh, dtype=float)
    carbon = grid.carbon_intensity_g_per_kwh
    price = grid.price_per_mwh
    renewable = grid.renewable_share
    if load.shape != carbon.shape:
        raise OptimizationError(
            f"facility load ({load.shape}) must align with the grid's hourly series ({carbon.shape})"
        )
    signal = {"carbon": carbon, "price": price, "renewable": -renewable}[policy.signal]
    shifted = _shift_load(load, signal, policy)

    def emissions_kg(profile: np.ndarray) -> float:
        return float(np.sum(profile * carbon) / 1e3)

    def cost_usd(profile: np.ndarray) -> float:
        return float(np.sum(profile / 1e3 * price))

    baseline_peak = float(load.max()) if load.size else 0.0
    shifted_peak = float(shifted.max()) if shifted.size else 0.0
    peak_change = (shifted_peak - baseline_peak) / baseline_peak if baseline_peak > 0 else 0.0
    return ShiftingOutcome(
        policy=policy,
        baseline_emissions_kg=emissions_kg(load),
        shifted_emissions_kg=emissions_kg(shifted),
        baseline_cost_usd=cost_usd(load),
        shifted_cost_usd=cost_usd(shifted),
        baseline_energy_mwh=float(load.sum() / 1e3),
        shifted_energy_mwh=float(shifted.sum() / 1e3),
        peak_power_change_fraction=peak_change,
    )


# ---------------------------------------------------------------------------
# Deadline restructuring (Section III options)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeadlinePolicyOutcome:
    """Annualised outcome of one deadline-calendar option."""

    option: str
    total_energy_mwh: float
    total_emissions_t: float
    total_cost_kusd: float
    peak_monthly_power_kw: float
    summer_energy_share: float

    def summary(self) -> Mapping[str, float | str]:
        """Flat record for tables."""
        return {
            "option": self.option,
            "energy_mwh": self.total_energy_mwh,
            "emissions_t": self.total_emissions_t,
            "cost_kusd": self.total_cost_kusd,
            "peak_monthly_power_kw": self.peak_monthly_power_kw,
            "summer_energy_share": self.summer_energy_share,
        }


def evaluate_deadline_restructuring(
    *,
    options: Sequence[str] = ("actual", "uniform", "winter", "rolling"),
    seed: int = 0,
    start_year: int = 2020,
    n_months: int = 24,
    demand_model: Optional[DeadlineDemandModel] = None,
    weather_hourly_c: Optional[np.ndarray] = None,
    grid: Optional[IsoNeLikeGrid] = None,
    trace_config: Optional[SuperCloudTraceConfig] = None,
) -> dict[str, DeadlinePolicyOutcome]:
    """Evaluate the Section III deadline-calendar options on identical substrates.

    Every option shares the same weather, grid and demand parameters; only the
    conference calendar changes, so differences in energy/carbon/cost are
    attributable to the deadline distribution alone.  ``weather_hourly_c``,
    ``grid`` and ``trace_config`` let a session reuse its cached substrates;
    when omitted they are derived from ``seed`` with default parameters.
    """
    calendar = SimulationCalendar(start_year=start_year, n_months=n_months)
    if weather_hourly_c is not None:
        weather = np.asarray(weather_hourly_c, dtype=float)
        if weather.shape != (calendar.total_hours,):
            raise OptimizationError(
                f"weather_hourly_c must have {calendar.total_hours} hourly values, "
                f"got {weather.shape}"
            )
    else:
        weather = WeatherModel(seed=seed).hourly_temperature_c(calendar)
    grid = grid if grid is not None else IsoNeLikeGrid(calendar, seed=seed)
    base_demand = demand_model or DeadlineDemandModel(seed=seed)
    base_conferences = base_demand.conferences

    outcomes: dict[str, DeadlinePolicyOutcome] = {}
    for option in options:
        if option == "actual":
            conferences: ConferenceCalendar = base_conferences
        else:
            conferences = base_conferences.restructured(option)
        demand = base_demand.with_calendar(conferences)
        generator = SuperCloudTraceGenerator(trace_config, demand_model=demand, seed=seed)
        trace = generator.generate_load_trace(calendar, weather)

        hourly_kwh = trace.facility_power_w / 1e3  # 1-hour steps -> kWh per hour
        emissions_t = float(np.sum(hourly_kwh * grid.carbon_intensity_g_per_kwh) / 1e6)
        cost_kusd = float(np.sum(hourly_kwh / 1e3 * grid.price_per_mwh) / 1e3)
        months = calendar.month_of_year_array()
        summer_mask = np.isin(months, (6, 7, 8))
        summer_share = float(
            trace.monthly_energy_mwh[summer_mask].sum() / trace.monthly_energy_mwh.sum()
        )
        outcomes[option] = DeadlinePolicyOutcome(
            option=option,
            total_energy_mwh=float(trace.monthly_energy_mwh.sum()),
            total_emissions_t=emissions_t,
            total_cost_kusd=cost_kusd,
            peak_monthly_power_kw=float(trace.monthly_power_kw.max()),
            summer_energy_share=summer_share,
        )
    return outcomes
