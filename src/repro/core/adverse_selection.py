"""Adverse selection in self-characterised queues (Section II.C).

The paper warns that queue segmentation based on *stated* preferences invites
adverse selection: "users mis-characterize their preferences and select
themselves into queues where resources are fastest, most plentiful, or the
most available, leaving select queues clogged and overtaxed and others
largely, if not entirely, idle."

The study here makes that failure mode measurable.  A population of users with
private urgency submits jobs to the three-queue menu of
:class:`~repro.scheduler.queue.SegmentedQueueSystem` under three behavioural
regimes:

* ``truthful`` — users pick the queue matching their true urgency;
* ``strategic`` — a configurable fraction of non-urgent users mis-report into
  the urgent queue because it is faster (the adverse-selection regime);
* ``two-part`` — queue choice only controls the cap/GPU trade (the
  :class:`~repro.core.mechanism.TwoPartMechanism` style), so mis-reporting
  urgency buys nothing; users revert to truthful choices.

For each regime the study reports queue imbalance, the urgent queue's
congestion, and the wait-time penalty suffered by genuinely urgent users —
the quantities that show why the naive design breaks and the two-part design
does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import MechanismError
from ..rng import SeedLike, make_rng
from ..scheduler.job import Job
from ..scheduler.queue import SegmentedQueueSystem

__all__ = ["SyntheticUser", "QueueChoiceOutcome", "AdverseSelectionStudy"]


@dataclass(frozen=True)
class SyntheticUser:
    """A user with a private urgency level and a job to submit."""

    user_id: str
    truly_urgent: bool
    n_gpus: int
    duration_h: float

    def __post_init__(self) -> None:
        if self.n_gpus <= 0 or self.duration_h <= 0:
            raise MechanismError("n_gpus and duration_h must be positive")


@dataclass(frozen=True)
class QueueChoiceOutcome:
    """Aggregate outcome of one behavioural regime."""

    regime: str
    queue_lengths: dict[str, int]
    queue_gpu_demand: dict[str, int]
    imbalance: float
    urgent_queue_congestion: float
    misreport_rate: float
    expected_urgent_wait_penalty_h: float

    def is_degraded(self, imbalance_threshold: float = 1.6) -> bool:
        """Whether the regime exhibits the clogged/idle pattern the paper warns about."""
        return self.imbalance >= imbalance_threshold


class AdverseSelectionStudy:
    """Simulates queue self-selection under different behavioural regimes.

    Parameters
    ----------
    urgent_fraction:
        Fraction of the population whose jobs are genuinely urgent.
    strategic_fraction:
        Fraction of non-urgent users who mis-report as urgent in the
        ``strategic`` regime.
    urgent_queue_service_rate_gpu_h:
        GPU-hours per hour the urgent queue's reserved capacity can absorb;
        used to convert queue load into an expected-wait estimate.
    """

    def __init__(
        self,
        *,
        urgent_fraction: float = 0.2,
        strategic_fraction: float = 0.6,
        urgent_queue_service_rate_gpu_h: float = 32.0,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= urgent_fraction <= 1.0:
            raise MechanismError("urgent_fraction must lie in [0, 1]")
        if not 0.0 <= strategic_fraction <= 1.0:
            raise MechanismError("strategic_fraction must lie in [0, 1]")
        if urgent_queue_service_rate_gpu_h <= 0:
            raise MechanismError("urgent_queue_service_rate_gpu_h must be positive")
        self.urgent_fraction = urgent_fraction
        self.strategic_fraction = strategic_fraction
        self.urgent_queue_service_rate_gpu_h = urgent_queue_service_rate_gpu_h
        self._rng = make_rng(seed, "adverse-selection")

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def synthetic_population(self, n_users: int) -> list[SyntheticUser]:
        """Generate a population with the configured urgency mix."""
        if n_users <= 0:
            raise MechanismError("n_users must be positive")
        rng = self._rng
        users = []
        for i in range(n_users):
            urgent = bool(rng.uniform() < self.urgent_fraction)
            n_gpus = int(rng.choice([1, 2, 4], p=[0.5, 0.3, 0.2])) if urgent else int(
                rng.choice([1, 2, 4, 8, 16], p=[0.3, 0.25, 0.2, 0.15, 0.1])
            )
            duration = float(np.clip(rng.lognormal(np.log(1.0 if urgent else 4.0), 0.8), 0.1, 72.0))
            users.append(
                SyntheticUser(
                    user_id=f"user-{i:04d}", truly_urgent=urgent, n_gpus=n_gpus, duration_h=duration
                )
            )
        return users

    # ------------------------------------------------------------------
    # Queue-choice regimes
    # ------------------------------------------------------------------
    def _declared_queue(self, user: SyntheticUser, regime: str) -> tuple[str, bool]:
        """(preferred queue, whether the declaration is a mis-report)."""
        if regime == "truthful" or regime == "two-part":
            return ("urgent" if user.truly_urgent else "standard"), False
        if regime == "strategic":
            if user.truly_urgent:
                return "urgent", False
            misreports = self._rng.uniform() < self.strategic_fraction
            if misreports and user.n_gpus <= 4:
                return "urgent", True
            return "standard", False
        raise MechanismError(f"unknown regime {regime!r}")

    def run_regime(self, users: Sequence[SyntheticUser], regime: str) -> QueueChoiceOutcome:
        """Submit every user's job under one regime and measure queue health."""
        if not users:
            raise MechanismError("run_regime requires at least one user")
        system = SegmentedQueueSystem()
        misreports = 0
        urgent_load_gpu_h = 0.0
        genuinely_urgent_jobs = 0
        for index, user in enumerate(users):
            queue_name, misreported = self._declared_queue(user, regime)
            misreports += int(misreported)
            job = Job(
                job_id=f"{regime}-{index:05d}",
                user_id=user.user_id,
                n_gpus=user.n_gpus,
                duration_h=user.duration_h,
                submit_time_h=0.0,
                tags={"truly_urgent": user.truly_urgent},
            )
            assigned = system.submit(job, preferred_queue=queue_name)
            if assigned == "urgent":
                urgent_load_gpu_h += job.gpu_hours
            if user.truly_urgent:
                genuinely_urgent_jobs += 1

        lengths = system.queue_lengths()
        demand = system.queue_gpu_demand()
        imbalance = system.imbalance()
        # Expected wait for urgent-queue work: queued GPU-hours over the queue's
        # service rate — a fluid (M/G/1-style backlog) approximation.
        expected_wait = urgent_load_gpu_h / self.urgent_queue_service_rate_gpu_h
        congestion = demand.get("urgent", 0) / max(1, sum(demand.values()))
        return QueueChoiceOutcome(
            regime=regime,
            queue_lengths=lengths,
            queue_gpu_demand=demand,
            imbalance=imbalance,
            urgent_queue_congestion=float(congestion),
            misreport_rate=misreports / len(users),
            expected_urgent_wait_penalty_h=float(expected_wait),
        )

    def compare_regimes(self, n_users: int = 400) -> dict[str, QueueChoiceOutcome]:
        """Run all three regimes on the same population."""
        population = self.synthetic_population(n_users)
        return {
            regime: self.run_regime(population, regime)
            for regime in ("truthful", "strategic", "two-part")
        }
