"""The two-part mechanism of Section II.C.

The paper proposes a mechanism with "a fixed component that guarantees a
specified minimum amount of energy efficiency and a variable component that
allows for user choice": every job runs under a baseline power cap (the fixed
part), and users may *choose* stricter caps in exchange for more GPUs (the
variable part).  The key quantitative fact making the menu attractive is the
power-cap response of Frey et al. [15]: moderate caps barely slow training,
so a user who accepts, say, a 60% cap and receives 25% more GPUs finishes
*sooner* while the system burns less energy per unit of work.

This module models:

* the **menu** (:class:`MechanismOption`): (cap fraction, GPU multiplier) pairs;
* the **users** (:class:`UserPreference`): each user weighs completion time
  against a private "green preference" for saving energy;
* the **mechanism** (:class:`TwoPartMechanism`): computes each user's best
  response to the menu via the training-job model, then aggregates system
  energy, average completion time, and participation — the
  :class:`MechanismOutcome` the EQ2 benchmark tabulates against the no-mechanism
  baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import MechanismError
from ..rng import SeedLike, make_rng
from ..workloads.training import TrainingJobModel, TrainingJobSpec

__all__ = ["MechanismOption", "UserPreference", "UserChoice", "MechanismOutcome", "TwoPartMechanism"]


@dataclass(frozen=True)
class MechanismOption:
    """One entry of the menu: accept a cap, receive a GPU multiplier.

    Attributes
    ----------
    name:
        Display name.
    power_cap_fraction:
        Cap accepted by the user (fraction of TDP); 1.0 means uncapped.
    gpu_multiplier:
        Multiplier on the user's baseline GPU allocation.
    """

    name: str
    power_cap_fraction: float
    gpu_multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 < self.power_cap_fraction <= 1.0:
            raise MechanismError("power_cap_fraction must lie in (0, 1]")
        if self.gpu_multiplier < 1.0:
            raise MechanismError("gpu_multiplier must be >= 1.0 (the mechanism only adds GPUs)")


#: The default three-option menu: status quo, a moderate trade, an aggressive trade.
DEFAULT_MENU: tuple[MechanismOption, ...] = (
    MechanismOption("baseline", power_cap_fraction=1.0, gpu_multiplier=1.0),
    MechanismOption("eco", power_cap_fraction=0.7, gpu_multiplier=1.15),
    MechanismOption("deep-eco", power_cap_fraction=0.55, gpu_multiplier=1.35),
)


@dataclass(frozen=True)
class UserPreference:
    """A user's private preferences over completion time and energy.

    The user's (dis)utility for an option is
    ``time_weight * wall_clock_hours + energy_weight * energy_kwh`` — lower is
    better.  ``energy_weight`` is the private "green preference" the mechanism
    cannot observe; heterogeneous values are what make a menu (rather than a
    single mandate) the right instrument.

    Attributes
    ----------
    user_id:
        Identifier.
    base_gpus:
        GPUs the user's job would receive without the mechanism.
    workload:
        The training workload the user runs.
    time_weight:
        Disutility per hour of wall-clock time.
    energy_weight:
        Disutility per kWh of energy (the green preference).
    """

    user_id: str
    base_gpus: int
    workload: TrainingJobSpec
    time_weight: float = 1.0
    energy_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.base_gpus <= 0:
            raise MechanismError("base_gpus must be positive")
        if self.time_weight < 0 or self.energy_weight < 0:
            raise MechanismError("preference weights must be non-negative")


@dataclass(frozen=True)
class UserChoice:
    """One user's best response to the menu."""

    user_id: str
    option: MechanismOption
    n_gpus: int
    wall_clock_hours: float
    energy_kwh: float
    utility: float


@dataclass(frozen=True)
class MechanismOutcome:
    """Population-level result of offering the menu."""

    choices: tuple[UserChoice, ...]
    baseline_energy_kwh: float
    mechanism_energy_kwh: float
    baseline_mean_hours: float
    mechanism_mean_hours: float
    participation_rate: float
    extra_gpu_hours: float

    @property
    def energy_savings_fraction(self) -> float:
        """System-wide fractional energy savings relative to the no-mechanism baseline."""
        if self.baseline_energy_kwh == 0:
            return 0.0
        return 1.0 - self.mechanism_energy_kwh / self.baseline_energy_kwh

    @property
    def mean_time_change_fraction(self) -> float:
        """Relative change in mean completion time (negative = users finish sooner)."""
        if self.baseline_mean_hours == 0:
            return 0.0
        return self.mechanism_mean_hours / self.baseline_mean_hours - 1.0


class TwoPartMechanism:
    """Computes best responses to a (cap, GPUs) menu over a user population."""

    def __init__(self, menu: Sequence[MechanismOption] = DEFAULT_MENU) -> None:
        if not menu:
            raise MechanismError("the menu must contain at least one option")
        names = [o.name for o in menu]
        if len(set(names)) != len(names):
            raise MechanismError(f"duplicate option names in menu: {names}")
        if not any(o.power_cap_fraction >= 1.0 and o.gpu_multiplier == 1.0 for o in menu):
            raise MechanismError(
                "the menu must include a status-quo option (uncapped, multiplier 1.0) "
                "so participation is voluntary"
            )
        self.menu = tuple(menu)

    # ------------------------------------------------------------------
    # Individual best response
    # ------------------------------------------------------------------
    def evaluate_option(self, user: UserPreference, option: MechanismOption) -> UserChoice:
        """Evaluate one menu option for one user (time, energy, utility)."""
        model = TrainingJobModel(user.workload)
        n_gpus = max(1, int(round(user.base_gpus * option.gpu_multiplier)))
        cap = None if option.power_cap_fraction >= 1.0 else option.power_cap_fraction
        run = model.run(n_gpus, cap)
        utility = user.time_weight * run.wall_clock_hours + user.energy_weight * run.total_energy_kwh
        return UserChoice(
            user_id=user.user_id,
            option=option,
            n_gpus=n_gpus,
            wall_clock_hours=run.wall_clock_hours,
            energy_kwh=run.total_energy_kwh,
            utility=utility,
        )

    def best_response(self, user: UserPreference) -> UserChoice:
        """The menu option minimising the user's disutility (ties keep the greener option)."""
        evaluations = [self.evaluate_option(user, option) for option in self.menu]
        return min(
            evaluations,
            key=lambda choice: (round(choice.utility, 9), choice.option.power_cap_fraction),
        )

    # ------------------------------------------------------------------
    # Population evaluation
    # ------------------------------------------------------------------
    def evaluate_population(self, users: Sequence[UserPreference]) -> MechanismOutcome:
        """Offer the menu to every user and aggregate the system-level outcome."""
        if not users:
            raise MechanismError("evaluate_population requires at least one user")
        baseline_option = next(
            o for o in self.menu if o.power_cap_fraction >= 1.0 and o.gpu_multiplier == 1.0
        )
        choices = []
        baseline_energy = 0.0
        baseline_hours = []
        mechanism_energy = 0.0
        mechanism_hours = []
        extra_gpu_hours = 0.0
        participants = 0
        for user in users:
            baseline_choice = self.evaluate_option(user, baseline_option)
            choice = self.best_response(user)
            choices.append(choice)
            baseline_energy += baseline_choice.energy_kwh
            baseline_hours.append(baseline_choice.wall_clock_hours)
            mechanism_energy += choice.energy_kwh
            mechanism_hours.append(choice.wall_clock_hours)
            if choice.option.name != baseline_option.name:
                participants += 1
                extra_gpu_hours += (
                    choice.n_gpus * choice.wall_clock_hours
                    - baseline_choice.n_gpus * baseline_choice.wall_clock_hours
                )
        return MechanismOutcome(
            choices=tuple(choices),
            baseline_energy_kwh=baseline_energy,
            mechanism_energy_kwh=mechanism_energy,
            baseline_mean_hours=float(np.mean(baseline_hours)),
            mechanism_mean_hours=float(np.mean(mechanism_hours)),
            participation_rate=participants / len(users),
            extra_gpu_hours=float(extra_gpu_hours),
        )

    # ------------------------------------------------------------------
    # Synthetic population helper
    # ------------------------------------------------------------------
    @staticmethod
    def synthetic_population(
        n_users: int,
        *,
        workload: TrainingJobSpec | None = None,
        green_fraction: float = 0.4,
        seed: SeedLike = None,
    ) -> list[UserPreference]:
        """A heterogeneous user population for mechanism experiments.

        ``green_fraction`` of users carry a non-trivial energy weight (they
        internalise part of the energy cost); the rest care only about time.
        GPU baselines follow the usual 1-8 GPU mix.
        """
        if n_users <= 0:
            raise MechanismError("n_users must be positive")
        if not 0.0 <= green_fraction <= 1.0:
            raise MechanismError("green_fraction must lie in [0, 1]")
        rng = make_rng(seed, "mechanism-population")
        spec = workload or TrainingJobSpec(name="resnet50-like", single_gpu_hours=60.0)
        users = []
        for i in range(n_users):
            base_gpus = int(rng.choice([1, 2, 4, 8], p=[0.35, 0.3, 0.25, 0.1]))
            is_green = rng.uniform() < green_fraction
            energy_weight = float(rng.uniform(0.02, 0.08)) if is_green else float(rng.uniform(0.0, 0.005))
            users.append(
                UserPreference(
                    user_id=f"user-{i:03d}",
                    base_gpus=base_gpus,
                    workload=spec,
                    time_weight=1.0,
                    energy_weight=energy_weight,
                )
            )
        return users
