"""The datacenter-level (Eq. 1) optimizer.

Searches a set of :class:`~repro.core.levers.OperatingPoint` candidates by
running each through the cluster simulator on the *same* job trace, weather
and grid, then picks the feasible point (activity floor satisfied) with the
smallest objective.  The search is exhaustive over the supplied grid — the
lever space the paper describes is small and partly categorical, so a grid is
both simpler and more transparent than continuous optimization, and every
evaluated point is kept so benchmarks can show the whole frontier (including
the infeasible points that "cheat" on the activity constraint, which is the
paper's warning about perverse effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence

import numpy as np

from ..cluster.cooling import CoolingModel
from ..cluster.resources import Cluster
from ..cluster.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from ..config import FacilityConfig
from ..errors import OptimizationError
from ..grid.iso_ne import IsoNeLikeGrid
from ..parallel.pool import ParallelConfig, map_parallel
from ..scheduler.job import Job
from .levers import OperatingPoint, default_operating_grid
from .objective import ActivityConstraint, EnergyObjective, ObjectiveEvaluation

__all__ = ["EvaluatedPoint", "OptimizationOutcome", "DatacenterOptimizer"]


@dataclass(frozen=True)
class EvaluatedPoint:
    """One operating point with its simulation outcome and objective values."""

    point: OperatingPoint
    evaluation: ObjectiveEvaluation
    result: SimulationResult


@dataclass(frozen=True)
class OptimizationOutcome:
    """Everything the Eq. 1 search produced."""

    evaluated: tuple[EvaluatedPoint, ...]
    best: Optional[EvaluatedPoint]
    baseline: Optional[EvaluatedPoint]

    @property
    def feasible_points(self) -> list[EvaluatedPoint]:
        """Evaluated points that satisfy the activity constraint."""
        return [e for e in self.evaluated if e.evaluation.feasible]

    def savings_vs_baseline(self) -> float:
        """Fractional objective reduction of the best point vs. the baseline point.

        Returns 0 when either is missing or the baseline objective is zero.
        """
        if self.best is None or self.baseline is None:
            return 0.0
        base = self.baseline.evaluation.objective_value
        if base == 0:
            return 0.0
        return 1.0 - self.best.evaluation.objective_value / base

    def frontier_records(self) -> list[dict[str, float | str | bool]]:
        """Flat records (one per evaluated point) for tables."""
        records = []
        for e in self.evaluated:
            records.append(
                {
                    "operating_point": e.point.label(),
                    "objective": e.evaluation.objective_value,
                    "activity": e.evaluation.activity_value,
                    "feasible": e.evaluation.feasible,
                    "facility_energy_kwh": e.result.facility_energy_kwh,
                    "emissions_kg": e.result.total_emissions_kg,
                    "mean_wait_h": e.result.mean_wait_h,
                }
            )
        return records


class DatacenterOptimizer:
    """Exhaustive Eq. 1 search over operating points on a fixed workload.

    Parameters
    ----------
    facility:
        The facility description used to build a fresh cluster per evaluation.
    objective / constraint:
        The ``E(·)`` to minimise and the ``A(·) ≥ α`` floor.
    simulation_config:
        Horizon/tick parameters shared by every evaluation.
    weather_hourly_c / cooling / grid:
        Environment (``ε``) shared by every evaluation.
    baseline_point:
        The operating point treated as the status quo (default: uncapped
        backfill at full supply); savings are reported against it.
    """

    def __init__(
        self,
        facility: FacilityConfig,
        objective: EnergyObjective,
        constraint: ActivityConstraint,
        *,
        simulation_config: SimulationConfig | None = None,
        weather_hourly_c: Optional[np.ndarray] = None,
        cooling: Optional[CoolingModel] = None,
        grid: Optional[IsoNeLikeGrid] = None,
        gpu_model: str = "V100",
        baseline_point: OperatingPoint | None = None,
    ) -> None:
        self.facility = facility
        self.objective = objective
        self.constraint = constraint
        self.simulation_config = simulation_config or SimulationConfig()
        self.weather_hourly_c = weather_hourly_c
        self.cooling = cooling
        self.grid = grid
        self.gpu_model = gpu_model
        self.baseline_point = baseline_point or OperatingPoint(
            supply_fraction=1.0, policy_name="backfill", power_cap_fraction=None
        )

    # ------------------------------------------------------------------
    # Single-point evaluation
    # ------------------------------------------------------------------
    def evaluate_point(self, point: OperatingPoint, jobs: Sequence[Job]) -> EvaluatedPoint:
        """Run the workload under one operating point and score it."""
        cluster = Cluster(self.facility, gpu_model=self.gpu_model)
        if point.supply_fraction < 1.0:
            to_drain = int(round((1.0 - point.supply_fraction) * self.facility.n_nodes))
            cluster.drain_nodes(to_drain)
        config = self.simulation_config
        if point.facility_power_budget_w is not None:
            config = SimulationConfig(
                horizon_h=config.horizon_h,
                tick_h=config.tick_h,
                facility_power_budget_w=point.facility_power_budget_w,
                carbon_threshold_quantile=config.carbon_threshold_quantile,
            )
        simulator = ClusterSimulator(
            cluster,
            point.build_scheduler(),
            config,
            weather_hourly_c=self.weather_hourly_c,
            cooling=self.cooling,
            grid=self.grid,
        )
        result = simulator.run([job.clone_pending() for job in jobs])
        evaluation = ObjectiveEvaluation.from_result(result, self.objective, self.constraint)
        return EvaluatedPoint(point=point, evaluation=evaluation, result=result)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def optimize(
        self,
        jobs: Sequence[Job],
        points: Sequence[OperatingPoint] | None = None,
        *,
        parallel: Optional[ParallelConfig] = None,
    ) -> OptimizationOutcome:
        """Evaluate every candidate point and pick the best feasible one.

        The grid search runs through the campaign layer's process-pool
        mapping: point evaluations are independent (each builds its own
        cluster and simulator on a cloned trace), so a multi-worker
        ``parallel`` configuration fans them out across processes while the
        evaluated order — and therefore the selected optimum, ties included —
        stays identical to a serial run.
        """
        if not jobs:
            raise OptimizationError("optimize() requires a non-empty job trace")
        candidates = list(points) if points is not None else default_operating_grid()
        if not candidates:
            raise OptimizationError("optimize() requires at least one operating point")
        to_evaluate = list(candidates)
        if self.baseline_point not in to_evaluate:
            to_evaluate.append(self.baseline_point)
        evaluated = map_parallel(partial(self.evaluate_point, jobs=jobs), to_evaluate, parallel)
        baseline_eval = next(e for e in evaluated if e.point == self.baseline_point)
        feasible = [e for e in evaluated if e.evaluation.feasible]
        best = min(feasible, key=lambda e: e.evaluation.objective_value) if feasible else None
        return OptimizationOutcome(evaluated=tuple(evaluated), best=best, baseline=baseline_eval)
