"""Environmental and financial opportunity costs of energy purchases (Section II.A).

The paper frames the timing of energy purchases in opportunity-cost terms:
"the usage or purchase of power with a less sustainable fuel mix at a period
in time forgoes usage of power generated with a greener fuel mix in that same
time period."  For a given consumption profile, the opportunity cost is the
gap between what the facility *did* (emissions/cost of buying at consumption
time) and the best it *could have done* by re-timing a bounded fraction of
those purchases within a bounded window — i.e. the head-room the load-shifting
and storage strategies then try to capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import OptimizationError
from ..grid.iso_ne import IsoNeLikeGrid
from .policies import LoadShiftingPolicy, evaluate_load_shifting

__all__ = ["OpportunityCostReport", "opportunity_cost_of_profile"]


@dataclass(frozen=True)
class OpportunityCostReport:
    """The opportunity-cost decomposition of one consumption profile."""

    actual_emissions_kg: float
    attainable_emissions_kg: float
    actual_cost_usd: float
    attainable_cost_usd: float
    deferrable_fraction: float
    window_h: int

    @property
    def environmental_opportunity_cost_kg(self) -> float:
        """Avoidable emissions left on the table (kg CO2e)."""
        return max(self.actual_emissions_kg - self.attainable_emissions_kg, 0.0)

    @property
    def financial_opportunity_cost_usd(self) -> float:
        """Avoidable spend left on the table (dollars)."""
        return max(self.actual_cost_usd - self.attainable_cost_usd, 0.0)

    @property
    def environmental_opportunity_fraction(self) -> float:
        """Avoidable emissions as a fraction of actual emissions."""
        if self.actual_emissions_kg == 0:
            return 0.0
        return self.environmental_opportunity_cost_kg / self.actual_emissions_kg

    @property
    def financial_opportunity_fraction(self) -> float:
        """Avoidable cost as a fraction of actual cost."""
        if self.actual_cost_usd == 0:
            return 0.0
        return self.financial_opportunity_cost_usd / self.actual_cost_usd

    def summary(self) -> Mapping[str, float]:
        """Flat record for tables."""
        return {
            "deferrable_fraction": self.deferrable_fraction,
            "window_h": float(self.window_h),
            "actual_emissions_t": self.actual_emissions_kg / 1e3,
            "avoidable_emissions_t": self.environmental_opportunity_cost_kg / 1e3,
            "avoidable_emissions_pct": 100.0 * self.environmental_opportunity_fraction,
            "actual_cost_kusd": self.actual_cost_usd / 1e3,
            "avoidable_cost_kusd": self.financial_opportunity_cost_usd / 1e3,
            "avoidable_cost_pct": 100.0 * self.financial_opportunity_fraction,
        }


def opportunity_cost_of_profile(
    facility_load_kwh: np.ndarray,
    grid: IsoNeLikeGrid,
    *,
    deferrable_fraction: float = 0.3,
    window_h: int = 24,
) -> OpportunityCostReport:
    """Compute the opportunity-cost report for an hourly consumption profile.

    The attainable benchmark re-times the deferrable share of load toward the
    carbon-optimal hours (for the environmental figure) and toward the cheap
    hours (for the financial figure) separately — each figure answers "how
    much better could this dimension have been", not "both at once".
    """
    load = np.asarray(facility_load_kwh, dtype=float)
    if load.ndim != 1 or load.size == 0:
        raise OptimizationError("facility_load_kwh must be a non-empty 1-D array")

    carbon_policy = LoadShiftingPolicy(
        deferrable_fraction=deferrable_fraction, window_h=window_h, signal="carbon"
    )
    price_policy = LoadShiftingPolicy(
        deferrable_fraction=deferrable_fraction, window_h=window_h, signal="price"
    )
    carbon_outcome = evaluate_load_shifting(facility_load_kwh=load, grid=grid, policy=carbon_policy)
    price_outcome = evaluate_load_shifting(facility_load_kwh=load, grid=grid, policy=price_policy)

    return OpportunityCostReport(
        actual_emissions_kg=carbon_outcome.baseline_emissions_kg,
        attainable_emissions_kg=carbon_outcome.shifted_emissions_kg,
        actual_cost_usd=price_outcome.baseline_cost_usd,
        attainable_cost_usd=price_outcome.shifted_cost_usd,
        deferrable_fraction=deferrable_fraction,
        window_h=window_h,
    )
