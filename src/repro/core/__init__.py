"""The paper's primary contribution: the green-datacenter optimization framework.

* :mod:`~repro.core.objective` — the Eq. 1 objective ``E(·)`` (in any of the
  currencies the paper lists: kWh, CO2e, dollars, PUE, water) and the activity
  constraint ``A(·) ≥ α``.
* :mod:`~repro.core.levers` — the decision levers ``q_s`` (supply), ``p``
  (scheduling policy) and ``c`` (power caps) as an enumerable operating point.
  The policy lever is an *open registry*: :func:`~repro.core.levers.
  register_policy` names canned stage compositions (the five legacy policy
  names are pre-registered with bit-identical job records), and any pipeline
  spec string in the :mod:`~repro.scheduler.compose` grammar — ordering +
  gates + placement + power chain, e.g. ``"backfill+carbon(cap=0.7)+budget"``
  — is a valid ``p`` everywhere a policy is addressed (operating points, the
  optimizer, experiments, campaign grids, the CLI).
* :mod:`~repro.core.optimizer` — the datacenter-level optimizer that searches
  operating points on the cluster simulator subject to the activity floor.
* :mod:`~repro.core.user_level` — the Eq. 2 per-user decomposition of energy
  and activity.
* :mod:`~repro.core.mechanism` — the two-part mechanism (fixed power-cap base
  + caps-for-GPUs menu) and its population-level evaluation.
* :mod:`~repro.core.adverse_selection` — self-selected queue segmentation and
  its failure mode.
* :mod:`~repro.core.policies` — carbon-aware load shifting and the
  deadline-restructuring options of Section III.
* :mod:`~repro.core.opportunity_cost` — the environmental/financial
  opportunity-cost accounting of Section II.A.
* :mod:`~repro.core.stress` — the Dodd-Frank-style stress-test harness of
  Section II.B.
* :mod:`~repro.core.framework` — the :class:`GreenDatacenterModel` facade.
"""

from .objective import ObjectiveKind, EnergyObjective, ActivityConstraint, ObjectiveEvaluation
from .levers import (
    OperatingPoint,
    PolicyDefinition,
    SCHEDULER_REGISTRY,
    default_operating_grid,
    make_scheduler,
    register_policy,
    registered_policies,
    resolve_policy,
)
from .optimizer import DatacenterOptimizer, OptimizationOutcome
from .user_level import UserProfile, UserLevelAccounting, per_user_decomposition
from .mechanism import MechanismOption, TwoPartMechanism, UserPreference, MechanismOutcome
from .adverse_selection import AdverseSelectionStudy, QueueChoiceOutcome
from .policies import (
    LoadShiftingPolicy,
    ShiftingOutcome,
    evaluate_load_shifting,
    DeadlinePolicyOutcome,
    evaluate_deadline_restructuring,
)
from .opportunity_cost import OpportunityCostReport, opportunity_cost_of_profile
from .stress import StressTestResult, StressTestHarness
from .framework import GreenDatacenterModel

__all__ = [
    "ObjectiveKind",
    "EnergyObjective",
    "ActivityConstraint",
    "ObjectiveEvaluation",
    "OperatingPoint",
    "PolicyDefinition",
    "SCHEDULER_REGISTRY",
    "register_policy",
    "registered_policies",
    "resolve_policy",
    "make_scheduler",
    "default_operating_grid",
    "DatacenterOptimizer",
    "OptimizationOutcome",
    "UserProfile",
    "UserLevelAccounting",
    "per_user_decomposition",
    "MechanismOption",
    "TwoPartMechanism",
    "UserPreference",
    "MechanismOutcome",
    "AdverseSelectionStudy",
    "QueueChoiceOutcome",
    "LoadShiftingPolicy",
    "ShiftingOutcome",
    "evaluate_load_shifting",
    "DeadlinePolicyOutcome",
    "evaluate_deadline_restructuring",
    "OpportunityCostReport",
    "opportunity_cost_of_profile",
    "StressTestResult",
    "StressTestHarness",
    "GreenDatacenterModel",
]
