"""Objectives and constraints of the Eq. 1 optimization problem.

Eq. 1 of the paper:

    min_{q_s, p, c}  E(q_d, q_s, p, c, ε)    s.t.   A(q_d, q_s, p, c, ε) ≥ α

The paper is deliberately agnostic about what ``E`` measures — "kilowatt-hours,
power usage effectiveness (PUE), pounds of CO2 emitted, amount of water used in
cooling", fiscal cost, or opportunity cost — and about how activity ``A`` is
measured.  This module pins those choices down as explicit, swappable objects:

* :class:`EnergyObjective` extracts one of the candidate ``E`` quantities from
  a :class:`~repro.cluster.simulator.SimulationResult`.
* :class:`ActivityConstraint` extracts an activity measure and checks it
  against the floor ``α``.
* :class:`ObjectiveEvaluation` bundles both for one operating point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

from ..cluster.simulator import SimulationResult
from ..errors import OptimizationError

__all__ = ["ObjectiveKind", "ActivityKind", "EnergyObjective", "ActivityConstraint", "ObjectiveEvaluation"]


class ObjectiveKind(enum.Enum):
    """The candidate ``E(·)`` quantities listed in Section II.A."""

    FACILITY_ENERGY_KWH = "facility_energy_kwh"
    IT_ENERGY_KWH = "it_energy_kwh"
    EMISSIONS_KG = "emissions_kg"
    COST_USD = "cost_usd"
    AVERAGE_PUE = "average_pue"
    PEAK_POWER_KW = "peak_power_kw"


class ActivityKind(enum.Enum):
    """Candidate activity/performance measures ``A(·)``."""

    DELIVERED_GPU_HOURS = "delivered_gpu_hours"
    COMPLETED_JOBS = "completed_jobs"
    NEGATIVE_MEAN_WAIT_H = "negative_mean_wait_h"
    ON_TIME_FRACTION = "on_time_fraction"


_OBJECTIVE_EXTRACTORS: Mapping[ObjectiveKind, Callable[[SimulationResult], float]] = {
    ObjectiveKind.FACILITY_ENERGY_KWH: lambda r: r.facility_energy_kwh,
    ObjectiveKind.IT_ENERGY_KWH: lambda r: r.it_energy_kwh,
    ObjectiveKind.EMISSIONS_KG: lambda r: r.total_emissions_kg,
    ObjectiveKind.COST_USD: lambda r: r.total_cost_usd,
    ObjectiveKind.AVERAGE_PUE: lambda r: r.average_pue,
    ObjectiveKind.PEAK_POWER_KW: lambda r: r.peak_facility_power_w / 1e3,
}


_ACTIVITY_EXTRACTORS: Mapping[ActivityKind, Callable[[SimulationResult], float]] = {
    ActivityKind.DELIVERED_GPU_HOURS: lambda r: r.delivered_gpu_hours,
    ActivityKind.COMPLETED_JOBS: lambda r: float(r.completed_jobs),
    ActivityKind.NEGATIVE_MEAN_WAIT_H: lambda r: -r.mean_wait_h,
    ActivityKind.ON_TIME_FRACTION: lambda r: 1.0 - r.deadline_miss_rate,
}


@dataclass(frozen=True)
class EnergyObjective:
    """The quantity being minimised.

    Attributes
    ----------
    kind:
        Which of the Section II.A quantities to minimise.
    weight_emissions / weight_cost:
        Optional extra terms for blended objectives, expressed as a weight
        per kg CO2e and per dollar added to the primary objective's value.
        This lets an operator trade kWh against CO2e or dollars explicitly.
    """

    kind: ObjectiveKind = ObjectiveKind.FACILITY_ENERGY_KWH
    weight_emissions: float = 0.0
    weight_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.weight_emissions < 0 or self.weight_cost < 0:
            raise OptimizationError("objective weights must be non-negative")

    def value(self, result: SimulationResult) -> float:
        """Evaluate the (possibly blended) objective for one simulation result."""
        base = _OBJECTIVE_EXTRACTORS[self.kind](result)
        return (
            base
            + self.weight_emissions * result.total_emissions_kg
            + self.weight_cost * result.total_cost_usd
        )


@dataclass(frozen=True)
class ActivityConstraint:
    """The ``A(·) ≥ α`` constraint.

    Attributes
    ----------
    kind:
        Which activity measure to use.
    alpha:
        The floor.  For :attr:`ActivityKind.NEGATIVE_MEAN_WAIT_H` the floor is
        the negated maximum acceptable mean wait (e.g. ``alpha=-6`` means
        "mean wait at most 6 hours").
    """

    kind: ActivityKind = ActivityKind.DELIVERED_GPU_HOURS
    alpha: float = 0.0

    def value(self, result: SimulationResult) -> float:
        """The activity measure of one simulation result."""
        return _ACTIVITY_EXTRACTORS[self.kind](result)

    def satisfied(self, result: SimulationResult) -> bool:
        """Whether the result meets the activity floor."""
        return self.value(result) >= self.alpha - 1e-9


@dataclass(frozen=True)
class ObjectiveEvaluation:
    """Objective and constraint values for one evaluated operating point."""

    objective_value: float
    activity_value: float
    feasible: bool
    summary: Mapping[str, float]

    @classmethod
    def from_result(
        cls,
        result: SimulationResult,
        objective: EnergyObjective,
        constraint: ActivityConstraint,
    ) -> "ObjectiveEvaluation":
        """Evaluate a simulation result under an objective and constraint."""
        return cls(
            objective_value=objective.value(result),
            activity_value=constraint.value(result),
            feasible=constraint.satisfied(result),
            summary=result.summary(),
        )
