"""The Eq. 2 per-user decomposition.

Eq. 2 of the paper rewrites the facility-level problem user by user:

    min_i  e_i(q_d(i), q_s, p, c, ε)   s.t.   a_i(·) ≥ α_i  for every user i,
    with   Σ_i e_i = E   and   Σ_i a_i = A.

The practical content is an *accounting identity*: facility energy and
activity must be attributable to individual users (or representative
workload profiles) before user-targeted mechanisms can be designed or
evaluated.  :func:`per_user_decomposition` performs that attribution over a
:class:`~repro.cluster.simulator.SimulationResult` — each user's IT energy is
what their jobs' GPUs drew, and facility overhead is allocated pro-rata to IT
energy — and verifies the Σ e_i = E identity up to the idle-power remainder
(energy burned by idle hardware, which belongs to no user and is exactly the
waste that supply-side levers target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..cluster.simulator import SimulationResult
from ..errors import OptimizationError

__all__ = ["UserProfile", "UserLevelAccounting", "per_user_decomposition"]


@dataclass(frozen=True)
class UserProfile:
    """Per-user (or per-representative-workload) accounting record.

    Attributes
    ----------
    user_id:
        The user this row describes.
    it_energy_kwh:
        IT energy attributed to the user's jobs.
    facility_energy_kwh:
        IT energy plus the user's pro-rata share of facility overhead.
    gpu_hours:
        GPU-hours consumed by the user's jobs (actual, cap-stretched durations).
    delivered_gpu_hours:
        Baseline GPU-hours of completed work (the user's activity ``a_i``).
    n_jobs / completed_jobs:
        Submitted and completed job counts.
    mean_wait_h:
        Mean queue wait of the user's started jobs.
    """

    user_id: str
    it_energy_kwh: float
    facility_energy_kwh: float
    gpu_hours: float
    delivered_gpu_hours: float
    n_jobs: int
    completed_jobs: int
    mean_wait_h: float

    @property
    def energy_per_gpu_hour_kwh(self) -> float:
        """Facility energy per delivered GPU-hour for this user."""
        if self.delivered_gpu_hours == 0:
            return float("nan")
        return self.facility_energy_kwh / self.delivered_gpu_hours


@dataclass(frozen=True)
class UserLevelAccounting:
    """The full Eq. 2 decomposition of one simulation run."""

    profiles: Mapping[str, UserProfile]
    total_facility_energy_kwh: float
    attributed_energy_kwh: float
    idle_overhead_kwh: float

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return len(self.profiles)

    @property
    def attribution_fraction(self) -> float:
        """Fraction of facility energy attributable to user jobs (rest is idle waste)."""
        if self.total_facility_energy_kwh == 0:
            return 0.0
        return self.attributed_energy_kwh / self.total_facility_energy_kwh

    def heaviest_users(self, n: int = 5) -> list[UserProfile]:
        """The ``n`` users with the largest attributed facility energy."""
        ranked = sorted(self.profiles.values(), key=lambda p: p.facility_energy_kwh, reverse=True)
        return ranked[: max(0, n)]

    def energy_concentration(self, top_fraction: float = 0.2) -> float:
        """Share of attributed energy consumed by the top ``top_fraction`` of users.

        The usual heavy-tail picture (a small set of users drives most of the
        energy) is what makes user-targeted mechanisms worthwhile.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise OptimizationError("top_fraction must lie in (0, 1]")
        energies = np.sort([p.facility_energy_kwh for p in self.profiles.values()])[::-1]
        if energies.sum() == 0:
            return 0.0
        k = max(1, int(round(top_fraction * energies.size)))
        return float(energies[:k].sum() / energies.sum())

    def verify_identity(self, tolerance: float = 1e-6) -> bool:
        """Check Σ_i e_i + idle overhead == E (the Eq. 2 summation constraint)."""
        lhs = self.attributed_energy_kwh + self.idle_overhead_kwh
        return abs(lhs - self.total_facility_energy_kwh) <= tolerance * max(
            1.0, self.total_facility_energy_kwh
        )


def per_user_decomposition(result: SimulationResult) -> UserLevelAccounting:
    """Attribute a simulation result's energy and activity to its users."""
    records_by_user: dict[str, list] = {}
    for record in result.job_records:
        records_by_user.setdefault(record.user_id, []).append(record)
    if not records_by_user:
        raise OptimizationError("simulation result contains no job records to decompose")

    total_facility = result.facility_energy_kwh
    total_it_attributed = sum(r.energy_j for r in result.job_records) / 3.6e6
    # Facility overhead (cooling etc.) is allocated pro-rata to attributed IT energy.
    overhead_total = max(total_facility - result.it_energy_kwh, 0.0)

    profiles: dict[str, UserProfile] = {}
    for user_id, records in records_by_user.items():
        it_kwh = sum(r.energy_j for r in records) / 3.6e6
        share = it_kwh / total_it_attributed if total_it_attributed > 0 else 0.0
        facility_kwh = it_kwh + share * overhead_total
        waits = [r.wait_time_h for r in records if r.wait_time_h is not None]
        profiles[user_id] = UserProfile(
            user_id=user_id,
            it_energy_kwh=it_kwh,
            facility_energy_kwh=facility_kwh,
            gpu_hours=sum(r.n_gpus * (r.actual_duration_h or 0.0) for r in records),
            delivered_gpu_hours=sum(
                r.n_gpus * r.baseline_duration_h for r in records if r.completed
            ),
            n_jobs=len(records),
            completed_jobs=sum(1 for r in records if r.completed),
            mean_wait_h=float(np.mean(waits)) if waits else float("nan"),
        )

    attributed = sum(p.facility_energy_kwh for p in profiles.values())
    idle_overhead = max(total_facility - attributed, 0.0)
    return UserLevelAccounting(
        profiles=profiles,
        total_facility_energy_kwh=total_facility,
        attributed_energy_kwh=attributed,
        idle_overhead_kwh=idle_overhead,
    )
