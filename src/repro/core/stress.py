"""Dodd-Frank-style stress tests for datacenter/HPC operations (Section II.B).

The harness takes the standard catalogue of stress scenarios (or custom ones),
re-generates the facility's year under each scenario's climate/demand/grid
modifications, and reports how energy, cooling overhead, cost, emissions and
cooling-capacity violations degrade relative to the baseline scenario — the
"areas in need of remediation" output the paper wants such exercises to
produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..climate.stress_scenarios import STANDARD_STRESS_SCENARIOS, StressScenarioSpec
from ..climate.weather import WeatherModel
from ..config import config_replace
from ..cluster.cooling import CoolingModel
from ..errors import SimulationError
from ..grid.iso_ne import IsoNeLikeGrid
from ..parallel.pool import ParallelConfig, map_parallel
from ..timeutils import SimulationCalendar
from ..workloads.demand import DeadlineDemandConfig, DeadlineDemandModel
from ..workloads.supercloud import SuperCloudTraceConfig, SuperCloudTraceGenerator

__all__ = ["StressTestResult", "StressTestHarness"]


@dataclass(frozen=True)
class StressTestResult:
    """Outcome of one stress scenario."""

    scenario: str
    severity: int
    total_energy_mwh: float
    cooling_energy_mwh: float
    mean_pue: float
    peak_facility_power_kw: float
    total_cost_kusd: float
    total_emissions_t: float
    hours_cooling_overloaded: int
    max_outdoor_temperature_c: float

    def summary(self) -> Mapping[str, float | str]:
        """Flat record for tables."""
        return {
            "scenario": self.scenario,
            "severity": float(self.severity),
            "energy_mwh": self.total_energy_mwh,
            "cooling_mwh": self.cooling_energy_mwh,
            "mean_pue": self.mean_pue,
            "peak_power_kw": self.peak_facility_power_kw,
            "cost_kusd": self.total_cost_kusd,
            "emissions_t": self.total_emissions_t,
            "hours_cooling_overloaded": float(self.hours_cooling_overloaded),
            "max_outdoor_temp_c": self.max_outdoor_temperature_c,
        }


class StressTestHarness:
    """Runs the facility model through a battery of stress scenarios.

    Parameters
    ----------
    start_year / n_months:
        Horizon of each run (24 months by default, matching the paper's window).
    seed:
        Master seed shared by every scenario so differences are scenario-driven.
    trace_config / demand_config:
        Facility and demand parameters.
    baseline_weather_c / grid:
        Optional pre-built baseline substrates (e.g. from an
        :class:`~repro.experiments.session.ExperimentSession`'s cached
        scenario); when omitted they are derived from ``seed`` exactly as the
        session would derive them.
    """

    def __init__(
        self,
        *,
        start_year: int = 2020,
        n_months: int = 24,
        seed: int = 0,
        trace_config: Optional[SuperCloudTraceConfig] = None,
        demand_config: Optional[DeadlineDemandConfig] = None,
        baseline_weather_c: Optional[np.ndarray] = None,
        grid: Optional[IsoNeLikeGrid] = None,
    ) -> None:
        if n_months <= 0:
            raise SimulationError("n_months must be positive")
        self.calendar = SimulationCalendar(start_year=start_year, n_months=n_months)
        self.seed = seed
        self.trace_config = trace_config or SuperCloudTraceConfig()
        self.demand_config = demand_config or DeadlineDemandConfig()
        if baseline_weather_c is not None:
            baseline_weather_c = np.asarray(baseline_weather_c, dtype=float)
            if baseline_weather_c.shape != (self.calendar.total_hours,):
                raise SimulationError(
                    f"baseline_weather_c must have {self.calendar.total_hours} hourly values, "
                    f"got {baseline_weather_c.shape}"
                )
        self._baseline_weather = (
            baseline_weather_c
            if baseline_weather_c is not None
            else WeatherModel(seed=seed).hourly_temperature_c(self.calendar)
        )
        self._grid = grid if grid is not None else IsoNeLikeGrid(self.calendar, seed=seed)

    # ------------------------------------------------------------------
    # Single scenario
    # ------------------------------------------------------------------
    def run_scenario(self, scenario: StressScenarioSpec) -> StressTestResult:
        """Run the facility model under one stress scenario."""
        weather = self._baseline_weather
        if scenario.climate is not None:
            weather = scenario.climate.apply(self.calendar, weather)

        demand_config = config_replace(
            self.demand_config,
            baseline_occupancy=min(
                0.97, self.demand_config.baseline_occupancy * scenario.demand_multiplier
            ),
        )
        demand_model = DeadlineDemandModel(demand_config, seed=self.seed)
        cooling = CoolingModel().with_capacity_fraction(scenario.cooling_capacity_fraction)
        generator = SuperCloudTraceGenerator(
            self.trace_config, demand_model=demand_model, cooling=cooling, seed=self.seed
        )
        trace = generator.generate_load_trace(self.calendar, weather)

        hourly_kwh = trace.facility_power_w / 1e3
        it_kwh = trace.it_power_w / 1e3
        cooling_kwh = hourly_kwh - it_kwh
        carbon = self._grid.carbon_intensity_g_per_kwh * scenario.carbon_multiplier
        price = self._grid.price_per_mwh * scenario.price_multiplier

        overloaded = cooling.is_overloaded(trace.it_power_w, weather)
        return StressTestResult(
            scenario=scenario.name,
            severity=scenario.severity,
            total_energy_mwh=float(hourly_kwh.sum() / 1e3),
            cooling_energy_mwh=float(cooling_kwh.sum() / 1e3),
            mean_pue=float(hourly_kwh.sum() / it_kwh.sum()),
            peak_facility_power_kw=float(trace.facility_power_w.max() / 1e3),
            total_cost_kusd=float(np.sum(hourly_kwh / 1e3 * price) / 1e3),
            total_emissions_t=float(np.sum(hourly_kwh * carbon) / 1e6),
            hours_cooling_overloaded=int(np.sum(overloaded)),
            max_outdoor_temperature_c=float(np.max(weather)),
        )

    # ------------------------------------------------------------------
    # Batteries
    # ------------------------------------------------------------------
    def run_battery(
        self,
        scenarios: Sequence[StressScenarioSpec] = STANDARD_STRESS_SCENARIOS,
        *,
        parallel: Optional[ParallelConfig] = None,
    ) -> dict[str, StressTestResult]:
        """Run a battery of scenarios, keyed by scenario name.

        The battery goes through the campaign layer's process-pool mapping:
        with a multi-worker ``parallel`` configuration the scenarios run
        concurrently (the harness state is picklable), and the result order —
        hence the returned mapping — is identical to a serial run.
        """
        if not scenarios:
            raise SimulationError("run_battery requires at least one scenario")
        results = map_parallel(self.run_scenario, scenarios, parallel)
        return {spec.name: result for spec, result in zip(scenarios, results)}

    @staticmethod
    def degradation_table(results: Mapping[str, StressTestResult]) -> list[dict[str, float | str]]:
        """Relative degradation of every scenario vs. the 'baseline' scenario."""
        if "baseline" not in results:
            raise SimulationError("degradation_table requires a 'baseline' scenario in the results")
        base = results["baseline"]
        table: list[dict[str, float | str]] = []
        for name, result in results.items():
            table.append(
                {
                    "scenario": name,
                    "severity": result.severity,
                    "energy_increase_pct": 100.0 * (result.total_energy_mwh / base.total_energy_mwh - 1.0),
                    "cooling_increase_pct": 100.0
                    * (result.cooling_energy_mwh / base.cooling_energy_mwh - 1.0),
                    "cost_increase_pct": 100.0 * (result.total_cost_kusd / base.total_cost_kusd - 1.0),
                    "emissions_increase_pct": 100.0
                    * (result.total_emissions_t / base.total_emissions_t - 1.0),
                    "pue_increase_pct": 100.0 * (result.mean_pue / base.mean_pue - 1.0),
                    "hours_cooling_overloaded": result.hours_cooling_overloaded,
                }
            )
        return table
