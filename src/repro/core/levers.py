"""The decision levers of Eq. 1 as an enumerable operating point.

An :class:`OperatingPoint` fixes the three traditional levers the paper names:

* ``q_s`` — the supplied resource quantity, expressed as the fraction of the
  cluster's nodes kept in service (the rest are drained);
* ``p`` — the scheduling policy, by name from :data:`SCHEDULER_REGISTRY`;
* ``c`` — the control mechanism, here the GPU power-cap fraction applied by
  the policy (``None`` = uncapped) and the facility power budget.

The optimizer enumerates operating points (grid search is entirely adequate —
the levers are low-dimensional and partly categorical, exactly why the paper
frames this as an operational rather than algorithmic problem) and evaluates
each on the cluster simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..errors import OptimizationError
from ..scheduler.backfill import BackfillScheduler
from ..scheduler.base import Scheduler
from ..scheduler.carbon_aware import CarbonAwareScheduler
from ..scheduler.deadline_aware import DeadlineAwareScheduler
from ..scheduler.energy_aware import EnergyAwareScheduler
from ..scheduler.fifo import FifoScheduler
from ..scheduler.powercap import StaticPowerCapPolicy

__all__ = ["OperatingPoint", "SCHEDULER_REGISTRY", "make_scheduler", "default_operating_grid"]


def _make_fifo(cap: Optional[float]) -> Scheduler:
    return FifoScheduler()


def _make_backfill(cap: Optional[float]) -> Scheduler:
    return BackfillScheduler()


def _make_energy_aware(cap: Optional[float]) -> Scheduler:
    policy = StaticPowerCapPolicy(cap_fraction=cap) if cap is not None else None
    if policy is None:
        return EnergyAwareScheduler(StaticPowerCapPolicy(cap_fraction=1.0))
    return EnergyAwareScheduler(policy)


def _make_carbon_aware(cap: Optional[float]) -> Scheduler:
    policy = StaticPowerCapPolicy(cap_fraction=cap) if cap is not None else None
    return CarbonAwareScheduler(policy)


def _make_deadline_aware(cap: Optional[float]) -> Scheduler:
    policy = StaticPowerCapPolicy(cap_fraction=cap) if cap is not None else None
    return DeadlineAwareScheduler(policy)


#: Scheduler factories by policy name.  Each factory takes the operating
#: point's power-cap fraction (or ``None``) and returns a fresh scheduler.
SCHEDULER_REGISTRY: Mapping[str, Callable[[Optional[float]], Scheduler]] = {
    "fifo": _make_fifo,
    "backfill": _make_backfill,
    "energy-aware": _make_energy_aware,
    "carbon-aware": _make_carbon_aware,
    "deadline-aware": _make_deadline_aware,
}


def make_scheduler(policy_name: str, power_cap_fraction: Optional[float] = None) -> Scheduler:
    """Instantiate a scheduler by registry name with the given power cap."""
    if policy_name not in SCHEDULER_REGISTRY:
        raise OptimizationError(
            f"unknown scheduling policy {policy_name!r}; known: {sorted(SCHEDULER_REGISTRY)}"
        )
    if power_cap_fraction is not None and not 0.0 < power_cap_fraction <= 1.0:
        raise OptimizationError("power_cap_fraction must lie in (0, 1]")
    return SCHEDULER_REGISTRY[policy_name](power_cap_fraction)


@dataclass(frozen=True)
class OperatingPoint:
    """One candidate setting of the Eq. 1 levers.

    Attributes
    ----------
    supply_fraction:
        Fraction of the cluster's nodes kept in service (``q_s``).
    policy_name:
        Scheduling policy name (``p``).
    power_cap_fraction:
        GPU power-cap fraction applied by the policy (``c``); ``None`` means
        no cap.
    facility_power_budget_w:
        Optional facility power ceiling handed to the scheduler (also ``c``).
    """

    supply_fraction: float = 1.0
    policy_name: str = "backfill"
    power_cap_fraction: Optional[float] = None
    facility_power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.supply_fraction <= 1.0:
            raise OptimizationError("supply_fraction must lie in (0, 1]")
        if self.policy_name not in SCHEDULER_REGISTRY:
            raise OptimizationError(
                f"unknown scheduling policy {self.policy_name!r}; known: {sorted(SCHEDULER_REGISTRY)}"
            )
        if self.power_cap_fraction is not None and not 0.0 < self.power_cap_fraction <= 1.0:
            raise OptimizationError("power_cap_fraction must lie in (0, 1]")
        if self.facility_power_budget_w is not None and self.facility_power_budget_w <= 0:
            raise OptimizationError("facility_power_budget_w must be positive when given")

    def build_scheduler(self) -> Scheduler:
        """A fresh scheduler configured for this operating point."""
        return make_scheduler(self.policy_name, self.power_cap_fraction)

    def label(self) -> str:
        """Compact human-readable label for tables."""
        cap = "uncapped" if self.power_cap_fraction is None else f"cap={self.power_cap_fraction:.0%}"
        return f"{self.policy_name}/{cap}/supply={self.supply_fraction:.0%}"


def default_operating_grid(
    *,
    supply_fractions: Sequence[float] = (1.0, 0.85),
    policy_names: Sequence[str] = ("backfill", "energy-aware", "carbon-aware"),
    power_cap_fractions: Sequence[Optional[float]] = (None, 0.75, 0.6),
) -> list[OperatingPoint]:
    """The default grid of operating points searched by the Eq. 1 benchmark."""
    points = []
    for supply in supply_fractions:
        for policy in policy_names:
            for cap in power_cap_fractions:
                points.append(
                    OperatingPoint(
                        supply_fraction=supply,
                        policy_name=policy,
                        power_cap_fraction=cap,
                    )
                )
    return points
