"""The decision levers of Eq. 1 as an enumerable operating point.

An :class:`OperatingPoint` fixes the three traditional levers the paper names:

* ``q_s`` — the supplied resource quantity, expressed as the fraction of the
  cluster's nodes kept in service (the rest are drained);
* ``p`` — the scheduling policy: a registered policy name *or* a pipeline
  spec string in the :mod:`~repro.scheduler.compose` grammar
  (``"backfill+carbon(cap=0.7)+budget"``), so the optimizer's search space is
  the full combinatorial stage composition space rather than a closed enum;
* ``c`` — the control mechanism, here the GPU power-cap fraction applied by
  the policy (``None`` = uncapped) and the facility power budget.

The optimizer enumerates operating points (grid search is entirely adequate —
the levers are low-dimensional and partly categorical, exactly why the paper
frames this as an operational rather than algorithmic problem) and evaluates
each on the cluster simulator.

Policies are registered through :func:`register_policy`; the five legacy
monolithic policy names (``fifo``, ``backfill``, ``energy-aware``,
``carbon-aware``, ``deadline-aware``) are pre-registered as *canned pipeline
compositions* whose job records are bit-identical to the pre-pipeline
schedulers (pinned in ``tests/test_policy_compose.py``).  ``greenhpc
policies`` lists the registry and the stage vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import OptimizationError, SchedulingError
from ..scheduler.base import Scheduler
from ..scheduler.compose import build_pipeline, parse_policy

__all__ = [
    "PolicyDefinition",
    "register_policy",
    "registered_policies",
    "resolve_policy",
    "SCHEDULER_REGISTRY",
    "OperatingPoint",
    "make_scheduler",
    "default_operating_grid",
]


def _cap_token(cap: float) -> str:
    """The static-cap stage token appended for an operating point's ``c`` lever.

    ``float()`` first: NumPy scalars (np.linspace sweeps) repr as
    ``np.float64(...)``, which the spec grammar would reject.
    """
    return f"cap(fraction={float(cap)!r})"


@dataclass(frozen=True)
class PolicyDefinition:
    """One registered policy: a canned pipeline spec plus cap semantics.

    Attributes
    ----------
    name:
        Registry name (the ``p`` lever value).
    spec:
        The pipeline spec the name expands to (before the cap lever).
    help:
        One-line description for listings.
    cap_mode:
        How the operating point's ``power_cap_fraction`` maps onto the
        pipeline:

        * ``"append"`` — append a static-cap stage when a cap is given
          (carbon-/deadline-aware semantics);
        * ``"always"`` — always append one, defaulting to full TDP when no
          cap is given (the legacy energy-aware quirk: its cap policy is
          never absent);
        * ``"ignored"`` — the policy takes no cap (legacy fifo/backfill
          factories discarded it; preserved for reproducibility).
    """

    name: str
    spec: str
    help: str = ""
    cap_mode: str = "append"

    def __post_init__(self) -> None:
        if self.cap_mode not in ("append", "always", "ignored"):
            raise OptimizationError(f"unknown cap_mode {self.cap_mode!r}")
        # Fail registration (not first use) on bad grammar, unknown stages or
        # missing/invalid stage parameters.
        build_pipeline(self.spec)

    def effective_spec(self, power_cap_fraction: Optional[float]) -> str:
        """The full pipeline spec once the cap lever is applied."""
        if self.cap_mode == "ignored":
            return self.spec
        if self.cap_mode == "always":
            cap = power_cap_fraction if power_cap_fraction is not None else 1.0
            return f"{self.spec}+{_cap_token(cap)}"
        if power_cap_fraction is None:
            return self.spec
        return f"{self.spec}+{_cap_token(power_cap_fraction)}"

    def build(self, power_cap_fraction: Optional[float] = None) -> Scheduler:
        """A fresh pipeline for this policy at the given cap, named after it."""
        return build_pipeline(self.effective_spec(power_cap_fraction), name=self.name)


_POLICIES: dict[str, PolicyDefinition] = {}


def register_policy(
    name: str,
    spec: str,
    *,
    help: str = "",
    cap_mode: str = "append",
    overwrite: bool = False,
) -> PolicyDefinition:
    """Register ``spec`` as the policy ``name``; duplicate names raise.

    The registered name becomes valid everywhere a policy is addressed: the
    :class:`OperatingPoint` ``p`` lever, :func:`make_scheduler`, the
    ``optimize``/``schedule`` experiments, campaign grids and the CLI.
    """
    if name in _POLICIES and not overwrite:
        raise OptimizationError(f"policy {name!r} is already registered")
    definition = PolicyDefinition(name=name, spec=spec, help=help, cap_mode=cap_mode)
    _POLICIES[name] = definition
    return definition


def registered_policies() -> Iterator[PolicyDefinition]:
    """Iterate over the registered policy definitions, in registration order."""
    return iter(tuple(_POLICIES.values()))


#: Registered policies by name.  Kept under the historical name so existing
#: ``name in SCHEDULER_REGISTRY`` / ``sorted(SCHEDULER_REGISTRY)`` call sites
#: keep working; mutate it through :func:`register_policy` only.
SCHEDULER_REGISTRY: dict[str, PolicyDefinition] = _POLICIES


def resolve_policy(policy: str) -> PolicyDefinition:
    """Resolve a policy name or spec string to a buildable definition.

    Registered names win; anything else must parse in the pipeline grammar
    (its canonical spelling becomes the definition name).  Raises
    :class:`OptimizationError` either way on failure.
    """
    definition = _POLICIES.get(policy)
    if definition is not None:
        return definition
    try:
        canonical = str(parse_policy(policy))
        return PolicyDefinition(name=canonical, spec=canonical, cap_mode="append")
    except SchedulingError as exc:
        raise OptimizationError(
            f"unknown scheduling policy {policy!r} ({exc}); registered policies: "
            f"{sorted(_POLICIES)} — run `greenhpc policies` for the full catalogue"
        ) from None


def make_scheduler(policy_name: str, power_cap_fraction: Optional[float] = None) -> Scheduler:
    """Instantiate a scheduler by registry name or pipeline spec string."""
    if power_cap_fraction is not None and not 0.0 < power_cap_fraction <= 1.0:
        raise OptimizationError("power_cap_fraction must lie in (0, 1]")
    return resolve_policy(policy_name).build(power_cap_fraction)


# ---------------------------------------------------------------------------
# The canned legacy policies (bit-identical to the pre-pipeline schedulers)
# ---------------------------------------------------------------------------

register_policy(
    "fifo",
    "fifo",
    help="strict submission-order FIFO (the naive baseline)",
    cap_mode="ignored",
)
register_policy(
    "backfill",
    "backfill",
    help="FIFO order with backfilling around blocked head-of-line jobs",
    cap_mode="ignored",
)
register_policy(
    "energy-aware",
    "backfill+budget",
    help="backfill with static power caps, packing and the facility power budget",
    cap_mode="always",
)
register_policy(
    "carbon-aware",
    "backfill+carbon(cap=0.7)",
    help="backfill that defers deferrable jobs (and caps the rest) in dirty hours",
    cap_mode="append",
)
register_policy(
    "deadline-aware",
    "edf+backfill+slack(margin=2.0)",
    help="earliest-deadline-first, spending deadline slack on green hours",
    cap_mode="append",
)


@dataclass(frozen=True)
class OperatingPoint:
    """One candidate setting of the Eq. 1 levers.

    Attributes
    ----------
    supply_fraction:
        Fraction of the cluster's nodes kept in service (``q_s``).
    policy_name:
        Scheduling policy (``p``): a registered name or a pipeline spec
        string in the :mod:`~repro.scheduler.compose` grammar.
    power_cap_fraction:
        GPU power-cap fraction applied by the policy (``c``); ``None`` means
        no cap.
    facility_power_budget_w:
        Optional facility power ceiling handed to the scheduler (also ``c``).
    """

    supply_fraction: float = 1.0
    policy_name: str = "backfill"
    power_cap_fraction: Optional[float] = None
    facility_power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.supply_fraction <= 1.0:
            raise OptimizationError("supply_fraction must lie in (0, 1]")
        resolve_policy(self.policy_name)  # name or spec must be buildable
        if self.power_cap_fraction is not None and not 0.0 < self.power_cap_fraction <= 1.0:
            raise OptimizationError("power_cap_fraction must lie in (0, 1]")
        if self.facility_power_budget_w is not None and self.facility_power_budget_w <= 0:
            raise OptimizationError("facility_power_budget_w must be positive when given")

    def build_scheduler(self) -> Scheduler:
        """A fresh scheduler configured for this operating point."""
        return make_scheduler(self.policy_name, self.power_cap_fraction)

    def label(self) -> str:
        """Compact human-readable label for tables."""
        cap = "uncapped" if self.power_cap_fraction is None else f"cap={self.power_cap_fraction:.0%}"
        return f"{self.policy_name}/{cap}/supply={self.supply_fraction:.0%}"


def default_operating_grid(
    *,
    supply_fractions: Sequence[float] = (1.0, 0.85),
    policy_names: Sequence[str] = ("backfill", "energy-aware", "carbon-aware"),
    power_cap_fractions: Sequence[Optional[float]] = (None, 0.75, 0.6),
) -> list[OperatingPoint]:
    """The default grid of operating points searched by the Eq. 1 benchmark."""
    points = []
    for supply in supply_fractions:
        for policy in policy_names:
            for cap in power_cap_fractions:
                points.append(
                    OperatingPoint(
                        supply_fraction=supply,
                        policy_name=policy,
                        power_cap_fraction=cap,
                    )
                )
    return points
