"""Configuration objects shared across the toolkit.

Configuration is expressed as frozen dataclasses with explicit validation in
``__post_init__``.  Frozen configs can be hashed, safely shared across
processes in parameter sweeps, and compared for equality in tests.  Each
subsystem defines its own more specialised config next to its implementation;
this module holds the cross-cutting ones (site, facility, and experiment
configuration) plus small validation helpers reused by those subsystem
configs.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from .errors import ConfigurationError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_fraction",
    "require_in_range",
    "SiteConfig",
    "FacilityConfig",
    "ExperimentConfig",
    "config_to_dict",
    "config_to_jsonable",
    "config_replace",
]


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive, returning it for chaining."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0, returning it for chaining."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


@dataclass(frozen=True)
class SiteConfig:
    """Physical/geographical description of the facility's site.

    The defaults describe a New-England site similar to the MIT SuperCloud's
    Holyoke, MA datacenter: four-season climate, ISO-NE-like grid.

    Attributes
    ----------
    name:
        Human-readable site name.
    mean_annual_temperature_c:
        Annual mean outdoor temperature in Celsius.
    seasonal_temperature_amplitude_c:
        Half peak-to-peak seasonal swing (July mean minus annual mean).
    diurnal_temperature_amplitude_c:
        Half peak-to-peak daily swing.
    latitude_deg:
        Site latitude; drives solar-generation seasonality in the grid model.
    grid_region:
        Identifier of the grid region supplying the site (informational).
    """

    name: str = "holyoke-ma"
    mean_annual_temperature_c: float = 9.5
    seasonal_temperature_amplitude_c: float = 12.5
    diurnal_temperature_amplitude_c: float = 4.5
    latitude_deg: float = 42.2
    grid_region: str = "ISO-NE"

    def __post_init__(self) -> None:
        require_non_negative(self.seasonal_temperature_amplitude_c, "seasonal_temperature_amplitude_c")
        require_non_negative(self.diurnal_temperature_amplitude_c, "diurnal_temperature_amplitude_c")
        require_in_range(self.latitude_deg, -90.0, 90.0, "latitude_deg")
        if not self.name:
            raise ConfigurationError("site name must be non-empty")


@dataclass(frozen=True)
class FacilityConfig:
    """Top-level description of the HPC facility being modelled.

    The defaults approximate the scale reported for the MIT SuperCloud
    (TX-GAIA / E1): several hundred GPU nodes, a few hundred kW average
    IT load, and a modern PUE.

    Attributes
    ----------
    name:
        Facility name.
    n_nodes:
        Number of GPU compute nodes.
    gpus_per_node:
        GPUs per node.
    node_idle_power_w:
        Per-node power draw excluding GPUs (CPUs, memory, fans) when idle.
    node_active_overhead_w:
        Additional per-node non-GPU power when the node is running a job.
    baseline_pue:
        Facility PUE at the reference outdoor temperature (cooling included).
    reference_temperature_c:
        Outdoor temperature at which ``baseline_pue`` holds.
    pue_temperature_slope_per_c:
        Increase in PUE per degree Celsius above the reference temperature;
        this couples cooling overhead to weather (Fig. 4).
    """

    name: str = "supercloud-e1"
    n_nodes: int = 448
    gpus_per_node: int = 2
    node_idle_power_w: float = 240.0
    node_active_overhead_w: float = 110.0
    baseline_pue: float = 1.28
    reference_temperature_c: float = 10.0
    pue_temperature_slope_per_c: float = 0.010
    min_pue: float = 1.03

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.gpus_per_node <= 0:
            raise ConfigurationError("n_nodes and gpus_per_node must be positive integers")
        require_non_negative(self.node_idle_power_w, "node_idle_power_w")
        require_non_negative(self.node_active_overhead_w, "node_active_overhead_w")
        if self.baseline_pue < 1.0:
            raise ConfigurationError(f"baseline_pue must be >= 1.0, got {self.baseline_pue!r}")
        if self.min_pue < 1.0:
            raise ConfigurationError(f"min_pue must be >= 1.0, got {self.min_pue!r}")
        require_non_negative(self.pue_temperature_slope_per_c, "pue_temperature_slope_per_c")

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs across the facility."""
        return self.n_nodes * self.gpus_per_node


@dataclass(frozen=True)
class ExperimentConfig:
    """Reproducibility envelope for a single experiment run.

    Attributes
    ----------
    seed:
        Master seed from which all random streams are derived.
    start_year:
        Calendar year at which simulated time begins (Fig. 5 spans 2020-2021).
    n_months:
        Number of simulated months.
    time_step_s:
        Simulation step for continuous-time components (power sampling,
        grid series) in seconds.
    label:
        Free-form label recorded in reports.
    extra:
        Arbitrary experiment metadata (not interpreted by the library).
    """

    seed: int = 20220527
    start_year: int = 2020
    n_months: int = 24
    time_step_s: float = 3600.0
    label: str = "default"
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_months <= 0:
            raise ConfigurationError(f"n_months must be positive, got {self.n_months!r}")
        require_positive(self.time_step_s, "time_step_s")
        if self.start_year < 1950 or self.start_year > 2100:
            raise ConfigurationError(f"start_year looks implausible: {self.start_year!r}")


def config_to_dict(config: Any) -> dict[str, Any]:
    """Convert any dataclass config into a plain dictionary (shallow)."""
    if not hasattr(config, "__dataclass_fields__"):
        raise ConfigurationError(f"expected a dataclass config, got {type(config)!r}")
    return {f.name: getattr(config, f.name) for f in fields(config)}


def config_to_jsonable(value: Any) -> Any:
    """Deep-convert a config (or any nested container of configs) to JSON-ready values.

    Dataclasses become dictionaries, tuples/sets become lists, numpy arrays and
    scalars become their Python equivalents (via ``tolist``), and non-finite
    floats become ``None`` so the output is valid strict JSON.
    """
    if hasattr(value, "__dataclass_fields__"):
        return {f.name: config_to_jsonable(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, MappingABC):
        return {str(k): config_to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [config_to_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return config_to_jsonable(value.tolist())
    return value


def config_replace(config: Any, **changes: Any) -> Any:
    """Return a copy of a frozen dataclass config with ``changes`` applied.

    Unknown field names raise :class:`ConfigurationError` instead of the
    ``TypeError`` raised by :func:`dataclasses.replace`, which makes sweep
    definitions fail with a clearer message.
    """
    if not hasattr(config, "__dataclass_fields__"):
        raise ConfigurationError(f"expected a dataclass config, got {type(config)!r}")
    valid = {f.name for f in fields(config)}
    unknown = set(changes) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown config field(s) {sorted(unknown)} for {type(config).__name__}; "
            f"valid fields: {sorted(valid)}"
        )
    return replace(config, **changes)
