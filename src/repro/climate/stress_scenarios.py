"""Named catalogue of Dodd-Frank-style stress scenarios.

The paper's Section II.B draws an explicit analogy with the annual Dodd-Frank
bank stress tests: define a small set of adverse-but-plausible scenarios,
run the institution's models through them every year, and use the results to
find weak infrastructure before reality does.  The catalogue here combines a
*climate* component (temperature transformation), a *demand* component
(relative increase in compute demand), and a *grid* component (price and
carbon multipliers), which is the cross-product of stresses the paper calls
out: weather, user demand, and energy-market conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import require_positive
from ..errors import ConfigurationError, DataError
from .scenarios import (
    AmplifiedSeasonsScenario,
    ClimateScenario,
    ColdSnapScenario,
    CompositeScenario,
    HeatWaveScenario,
    UniformWarmingScenario,
)

__all__ = ["StressScenarioSpec", "STANDARD_STRESS_SCENARIOS", "get_stress_scenario"]


@dataclass(frozen=True)
class StressScenarioSpec:
    """One named stress scenario.

    Attributes
    ----------
    name:
        Catalogue identifier.
    description:
        Human-readable description for reports.
    climate:
        Temperature transformation applied to the baseline weather trace
        (``None`` leaves weather unchanged).
    demand_multiplier:
        Relative scaling of the facility's compute demand (1.0 = unchanged).
    price_multiplier:
        Relative scaling of grid prices.
    carbon_multiplier:
        Relative scaling of grid carbon intensity (e.g. a dirty-grid year).
    cooling_capacity_fraction:
        Fraction of cooling capacity available (models chiller failures).
    severity:
        Ordinal 1 (adverse) .. 3 (severely adverse), mirroring the Fed's
        baseline / adverse / severely-adverse taxonomy.
    """

    name: str
    description: str
    climate: ClimateScenario | None = None
    demand_multiplier: float = 1.0
    price_multiplier: float = 1.0
    carbon_multiplier: float = 1.0
    cooling_capacity_fraction: float = 1.0
    severity: int = 1

    def __post_init__(self) -> None:
        require_positive(self.demand_multiplier, "demand_multiplier")
        require_positive(self.price_multiplier, "price_multiplier")
        require_positive(self.carbon_multiplier, "carbon_multiplier")
        if not 0.0 < self.cooling_capacity_fraction <= 1.0:
            raise ConfigurationError("cooling_capacity_fraction must lie in (0, 1]")
        if self.severity not in (1, 2, 3):
            raise ConfigurationError("severity must be 1, 2 or 3")
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")


#: The standard catalogue evaluated by the STRESS benchmark.  Ordered from
#: least to most severe.
STANDARD_STRESS_SCENARIOS: tuple[StressScenarioSpec, ...] = (
    StressScenarioSpec(
        name="baseline",
        description="Current climate, demand and grid conditions.",
        climate=None,
        severity=1,
    ),
    StressScenarioSpec(
        name="warm-summer",
        description="+2 C uniform warming with a one-week summer heat wave.",
        climate=CompositeScenario(
            [UniformWarmingScenario(2.0), HeatWaveScenario(start_day=550.0, duration_days=7.0, peak_excess_c=6.0)],
            name="warm-summer",
        ),
        demand_multiplier=1.0,
        price_multiplier=1.05,
        severity=1,
    ),
    StressScenarioSpec(
        name="adverse-heat",
        description="+3 C warming, amplified seasons, two-week extreme heat wave, 10% demand growth.",
        climate=CompositeScenario(
            [
                UniformWarmingScenario(3.0),
                AmplifiedSeasonsScenario(1.2),
                HeatWaveScenario(start_day=545.0, duration_days=14.0, peak_excess_c=9.0),
            ],
            name="adverse-heat",
        ),
        demand_multiplier=1.10,
        price_multiplier=1.15,
        carbon_multiplier=1.05,
        severity=2,
    ),
    StressScenarioSpec(
        name="winter-gas-crisis",
        description="Severe cold snap with constrained gas supply: prices x1.8, dirtier marginal fuel.",
        climate=ColdSnapScenario(start_day=380.0, duration_days=10.0, peak_excess_c=14.0),
        demand_multiplier=1.0,
        price_multiplier=1.8,
        carbon_multiplier=1.20,
        severity=2,
    ),
    StressScenarioSpec(
        name="severely-adverse",
        description=(
            "+4 C warming, amplified seasons, three-week heat wave, 25% demand growth, "
            "one chiller down, prices x1.5."
        ),
        climate=CompositeScenario(
            [
                UniformWarmingScenario(4.0),
                AmplifiedSeasonsScenario(1.3),
                HeatWaveScenario(start_day=540.0, duration_days=21.0, peak_excess_c=11.0),
            ],
            name="severely-adverse",
        ),
        demand_multiplier=1.25,
        price_multiplier=1.5,
        carbon_multiplier=1.15,
        cooling_capacity_fraction=0.75,
        severity=3,
    ),
)


def get_stress_scenario(name: str) -> StressScenarioSpec:
    """Look up a scenario in the standard catalogue by name."""
    for spec in STANDARD_STRESS_SCENARIOS:
        if spec.name == name:
            return spec
    raise DataError(
        f"unknown stress scenario {name!r}; available: {[s.name for s in STANDARD_STRESS_SCENARIOS]}"
    )
