"""Climate substrate: site weather, climate-change scenarios, stress events.

Figure 4 of the paper couples the facility's monthly power draw to the local
outdoor temperature (cooling dominates the seasonal variation), and Section
II.B argues for Dodd-Frank-style *stress tests* of datacenter operations
under more extreme weather.  This package provides:

* :class:`~repro.climate.weather.WeatherModel` — hourly outdoor temperature
  for a configurable site (seasonal + diurnal cycles + weather noise), with
  Boston-area defaults.
* :class:`~repro.climate.scenarios.ClimateScenario` — systematic modifications
  of a weather trace (uniform warming, amplified summers, heat waves, cold
  snaps) used to ask "what does efficiency look like under future climate?".
* :mod:`~repro.climate.stress_scenarios` — a named catalogue of stress
  scenarios consumed by the stress-test harness in :mod:`repro.core.stress`.
"""

from .weather import WeatherConfig, WeatherModel
from .scenarios import (
    ClimateScenario,
    UniformWarmingScenario,
    AmplifiedSeasonsScenario,
    HeatWaveScenario,
    ColdSnapScenario,
    CompositeScenario,
)
from .stress_scenarios import StressScenarioSpec, STANDARD_STRESS_SCENARIOS, get_stress_scenario

__all__ = [
    "WeatherConfig",
    "WeatherModel",
    "ClimateScenario",
    "UniformWarmingScenario",
    "AmplifiedSeasonsScenario",
    "HeatWaveScenario",
    "ColdSnapScenario",
    "CompositeScenario",
    "StressScenarioSpec",
    "STANDARD_STRESS_SCENARIOS",
    "get_stress_scenario",
]
