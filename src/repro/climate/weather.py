"""Site weather (outdoor temperature) model.

The cooling model and Fig. 4 need the outdoor dry-bulb temperature at the
facility's site on an hourly grid.  The model is the standard sinusoidal
decomposition used in building-energy work:

``T(t) = mean + seasonal_amplitude * cos(2*pi*(doy - peak_doy)/365)
        + diurnal_amplitude * cos(2*pi*(hod - peak_hod)/24)
        + AR(1) weather noise``

with Boston-area defaults (annual mean ~9.5 C, July mean ~23 C, January mean
~-3 C) matching the Fahrenheit range visible in the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SiteConfig, require_fraction, require_non_negative
from ..errors import ConfigurationError, DataError
from ..rng import SeedLike, make_rng
from ..timeutils import SimulationCalendar
from ..units import celsius_to_fahrenheit

__all__ = ["WeatherConfig", "WeatherModel"]


@dataclass(frozen=True)
class WeatherConfig:
    """Parameters of the hourly temperature model.

    Attributes
    ----------
    site:
        Site description providing the mean and amplitudes.
    peak_day_of_year:
        Day of year of the warmest day (late July for New England).
    peak_hour_of_day:
        Hour of day of the warmest hour (mid-afternoon).
    noise_std_c:
        Standard deviation of the stationary AR(1) weather noise.
    noise_autocorrelation:
        Hour-to-hour autocorrelation of the noise (weather persistence).
    """

    site: SiteConfig = SiteConfig()
    peak_day_of_year: float = 201.0
    peak_hour_of_day: float = 15.0
    noise_std_c: float = 3.2
    noise_autocorrelation: float = 0.96

    def __post_init__(self) -> None:
        if not 0 <= self.peak_day_of_year <= 366:
            raise ConfigurationError("peak_day_of_year must lie in [0, 366]")
        if not 0 <= self.peak_hour_of_day < 24:
            raise ConfigurationError("peak_hour_of_day must lie in [0, 24)")
        require_non_negative(self.noise_std_c, "noise_std_c")
        require_fraction(self.noise_autocorrelation, "noise_autocorrelation")


class WeatherModel:
    """Generates hourly outdoor temperature series for a simulation horizon."""

    def __init__(self, config: WeatherConfig | None = None, *, seed: SeedLike = None) -> None:
        self.config = config or WeatherConfig()
        self._rng = make_rng(seed, "weather")

    # ------------------------------------------------------------------
    # Deterministic components
    # ------------------------------------------------------------------
    def seasonal_component_c(self, day_of_year: np.ndarray) -> np.ndarray:
        """Seasonal temperature anomaly (relative to the annual mean)."""
        cfg = self.config
        doy = np.asarray(day_of_year, dtype=float)
        return cfg.site.seasonal_temperature_amplitude_c * np.cos(
            2.0 * np.pi * (doy - cfg.peak_day_of_year) / 365.0
        )

    def diurnal_component_c(self, hour_of_day: np.ndarray) -> np.ndarray:
        """Diurnal temperature anomaly (relative to the daily mean)."""
        cfg = self.config
        hod = np.asarray(hour_of_day, dtype=float)
        return cfg.site.diurnal_temperature_amplitude_c * np.cos(
            2.0 * np.pi * (hod - cfg.peak_hour_of_day) / 24.0
        )

    def expected_temperature_c(self, day_of_year: np.ndarray, hour_of_day: np.ndarray) -> np.ndarray:
        """Noise-free expected temperature for given times."""
        return (
            self.config.site.mean_annual_temperature_c
            + self.seasonal_component_c(day_of_year)
            + self.diurnal_component_c(hour_of_day)
        )

    # ------------------------------------------------------------------
    # Series generation
    # ------------------------------------------------------------------
    def hourly_temperature_c(self, calendar: SimulationCalendar) -> np.ndarray:
        """Hourly temperature (Celsius) over the calendar horizon."""
        hours = calendar.hour_grid(1.0)
        day_of_year = np.asarray([calendar.day_of_year(h) for h in hours])
        hour_of_day = hours % 24.0
        expected = self.expected_temperature_c(day_of_year, hour_of_day)
        noise = self._ar1_noise(hours.shape[0])
        return expected + noise

    def _ar1_noise(self, n: int) -> np.ndarray:
        """Stationary AR(1) noise with the configured std and autocorrelation."""
        cfg = self.config
        if cfg.noise_std_c == 0 or n == 0:
            return np.zeros(n)
        rho = cfg.noise_autocorrelation
        innovation_std = cfg.noise_std_c * np.sqrt(max(1.0 - rho**2, 1e-12))
        innovations = self._rng.normal(0.0, innovation_std, size=n)
        noise = np.empty(n)
        noise[0] = self._rng.normal(0.0, cfg.noise_std_c)
        for i in range(1, n):
            noise[i] = rho * noise[i - 1] + innovations[i]
        return noise

    def monthly_mean_temperature_c(
        self, calendar: SimulationCalendar, hourly_c: np.ndarray | None = None
    ) -> np.ndarray:
        """Monthly mean temperature in Celsius (the x-axis driver of Fig. 4)."""
        if hourly_c is None:
            hourly_c = self.hourly_temperature_c(calendar)
        hourly_c = np.asarray(hourly_c, dtype=float)
        if hourly_c.shape != (calendar.total_hours,):
            raise DataError(
                f"expected {calendar.total_hours} hourly temperatures, got {hourly_c.shape}"
            )
        return calendar.monthly_mean(hourly_c)

    def monthly_mean_temperature_f(
        self, calendar: SimulationCalendar, hourly_c: np.ndarray | None = None
    ) -> np.ndarray:
        """Monthly mean temperature in Fahrenheit, the unit used in Fig. 4."""
        return np.asarray(
            celsius_to_fahrenheit(self.monthly_mean_temperature_c(calendar, hourly_c))
        )

    def degree_hours_above(
        self, calendar: SimulationCalendar, threshold_c: float, hourly_c: np.ndarray | None = None
    ) -> float:
        """Cooling degree-hours above ``threshold_c`` over the horizon."""
        if hourly_c is None:
            hourly_c = self.hourly_temperature_c(calendar)
        hourly_c = np.asarray(hourly_c, dtype=float)
        return float(np.clip(hourly_c - threshold_c, 0.0, None).sum())
