"""Climate scenarios: systematic transformations of a weather trace.

Section II.B of the paper asks how existing efficiency practices behave under
"more extreme climate and more frequent weather events" and proposes regular
stress tests.  A scenario here is a pure transformation of an hourly
temperature series; scenarios compose, so a stress test can layer a uniform
warming trend, amplified seasons and an injected heat wave.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, DataError
from ..timeutils import SimulationCalendar

__all__ = [
    "ClimateScenario",
    "UniformWarmingScenario",
    "AmplifiedSeasonsScenario",
    "HeatWaveScenario",
    "ColdSnapScenario",
    "CompositeScenario",
]


class ClimateScenario(ABC):
    """A deterministic transformation of an hourly temperature series."""

    #: Short identifier used in stress-test reports.
    name: str = "identity"

    @abstractmethod
    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        """Return the transformed temperature series (never mutates the input)."""

    def _validate(self, calendar: SimulationCalendar, series: np.ndarray) -> np.ndarray:
        arr = np.asarray(series, dtype=float)
        if arr.shape != (calendar.total_hours,):
            raise DataError(
                f"temperature series must have {calendar.total_hours} hourly entries, got {arr.shape}"
            )
        return arr


@dataclass
class UniformWarmingScenario(ClimateScenario):
    """Add a constant warming offset to every hour (e.g. +2 C world)."""

    warming_c: float = 2.0
    name: str = field(default="uniform-warming", init=False)

    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        arr = self._validate(calendar, hourly_temperature_c)
        return arr + self.warming_c


@dataclass
class AmplifiedSeasonsScenario(ClimateScenario):
    """Amplify deviations from the series mean, making summers hotter and
    winters colder (increased seasonal/diurnal variance)."""

    amplification: float = 1.25
    name: str = field(default="amplified-seasons", init=False)

    def __post_init__(self) -> None:
        if self.amplification <= 0:
            raise ConfigurationError("amplification must be positive")

    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        arr = self._validate(calendar, hourly_temperature_c)
        mean = float(arr.mean())
        return mean + (arr - mean) * self.amplification


@dataclass
class HeatWaveScenario(ClimateScenario):
    """Inject one or more heat waves: sustained temperature excursions.

    Each heat wave raises temperature by ``peak_excess_c`` at its centre with
    a smooth (raised-cosine) ramp over ``duration_days`` days, starting at
    ``start_day`` of the horizon (0-based day index, not day-of-year).
    """

    start_day: float = 550.0
    duration_days: float = 7.0
    peak_excess_c: float = 8.0
    name: str = field(default="heat-wave", init=False)

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigurationError("duration_days must be positive")
        if self.start_day < 0:
            raise ConfigurationError("start_day must be non-negative")

    def _excess(self, calendar: SimulationCalendar) -> np.ndarray:
        hours = calendar.hour_grid(1.0)
        day = hours / 24.0
        centre = self.start_day + self.duration_days / 2.0
        half = self.duration_days / 2.0
        distance = np.abs(day - centre)
        inside = distance < half
        profile = np.where(inside, 0.5 * (1.0 + np.cos(np.pi * distance / half)), 0.0)
        return self.peak_excess_c * profile

    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        arr = self._validate(calendar, hourly_temperature_c)
        return arr + self._excess(calendar)


@dataclass
class ColdSnapScenario(HeatWaveScenario):
    """A cold snap: the mirror image of a heat wave (temperature *drop*).

    Cold snaps matter because New England grid prices spike under winter gas
    constraints, stressing the cost side even though cooling gets cheaper.
    """

    start_day: float = 380.0
    duration_days: float = 5.0
    peak_excess_c: float = 12.0
    name: str = field(default="cold-snap", init=False)

    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        arr = self._validate(calendar, hourly_temperature_c)
        return arr - self._excess(calendar)


class CompositeScenario(ClimateScenario):
    """Apply several scenarios in sequence (left to right)."""

    def __init__(self, scenarios: Sequence[ClimateScenario], name: str | None = None) -> None:
        if not scenarios:
            raise ConfigurationError("CompositeScenario requires at least one scenario")
        self.scenarios = tuple(scenarios)
        self.name = name or "+".join(s.name for s in self.scenarios)

    def apply(self, calendar: SimulationCalendar, hourly_temperature_c: np.ndarray) -> np.ndarray:
        arr = self._validate(calendar, hourly_temperature_c)
        for scenario in self.scenarios:
            arr = scenario.apply(calendar, arr)
        return arr
