"""Reproducible random-number-generation utilities.

Every stochastic component in the toolkit (trace generators, grid models,
user populations, forecast noise) draws from a :class:`numpy.random.Generator`
obtained through this module, so an experiment is fully determined by a single
integer seed plus a stream name.  Named streams keep components statistically
independent: adding samples to the "weather" stream does not perturb the
"workload" stream, which is essential when comparing policies on identical
traces (the ablation benchmarks rely on this).
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "derive_seed", "make_rng", "RngStreams", "spawn_rngs"]

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used when callers do not specify one. Chosen arbitrarily but
#: fixed so that examples and benchmarks are reproducible out of the box.
DEFAULT_SEED = 20220527  # IPDPSW 2022 workshop date.


def derive_seed(base_seed: int, *names: Union[str, int]) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of stream names.

    The derivation hashes the base seed together with the names using BLAKE2b,
    so distinct names yield (with overwhelming probability) distinct,
    uncorrelated seeds, and the mapping is stable across processes and Python
    versions (unlike the built-in ``hash``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(base_seed).to_bytes(16, "little", signed=True))
    for name in names:
        h.update(b"\x00")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest(), "little") % (2**63)


def make_rng(seed: SeedLike = None, *names: Union[str, int]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed and stream names.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an existing
        generator (returned unchanged if no names are given, otherwise used to
        draw a child seed).
    names:
        Optional stream names; when present, a child seed is derived so that
        different components do not share a stream.
    """
    if isinstance(seed, np.random.Generator):
        if not names:
            return seed
        child_seed = int(seed.integers(0, 2**63))
        return np.random.default_rng(derive_seed(child_seed, *names))
    base = DEFAULT_SEED if seed is None else int(seed)
    if names:
        base = derive_seed(base, *names)
    return np.random.default_rng(base)


def spawn_rngs(seed: SeedLike, count: int, prefix: str = "task") -> list[np.random.Generator]:
    """Spawn ``count`` independent generators, e.g. one per parallel sweep task."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [make_rng(seed, prefix, index) for index in range(count)]


class RngStreams:
    """A registry of named, independent random streams derived from one seed.

    Example
    -------
    >>> streams = RngStreams(seed=7)
    >>> weather_rng = streams.get("weather")
    >>> workload_rng = streams.get("workload")

    Repeated calls with the same name return the *same* generator object so a
    component can keep drawing from its stream across calls.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Freeze the state of an externally supplied generator into a seed.
            self._base_seed = int(seed.integers(0, 2**63))
        else:
            self._base_seed = DEFAULT_SEED if seed is None else int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def base_seed(self) -> int:
        """The base seed from which all streams are derived."""
        return self._base_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._base_seed, name))
        return self._streams[name]

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one stream (or all streams when ``name`` is ``None``) to its initial state."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    def names(self) -> Sequence[str]:
        """Names of streams instantiated so far, in creation order."""
        return tuple(self._streams)

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(base_seed={self._base_seed}, streams={list(self._streams)})"
