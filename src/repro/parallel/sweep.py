"""Parameter sweeps with reproducible per-point seeds.

A sweep point is a dictionary of parameter values plus a derived seed; the
sweep applies a user function to every point (optionally across processes)
and collects ``(point, value)`` pairs.  Benchmarks use this for power-cap
sweeps, deferrable-fraction ablations, and stress-scenario batteries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..rng import derive_seed
from .pool import ParallelConfig, map_parallel

__all__ = ["SweepPoint", "SweepResult", "grid_points", "ParameterSweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep.

    Attributes
    ----------
    index:
        Position of the point in the sweep (stable across runs).
    params:
        Parameter name -> value mapping for this point.
    seed:
        Seed derived from the sweep's master seed and the point index, to be
        used for any randomness inside the evaluated function.
    """

    index: int
    params: Mapping[str, Any]
    seed: int


@dataclass(frozen=True)
class SweepResult:
    """All evaluated points of a sweep with their returned values."""

    points: tuple[SweepPoint, ...]
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.values):
            raise ConfigurationError("points and values must have the same length")

    def __len__(self) -> int:
        return len(self.points)

    def as_records(self) -> list[dict[str, Any]]:
        """One flat record per point: parameters plus the value under ``"value"``."""
        records = []
        for point, value in zip(self.points, self.values):
            record = dict(point.params)
            record["value"] = value
            records.append(record)
        return records

    def best(self, key: Callable[[Any], float], *, maximize: bool = False) -> tuple[SweepPoint, Any]:
        """The point whose value minimises (or maximises) ``key(value)``.

        Ties are broken by the lowest point index in both modes, so the
        selection is deterministic and independent of the optimization sense.
        """
        if not self.points:
            raise ConfigurationError("cannot select the best point of an empty sweep")
        scores = [key(value) for value in self.values]
        best_score = max(scores) if maximize else min(scores)
        best_index = scores.index(best_score)
        return self.points[best_index], self.values[best_index]


def grid_points(grid: Mapping[str, Sequence[Any]], *, seed: int = 0) -> list[SweepPoint]:
    """Cartesian-product sweep points from a parameter grid.

    The iteration order (and therefore each point's index and seed) is the
    product order of the grid as given, so runs are reproducible as long as
    the grid definition does not change.
    """
    if not grid:
        raise ConfigurationError("grid must contain at least one parameter")
    names = list(grid.keys())
    value_lists = [list(grid[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ConfigurationError(f"parameter {name!r} has no values")
    points = []
    for index, combination in enumerate(itertools.product(*value_lists)):
        params = dict(zip(names, combination))
        points.append(SweepPoint(index=index, params=params, seed=derive_seed(seed, "sweep", index)))
    return points


@dataclass
class ParameterSweep:
    """Evaluates a function over sweep points, optionally in parallel.

    Attributes
    ----------
    function:
        Callable taking a :class:`SweepPoint` and returning any picklable value.
    parallel:
        Execution configuration (serial by default).
    """

    function: Callable[[SweepPoint], Any]
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    def run(self, points: Sequence[SweepPoint]) -> SweepResult:
        """Evaluate every point and return the collected results."""
        if not points:
            raise ConfigurationError("sweep requires at least one point")
        values = map_parallel(self.function, points, self.parallel)
        return SweepResult(points=tuple(points), values=tuple(values))

    def run_grid(self, grid: Mapping[str, Sequence[Any]], *, seed: int = 0) -> SweepResult:
        """Convenience: build grid points and run them."""
        return self.run(grid_points(grid, seed=seed))
