"""Process-pool mapping with sensible fallbacks.

Following the HPC guidance of "make it work, measure, then parallelise the
bottleneck": the sweep harness uses plain ``ProcessPoolExecutor`` chunked
mapping, but falls back to serial execution when the task list is small
(process start-up would dominate) or when ``n_workers <= 1`` — which also
keeps the code path identical and easily testable without multiprocessing.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["ParallelConfig", "map_parallel"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Controls how a sweep is executed.

    Attributes
    ----------
    n_workers:
        Number of worker processes; ``0`` means "use all available cores",
        ``1`` forces serial execution.
    min_tasks_for_processes:
        Below this many tasks the sweep runs serially regardless of
        ``n_workers`` (process start-up costs more than it saves).
    chunksize:
        Tasks submitted to each worker at a time; ``None`` (the default)
        picks a chunk size automatically — about four chunks per worker,
        which balances load against per-chunk dispatch overhead and lets
        worker-local caches (e.g. a campaign's per-spec sessions) serve
        several adjacent tasks.
    """

    n_workers: int = 1
    min_tasks_for_processes: int = 8
    chunksize: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ConfigurationError("n_workers must be >= 0")
        if self.min_tasks_for_processes < 0:
            raise ConfigurationError("min_tasks_for_processes must be >= 0")
        if self.chunksize is not None and self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1 (or None for automatic)")

    def resolved_workers(self) -> int:
        """The actual worker count (resolving 0 to the CPU count)."""
        if self.n_workers == 0:
            return max(1, os.cpu_count() or 1)
        return self.n_workers

    def resolved_chunksize(self, n_tasks: int) -> int:
        """The chunk size used for ``n_tasks`` (resolving the automatic default)."""
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_tasks / (4 * self.resolved_workers())))


def map_parallel(
    function: Callable[[T], R],
    tasks: Iterable[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``function`` to every task, in processes when it is worth it.

    Results are returned in task order regardless of execution order.  The
    function and tasks must be picklable when processes are used; the serial
    path has no such requirement, which tests rely on.
    """
    config = config or ParallelConfig()
    task_list: Sequence[T] = list(tasks)
    workers = config.resolved_workers()
    if workers <= 1 or len(task_list) < config.min_tasks_for_processes:
        return [function(task) for task in task_list]
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(
            executor.map(
                function, task_list, chunksize=config.resolved_chunksize(len(task_list))
            )
        )
