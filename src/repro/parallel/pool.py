"""Process-pool mapping with sensible fallbacks.

Following the HPC guidance of "make it work, measure, then parallelise the
bottleneck": the sweep harness uses plain ``ProcessPoolExecutor`` chunked
mapping, but falls back to serial execution when the task list is small
(process start-up would dominate) or when ``n_workers <= 1`` — which also
keeps the code path identical and easily testable without multiprocessing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["ParallelConfig", "map_parallel"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Controls how a sweep is executed.

    Attributes
    ----------
    n_workers:
        Number of worker processes; ``0`` means "use all available cores",
        ``1`` forces serial execution.
    min_tasks_for_processes:
        Below this many tasks the sweep runs serially regardless of
        ``n_workers`` (process start-up costs more than it saves).
    chunksize:
        Tasks submitted to each worker at a time.
    """

    n_workers: int = 1
    min_tasks_for_processes: int = 8
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ConfigurationError("n_workers must be >= 0")
        if self.min_tasks_for_processes < 0:
            raise ConfigurationError("min_tasks_for_processes must be >= 0")
        if self.chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")

    def resolved_workers(self) -> int:
        """The actual worker count (resolving 0 to the CPU count)."""
        if self.n_workers == 0:
            return max(1, os.cpu_count() or 1)
        return self.n_workers


def map_parallel(
    function: Callable[[T], R],
    tasks: Iterable[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``function`` to every task, in processes when it is worth it.

    Results are returned in task order regardless of execution order.  The
    function and tasks must be picklable when processes are used; the serial
    path has no such requirement, which tests rely on.
    """
    config = config or ParallelConfig()
    task_list: Sequence[T] = list(tasks)
    workers = config.resolved_workers()
    if workers <= 1 or len(task_list) < config.min_tasks_for_processes:
        return [function(task) for task in task_list]
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(function, task_list, chunksize=config.chunksize))
