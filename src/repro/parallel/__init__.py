"""Parallel parameter-sweep harness.

Policy comparisons, power-cap sweeps and stress tests evaluate the same
simulation at many parameter points; :mod:`~repro.parallel.sweep` runs those
points across processes (falling back to serial execution for small sweeps or
when requested), with deterministic per-task seeds derived from the master
seed so results do not depend on worker scheduling.

Scaling guide — two parallel axes
---------------------------------

One :class:`ParallelConfig` (the CLI's ``--workers`` / ``GREENHPC_WORKERS``)
drives two different fan-outs:

* **Across points** — campaigns and sweeps map independent points over a
  process pool (this package).  Small task lists fall back to serial via
  ``min_tasks_for_processes``; results are ordered and seeded
  deterministically either way.
* **Within a point** — a fleet point can additionally step its member sites
  on worker processes (:mod:`repro.fleet.parallel`).  That axis ignores
  ``min_tasks_for_processes``: an explicit multi-worker request always
  parallelises the stepping, and records stay bit-identical to serial.

The axes nest, and worker counts multiply: a campaign at ``--workers W``
whose fleet points also step with W workers runs up to ``W x (F + 1)``
processes (F fleet workers under each of W point evaluators).  Prefer
parallelising the axis that dominates wall-clock — many cheap points →
sweep axis; few points over big fleets → fleet axis — rather than both.
"""

from .pool import map_parallel, ParallelConfig
from .sweep import SweepPoint, SweepResult, ParameterSweep, grid_points

__all__ = [
    "map_parallel",
    "ParallelConfig",
    "SweepPoint",
    "SweepResult",
    "ParameterSweep",
    "grid_points",
]
