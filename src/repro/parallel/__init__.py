"""Parallel parameter-sweep harness.

Policy comparisons, power-cap sweeps and stress tests evaluate the same
simulation at many parameter points; :mod:`~repro.parallel.sweep` runs those
points across processes (falling back to serial execution for small sweeps or
when requested), with deterministic per-task seeds derived from the master
seed so results do not depend on worker scheduling.
"""

from .pool import map_parallel, ParallelConfig
from .sweep import SweepPoint, SweepResult, ParameterSweep, grid_points

__all__ = [
    "map_parallel",
    "ParallelConfig",
    "SweepPoint",
    "SweepResult",
    "ParameterSweep",
    "grid_points",
]
