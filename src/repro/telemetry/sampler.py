"""Power sampling and energy integration over simulated NVML devices.

The measurement pipeline mirrors what ``nvidia-smi --loop`` or a CodeCarbon
daemon does: poll each device's instantaneous power at a fixed period,
timestamp the sample, and integrate the trace into energy.  The sampler also
drives the simulated devices' clocks so sampling and simulation stay in step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import TelemetryError
from ..units import integrate_power
from .nvml_sim import SimulatedGpuDevice, SimulatedNvml

__all__ = ["PowerSample", "EnergyIntegrator", "PowerSampler"]


@dataclass(frozen=True)
class PowerSample:
    """One polled measurement of a single device.

    Attributes
    ----------
    timestamp_s:
        Simulated time at which the sample was taken.
    device_index:
        Index of the sampled device.
    power_w:
        Measured power draw (includes measurement noise).
    utilization:
        Device utilization at the time of the sample.
    temperature_c:
        Device temperature at the time of the sample.
    power_limit_w:
        Power limit enforced at the time of the sample.
    """

    timestamp_s: float
    device_index: int
    power_w: float
    utilization: float
    temperature_c: float
    power_limit_w: float


class EnergyIntegrator:
    """Accumulates sampled power into energy using trapezoidal integration.

    One integrator instance tracks one device (or one aggregate series).
    """

    def __init__(self) -> None:
        self._timestamps: list[float] = []
        self._powers: list[float] = []

    def add(self, timestamp_s: float, power_w: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if power_w < 0:
            raise TelemetryError(f"power_w must be non-negative, got {power_w!r}")
        if self._timestamps and timestamp_s < self._timestamps[-1]:
            raise TelemetryError(
                f"timestamps must be non-decreasing, got {timestamp_s} after {self._timestamps[-1]}"
            )
        self._timestamps.append(float(timestamp_s))
        self._powers.append(float(power_w))

    @property
    def n_samples(self) -> int:
        """Number of samples accumulated so far."""
        return len(self._timestamps)

    def energy_j(self) -> float:
        """Energy of the accumulated trace in joules (0 with fewer than two samples)."""
        if len(self._timestamps) < 2:
            return 0.0
        return integrate_power(np.asarray(self._powers), np.asarray(self._timestamps))

    def mean_power_w(self) -> float:
        """Time-weighted mean power of the trace (0 with fewer than two samples)."""
        if len(self._timestamps) < 2:
            return 0.0
        duration = self._timestamps[-1] - self._timestamps[0]
        if duration == 0:
            return float(np.mean(self._powers))
        return self.energy_j() / duration

    def peak_power_w(self) -> float:
        """Largest sampled power (0 when empty)."""
        if not self._powers:
            return 0.0
        return float(max(self._powers))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (timestamps, powers) as NumPy arrays (copies)."""
        return np.asarray(self._timestamps, dtype=float), np.asarray(self._powers, dtype=float)


class PowerSampler:
    """Polls a :class:`SimulatedNvml` instance at a fixed period.

    Parameters
    ----------
    nvml:
        The simulated NVML library to poll.
    period_s:
        Sampling period in seconds (real deployments use 0.1-10 s; energy
        integration error shrinks with the period).
    devices:
        Optional subset of device indices to sample; all devices by default.

    Notes
    -----
    :meth:`run` advances the simulated clock itself, which is the mode used
    by the tracking layer.  :meth:`sample_now` only records the current state
    and is useful when another component (e.g. the cluster simulator) owns
    the clock.
    """

    def __init__(
        self,
        nvml: SimulatedNvml,
        period_s: float = 1.0,
        devices: Optional[Sequence[int]] = None,
    ) -> None:
        if period_s <= 0:
            raise TelemetryError(f"period_s must be positive, got {period_s!r}")
        self.nvml = nvml
        self.period_s = float(period_s)
        count = nvml.device_count()
        if devices is None:
            self.device_indices = tuple(range(count))
        else:
            indices = tuple(int(i) for i in devices)
            for i in indices:
                if not 0 <= i < count:
                    raise TelemetryError(f"device index {i} out of range [0, {count})")
            if not indices:
                raise TelemetryError("device subset must not be empty")
            self.device_indices = indices
        self.samples: list[PowerSample] = []
        self._integrators: dict[int, EnergyIntegrator] = {
            i: EnergyIntegrator() for i in self.device_indices
        }
        self._aggregate = EnergyIntegrator()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> list[PowerSample]:
        """Record one sample per tracked device at the current simulated time."""
        timestamp = self.nvml.clock_s
        new_samples: list[PowerSample] = []
        total_power = 0.0
        for index in self.device_indices:
            handle = self.nvml.get_handle(index)
            power = self.nvml.device_power_usage_w(handle)
            sample = PowerSample(
                timestamp_s=timestamp,
                device_index=index,
                power_w=power,
                utilization=handle.utilization,
                temperature_c=handle.temperature_c,
                power_limit_w=handle.effective_power_limit_w(),
            )
            new_samples.append(sample)
            self._integrators[index].add(timestamp, power)
            total_power += power
        self._aggregate.add(timestamp, total_power)
        self.samples.extend(new_samples)
        return new_samples

    def run(self, duration_s: float) -> int:
        """Advance simulated time by ``duration_s``, sampling every period.

        Returns the number of sampling rounds performed.  A sample is taken
        at the start of the window and after every full period; a final
        partial period (if any) is advanced without an extra sample so the
        device-side energy counters stay exact.
        """
        if duration_s < 0:
            raise TelemetryError(f"duration_s must be non-negative, got {duration_s!r}")
        if not self.samples:
            self.sample_now()
        rounds = 0
        remaining = duration_s
        while remaining >= self.period_s:
            self.nvml.advance_time(self.period_s)
            self.sample_now()
            remaining -= self.period_s
            rounds += 1
        if remaining > 0:
            self.nvml.advance_time(remaining)
            self.sample_now()
            rounds += 1
        return rounds

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def energy_j(self, device_index: Optional[int] = None) -> float:
        """Integrated energy for one device, or for all tracked devices combined."""
        if device_index is None:
            return self._aggregate.energy_j()
        if device_index not in self._integrators:
            raise TelemetryError(f"device {device_index} is not tracked by this sampler")
        return self._integrators[device_index].energy_j()

    def mean_power_w(self, device_index: Optional[int] = None) -> float:
        """Time-weighted mean power for one device or the aggregate."""
        if device_index is None:
            return self._aggregate.mean_power_w()
        if device_index not in self._integrators:
            raise TelemetryError(f"device {device_index} is not tracked by this sampler")
        return self._integrators[device_index].mean_power_w()

    def peak_power_w(self) -> float:
        """Peak aggregate power across the sampled window."""
        return self._aggregate.peak_power_w()

    def power_trace(self) -> tuple[np.ndarray, np.ndarray]:
        """The aggregate (timestamps, total power) trace as arrays."""
        return self._aggregate.as_arrays()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerSampler(period_s={self.period_s}, devices={self.device_indices}, "
            f"n_samples={len(self.samples)})"
        )
