"""Facility-level efficiency metrics.

Section II.A of the paper lists the candidate quantities an operator might
minimize: kilowatt-hours, power usage effectiveness (PUE), CO2 emitted,
cooling water, dollar cost.  This module implements the standard facility
metrics so that the objective layer (Eq. 1) can expose each of them as an
interchangeable objective.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import DataError

__all__ = [
    "power_usage_effectiveness",
    "it_power_from_facility",
    "carbon_usage_effectiveness",
    "energy_reuse_effectiveness",
    "water_usage_effectiveness",
]

ArrayLike = Union[float, np.ndarray]


def power_usage_effectiveness(facility_power_w: ArrayLike, it_power_w: ArrayLike) -> ArrayLike:
    """PUE = total facility power / IT power.

    Values below 1.0 are physically impossible and indicate inconsistent
    inputs, so they raise :class:`DataError` rather than being returned.
    """
    facility = np.asarray(facility_power_w, dtype=float)
    it = np.asarray(it_power_w, dtype=float)
    if np.any(it <= 0):
        raise DataError("it_power_w must be strictly positive to compute PUE")
    pue = facility / it
    if np.any(pue < 1.0 - 1e-9):
        raise DataError(
            "facility power below IT power; PUE < 1 is impossible — check inputs"
        )
    return pue


def it_power_from_facility(facility_power_w: ArrayLike, pue: ArrayLike) -> ArrayLike:
    """Back out IT power from facility power and PUE."""
    pue_arr = np.asarray(pue, dtype=float)
    if np.any(pue_arr < 1.0):
        raise DataError(f"PUE must be >= 1.0, got {pue!r}")
    return np.asarray(facility_power_w, dtype=float) / pue_arr


def carbon_usage_effectiveness(
    total_co2_g: ArrayLike, it_energy_kwh: ArrayLike
) -> ArrayLike:
    """CUE = total CO2e emissions (g) / IT energy (kWh), i.e. gCO2e per IT kWh."""
    it = np.asarray(it_energy_kwh, dtype=float)
    if np.any(it <= 0):
        raise DataError("it_energy_kwh must be strictly positive to compute CUE")
    co2 = np.asarray(total_co2_g, dtype=float)
    if np.any(co2 < 0):
        raise DataError("total_co2_g must be non-negative")
    return co2 / it


def energy_reuse_effectiveness(
    facility_energy_j: ArrayLike, reused_energy_j: ArrayLike, it_energy_j: ArrayLike
) -> ArrayLike:
    """ERE = (facility energy - reused energy) / IT energy.

    Facilities that export waste heat (district heating etc.) can push ERE
    below 1.0, unlike PUE.
    """
    it = np.asarray(it_energy_j, dtype=float)
    if np.any(it <= 0):
        raise DataError("it_energy_j must be strictly positive to compute ERE")
    facility = np.asarray(facility_energy_j, dtype=float)
    reused = np.asarray(reused_energy_j, dtype=float)
    if np.any(reused < 0):
        raise DataError("reused_energy_j must be non-negative")
    if np.any(reused > facility):
        raise DataError("reused energy cannot exceed facility energy")
    return (facility - reused) / it


def water_usage_effectiveness(water_liters: ArrayLike, it_energy_kwh: ArrayLike) -> ArrayLike:
    """WUE = cooling water used (liters) / IT energy (kWh).

    The paper highlights the often-overlooked water footprint of datacenters
    (20% of server water drawn from stressed watersheds); the cooling model
    reports liters which this converts into the standard WUE metric.
    """
    it = np.asarray(it_energy_kwh, dtype=float)
    if np.any(it <= 0):
        raise DataError("it_energy_kwh must be strictly positive to compute WUE")
    water = np.asarray(water_liters, dtype=float)
    if np.any(water < 0):
        raise DataError("water_liters must be non-negative")
    return water / it
