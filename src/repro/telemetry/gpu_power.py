"""Analytic GPU power and performance models.

The toolkit replaces real ``nvidia-smi`` readings with an analytic model of
GPU power draw as a function of utilization, the configured power limit
("power cap"), and clock throttling.  The model is deliberately simple but
captures the three behaviours the paper's mechanisms rely on:

1. Idle GPUs still draw a significant baseline power (tens of watts), which
   is why poor utilization (10-30% on cloud GPU instances, Section IV.B)
   translates into poor energy efficiency.
2. Power grows roughly affinely with utilization up to the enforced power
   limit, where it saturates.
3. Tightening the power cap below TDP reduces power superlinearly relative
   to the induced slowdown — the empirical observation of Frey et al. [15]
   that makes power caps an attractive control mechanism ``c`` in Eq. 1.

The throughput model follows the usual DVFS-style response: throughput is
roughly proportional to clock frequency, and frequency falls off gently as
the cap tightens, so moderate caps (e.g. 75% of TDP) cost only a few percent
of training speed while saving 15-25% of energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..config import require_fraction, require_positive
from ..errors import ConfigurationError, TelemetryError

__all__ = ["GpuSpec", "GpuPowerModel", "KNOWN_GPUS", "get_gpu_spec"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"V100"``.
    tdp_w:
        Thermal design power — the default power limit in watts.
    idle_power_w:
        Power draw with no work scheduled.
    min_power_limit_w:
        Lowest power limit the (simulated) driver accepts.
    max_boost_clock_mhz / base_clock_mhz:
        Clock range used by the throttling model.
    memory_gb:
        Device memory, used only for placement constraints.
    peak_fp16_tflops:
        Peak throughput used to convert utilization into useful work.
    """

    name: str
    tdp_w: float
    idle_power_w: float
    min_power_limit_w: float
    base_clock_mhz: float
    max_boost_clock_mhz: float
    memory_gb: float
    peak_fp16_tflops: float

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        require_positive(self.base_clock_mhz, "base_clock_mhz")
        require_positive(self.max_boost_clock_mhz, "max_boost_clock_mhz")
        require_positive(self.memory_gb, "memory_gb")
        require_positive(self.peak_fp16_tflops, "peak_fp16_tflops")
        if self.idle_power_w < 0 or self.idle_power_w >= self.tdp_w:
            raise ConfigurationError(
                f"idle_power_w must lie in [0, tdp_w), got {self.idle_power_w!r}"
            )
        if not 0 < self.min_power_limit_w <= self.tdp_w:
            raise ConfigurationError(
                f"min_power_limit_w must lie in (0, tdp_w], got {self.min_power_limit_w!r}"
            )
        if self.max_boost_clock_mhz < self.base_clock_mhz:
            raise ConfigurationError("max_boost_clock_mhz must be >= base_clock_mhz")


#: Specs for the GPU models found in the MIT SuperCloud TX-GAIA system (V100)
#: and in the power-cap study of Frey et al. [15] (V100 and A100).
KNOWN_GPUS: Mapping[str, GpuSpec] = {
    "V100": GpuSpec(
        name="V100",
        tdp_w=250.0,
        idle_power_w=38.0,
        min_power_limit_w=100.0,
        base_clock_mhz=1230.0,
        max_boost_clock_mhz=1380.0,
        memory_gb=32.0,
        peak_fp16_tflops=125.0,
    ),
    "A100": GpuSpec(
        name="A100",
        tdp_w=400.0,
        idle_power_w=52.0,
        min_power_limit_w=100.0,
        base_clock_mhz=1095.0,
        max_boost_clock_mhz=1410.0,
        memory_gb=80.0,
        peak_fp16_tflops=312.0,
    ),
    "A100-40GB": GpuSpec(
        name="A100-40GB",
        tdp_w=400.0,
        idle_power_w=50.0,
        min_power_limit_w=100.0,
        base_clock_mhz=1095.0,
        max_boost_clock_mhz=1410.0,
        memory_gb=40.0,
        peak_fp16_tflops=312.0,
    ),
    "T4": GpuSpec(
        name="T4",
        tdp_w=70.0,
        idle_power_w=10.0,
        min_power_limit_w=60.0,
        base_clock_mhz=585.0,
        max_boost_clock_mhz=1590.0,
        memory_gb=16.0,
        peak_fp16_tflops=65.0,
    ),
}


def get_gpu_spec(name: str) -> GpuSpec:
    """Look up a known GPU spec by (case-insensitive) name."""
    key = name.strip().upper()
    for spec_name, spec in KNOWN_GPUS.items():
        if spec_name.upper() == key:
            return spec
    raise TelemetryError(
        f"unknown GPU model {name!r}; known models: {sorted(KNOWN_GPUS)}"
    )


class GpuPowerModel:
    """Analytic power/throughput model for a single GPU model.

    Parameters
    ----------
    spec:
        The GPU's static description.
    utilization_exponent:
        Shape of the power-vs-utilization curve.  1.0 gives an affine
        response; values slightly below 1.0 make mid-range utilization
        relatively more expensive, which matches measured DL workloads.
    cap_slowdown_exponent:
        Controls how fast throughput degrades as the cap tightens.  With the
        default 0.25, capping a V100 at 70% TDP costs roughly 9% of
        throughput while saving roughly 23% of energy on a saturating job,
        and an 80% cap costs ~6% for ~15% savings — the "large savings for
        minimal slowdown" knee reported by the power-cap study the paper
        cites [15].
    """

    def __init__(
        self,
        spec: GpuSpec,
        *,
        utilization_exponent: float = 0.92,
        cap_slowdown_exponent: float = 0.25,
    ) -> None:
        require_positive(utilization_exponent, "utilization_exponent")
        require_positive(cap_slowdown_exponent, "cap_slowdown_exponent")
        self.spec = spec
        self.utilization_exponent = float(utilization_exponent)
        self.cap_slowdown_exponent = float(cap_slowdown_exponent)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def clamp_power_limit(self, power_limit_w: ArrayLike) -> ArrayLike:
        """Clamp a requested power limit into the driver-supported range."""
        return np.clip(
            np.asarray(power_limit_w, dtype=float),
            self.spec.min_power_limit_w,
            self.spec.tdp_w,
        )

    def uncapped_power_w(self, utilization: ArrayLike) -> ArrayLike:
        """Power draw at the given utilization if no cap were enforced.

        ``utilization`` is the fraction of SM busy time in [0, 1].
        """
        util = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        dynamic_range = self.spec.tdp_w - self.spec.idle_power_w
        return self.spec.idle_power_w + dynamic_range * util**self.utilization_exponent

    def power_w(self, utilization: ArrayLike, power_limit_w: ArrayLike | None = None) -> ArrayLike:
        """Instantaneous power draw under an enforced power limit.

        The device draws the uncapped power or the cap, whichever is lower —
        exactly the behaviour of NVML power-limit enforcement for sustained
        workloads (transient excursions are ignored).
        """
        uncapped = self.uncapped_power_w(utilization)
        if power_limit_w is None:
            return uncapped
        limit = self.clamp_power_limit(power_limit_w)
        return np.minimum(uncapped, limit)

    # ------------------------------------------------------------------
    # Scalar fast paths
    # ------------------------------------------------------------------
    # The cluster simulator evaluates the power/throughput model once per job
    # event (thousands of times per run) on plain floats; routing those calls
    # through the array API costs an order of magnitude in ``np.asarray``
    # round-trips.  These scalar twins perform the identical IEEE-754
    # arithmetic (clip = min/max composition, same ``**`` exponentiation), so
    # their results are bit-equal to the array versions on scalar inputs —
    # asserted by the state-parity test suite.
    def clamp_power_limit_scalar(self, power_limit_w: float) -> float:
        """Scalar twin of :meth:`clamp_power_limit`."""
        return min(max(float(power_limit_w), self.spec.min_power_limit_w), self.spec.tdp_w)

    def uncapped_power_w_scalar(self, utilization: float) -> float:
        """Scalar twin of :meth:`uncapped_power_w`."""
        util = min(max(float(utilization), 0.0), 1.0)
        dynamic_range = self.spec.tdp_w - self.spec.idle_power_w
        return self.spec.idle_power_w + dynamic_range * util**self.utilization_exponent

    def power_w_scalar(self, utilization: float, power_limit_w: Optional[float] = None) -> float:
        """Scalar twin of :meth:`power_w`."""
        uncapped = self.uncapped_power_w_scalar(utilization)
        if power_limit_w is None:
            return uncapped
        return min(uncapped, self.clamp_power_limit_scalar(power_limit_w))

    def relative_throughput_scalar(self, power_limit_w: float, utilization: float = 1.0) -> float:
        """Scalar twin of :meth:`relative_throughput`."""
        limit = self.clamp_power_limit_scalar(power_limit_w)
        demanded = self.uncapped_power_w_scalar(utilization)
        ratio = min(max(limit / max(demanded, 1e-9), 0.0), 1.0)
        return ratio**self.cap_slowdown_exponent

    def slowdown_factor_scalar(self, power_limit_w: float, utilization: float = 1.0) -> float:
        """Scalar twin of :meth:`slowdown_factor`."""
        return 1.0 / self.relative_throughput_scalar(power_limit_w, utilization)

    # ------------------------------------------------------------------
    # Performance under power caps
    # ------------------------------------------------------------------
    def relative_throughput(self, power_limit_w: ArrayLike, utilization: ArrayLike = 1.0) -> ArrayLike:
        """Throughput at the given cap relative to running uncapped (in (0, 1]).

        A cap only throttles the device while the workload would otherwise
        draw more than the cap, so the relevant ratio is the cap over the
        *uncapped power at the job's utilization*, not over TDP.  For a
        saturating job (utilization 1.0) this reduces to ``(cap / TDP)``.
        The concave exponent reproduces the knee shape reported in the
        power-cap benchmarking study the paper cites [15]: the first watts of
        cap reduction are nearly free.
        """
        limit = self.clamp_power_limit(power_limit_w)
        demanded = np.asarray(self.uncapped_power_w(utilization), dtype=float)
        ratio = np.clip(limit / np.maximum(demanded, 1e-9), 0.0, 1.0)
        return np.asarray(ratio, dtype=float) ** self.cap_slowdown_exponent

    def slowdown_factor(self, power_limit_w: ArrayLike, utilization: ArrayLike = 1.0) -> ArrayLike:
        """Multiplicative job-duration factor induced by a power cap (>= 1)."""
        return 1.0 / self.relative_throughput(power_limit_w, utilization)

    def effective_clock_mhz(self, power_limit_w: ArrayLike, utilization: ArrayLike = 1.0) -> ArrayLike:
        """Sustained clock under the cap, interpolating base..boost clocks."""
        rel = self.relative_throughput(power_limit_w, utilization)
        clock = self.spec.max_boost_clock_mhz * rel
        return np.maximum(clock, 0.35 * self.spec.base_clock_mhz)

    # ------------------------------------------------------------------
    # Energy of a fixed amount of work
    # ------------------------------------------------------------------
    def energy_for_work(
        self,
        baseline_duration_s: ArrayLike,
        utilization: ArrayLike = 1.0,
        power_limit_w: ArrayLike | None = None,
    ) -> ArrayLike:
        """Energy (J) to finish a fixed piece of work under a power cap.

        ``baseline_duration_s`` is how long the work takes at TDP with the
        given utilization; tightening the cap stretches the duration by
        :meth:`slowdown_factor` while lowering instantaneous power, and the
        net effect is the energy/time trade-off of the power-cap benchmark.
        """
        duration = np.asarray(baseline_duration_s, dtype=float)
        if np.any(duration < 0):
            raise TelemetryError("baseline_duration_s must be non-negative")
        if power_limit_w is None:
            power = self.power_w(utilization)
            return power * duration
        slowdown = self.slowdown_factor(power_limit_w, utilization)
        power = self.power_w(utilization, power_limit_w)
        return power * duration * slowdown

    def energy_savings_fraction(
        self, power_limit_w: ArrayLike, utilization: ArrayLike = 1.0
    ) -> ArrayLike:
        """Fractional energy savings vs. running uncapped, for fixed work."""
        base = self.energy_for_work(1.0, utilization, None)
        capped = self.energy_for_work(1.0, utilization, power_limit_w)
        return 1.0 - capped / base

    def utilization_for_power(self, power_w: ArrayLike) -> ArrayLike:
        """Invert the power model: utilization that would produce ``power_w``.

        Values outside the achievable power range are clipped into [0, 1].
        Useful for calibrating synthetic traces against target power levels.
        """
        power = np.asarray(power_w, dtype=float)
        dynamic_range = self.spec.tdp_w - self.spec.idle_power_w
        frac = np.clip((power - self.spec.idle_power_w) / dynamic_range, 0.0, 1.0)
        return frac ** (1.0 / self.utilization_exponent)

    def achieved_tflops(self, utilization: ArrayLike, power_limit_w: ArrayLike | None = None) -> ArrayLike:
        """Delivered TFLOP/s for the given utilization and cap."""
        util = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        rel = 1.0 if power_limit_w is None else self.relative_throughput(power_limit_w, util)
        return self.spec.peak_fp16_tflops * util * rel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GpuPowerModel(spec={self.spec.name!r})"
