"""Simulated hardware telemetry: GPU/CPU power models and power sampling.

The paper's measurement story ("needs a GPU, nvidia-smi power hooks")
is reproduced here with a simulated NVML layer.  The public surface mirrors
how real NVML-based tooling (nvidia-smi, Zeus, CodeCarbon) is used:

* :class:`~repro.telemetry.gpu_power.GpuPowerModel` — analytic power draw as a
  function of utilization, power cap, and clocks, calibrated to published
  V100/A100 envelopes.
* :class:`~repro.telemetry.nvml_sim.SimulatedNvml` — a device-handle API
  (``device_count``, ``get_handle``, ``power_usage_w``, ``set_power_limit_w``,
  ``utilization``) that higher layers poll exactly as they would poll NVML.
* :class:`~repro.telemetry.sampler.PowerSampler` — periodic polling and
  trapezoidal energy integration.
* :mod:`~repro.telemetry.metrics` — PUE and related facility metrics.
"""

from .gpu_power import GpuSpec, GpuPowerModel, KNOWN_GPUS, get_gpu_spec
from .cpu_power import CpuSpec, CpuPowerModel, KNOWN_CPUS, get_cpu_spec
from .nvml_sim import SimulatedGpuDevice, SimulatedNvml, NvmlNotInitializedError
from .sampler import PowerSample, PowerSampler, EnergyIntegrator
from .metrics import (
    power_usage_effectiveness,
    carbon_usage_effectiveness,
    energy_reuse_effectiveness,
    it_power_from_facility,
)

__all__ = [
    "GpuSpec",
    "GpuPowerModel",
    "KNOWN_GPUS",
    "get_gpu_spec",
    "CpuSpec",
    "CpuPowerModel",
    "KNOWN_CPUS",
    "get_cpu_spec",
    "SimulatedGpuDevice",
    "SimulatedNvml",
    "NvmlNotInitializedError",
    "PowerSample",
    "PowerSampler",
    "EnergyIntegrator",
    "power_usage_effectiveness",
    "carbon_usage_effectiveness",
    "energy_reuse_effectiveness",
    "it_power_from_facility",
]
