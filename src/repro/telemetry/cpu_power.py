"""Host CPU package power model (RAPL-like).

GPU nodes also burn power in CPUs, memory, fans and NICs.  Real deployments
read these through RAPL counters or BMC telemetry; the simulated equivalent
is a small affine model of package power versus load with an optional
memory term.  The energy tracker combines this with the simulated NVML GPU
readings to produce node-level measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from ..config import require_positive
from ..errors import ConfigurationError, TelemetryError

__all__ = ["CpuSpec", "CpuPowerModel", "KNOWN_CPUS", "get_cpu_spec"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a host CPU package.

    Attributes
    ----------
    name:
        Model name.
    tdp_w:
        Package TDP in watts.
    idle_power_w:
        Package power at idle.
    n_cores:
        Physical core count (both sockets combined for dual-socket nodes).
    dram_power_per_gb_w:
        Approximate DRAM power per GB at full refresh/activity.
    """

    name: str
    tdp_w: float
    idle_power_w: float
    n_cores: int
    dram_power_per_gb_w: float = 0.375

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        if self.idle_power_w < 0 or self.idle_power_w >= self.tdp_w:
            raise ConfigurationError(
                f"idle_power_w must lie in [0, tdp_w), got {self.idle_power_w!r}"
            )
        if self.n_cores <= 0:
            raise ConfigurationError(f"n_cores must be positive, got {self.n_cores!r}")
        if self.dram_power_per_gb_w < 0:
            raise ConfigurationError("dram_power_per_gb_w must be non-negative")


#: CPUs typical of GPU nodes in the SuperCloud era (dual-socket Xeon) plus a
#: smaller part for edge/inference scenarios.
KNOWN_CPUS: Mapping[str, CpuSpec] = {
    "XEON-8260": CpuSpec(name="XEON-8260", tdp_w=2 * 165.0, idle_power_w=2 * 42.0, n_cores=48),
    "XEON-6248": CpuSpec(name="XEON-6248", tdp_w=2 * 150.0, idle_power_w=2 * 40.0, n_cores=40),
    "EPYC-7763": CpuSpec(name="EPYC-7763", tdp_w=2 * 280.0, idle_power_w=2 * 65.0, n_cores=128),
    "XEON-D-2183": CpuSpec(name="XEON-D-2183", tdp_w=100.0, idle_power_w=22.0, n_cores=16),
}


def get_cpu_spec(name: str) -> CpuSpec:
    """Look up a known CPU spec by (case-insensitive) name."""
    key = name.strip().upper()
    for spec_name, spec in KNOWN_CPUS.items():
        if spec_name.upper() == key:
            return spec
    raise TelemetryError(
        f"unknown CPU model {name!r}; known models: {sorted(KNOWN_CPUS)}"
    )


class CpuPowerModel:
    """Affine package-power model: idle + (TDP - idle) * load**exponent.

    Parameters
    ----------
    spec:
        CPU package description.
    load_exponent:
        Curvature of the power-vs-load response; values slightly above 1.0
        reflect turbo behaviour where the last cores are disproportionately
        expensive.
    """

    def __init__(self, spec: CpuSpec, *, load_exponent: float = 1.08) -> None:
        require_positive(load_exponent, "load_exponent")
        self.spec = spec
        self.load_exponent = float(load_exponent)

    def power_w(self, load: ArrayLike, dram_gb_active: ArrayLike = 0.0) -> ArrayLike:
        """Package (+ DRAM) power at the given load fraction in [0, 1]."""
        load_arr = np.clip(np.asarray(load, dtype=float), 0.0, 1.0)
        dram = np.asarray(dram_gb_active, dtype=float)
        if np.any(dram < 0):
            raise TelemetryError("dram_gb_active must be non-negative")
        dynamic = self.spec.tdp_w - self.spec.idle_power_w
        return (
            self.spec.idle_power_w
            + dynamic * load_arr**self.load_exponent
            + dram * self.spec.dram_power_per_gb_w
        )

    def energy_j(self, load: ArrayLike, duration_s: ArrayLike, dram_gb_active: ArrayLike = 0.0) -> ArrayLike:
        """Energy in joules for a constant load over ``duration_s`` seconds."""
        duration = np.asarray(duration_s, dtype=float)
        if np.any(duration < 0):
            raise TelemetryError("duration_s must be non-negative")
        return self.power_w(load, dram_gb_active) * duration

    def load_for_power(self, power_w: ArrayLike) -> ArrayLike:
        """Invert the (DRAM-free) power model; clipped into [0, 1]."""
        power = np.asarray(power_w, dtype=float)
        dynamic = self.spec.tdp_w - self.spec.idle_power_w
        frac = np.clip((power - self.spec.idle_power_w) / dynamic, 0.0, 1.0)
        return frac ** (1.0 / self.load_exponent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuPowerModel(spec={self.spec.name!r})"
