"""A simulated NVML (nvidia-smi) device layer.

Real deployments of energy tracking (CodeCarbon, Zeus, the instrumentation
the paper advocates in Section IV.B) poll NVML for per-GPU power draw,
utilization, temperature and enforce power limits.  This module provides a
drop-in simulated equivalent with the same call patterns:

>>> nvml = SimulatedNvml.create(n_devices=4, gpu_model="V100", seed=0)
>>> handle = nvml.get_handle(0)
>>> nvml.set_utilization(handle, 0.9)
>>> nvml.device_power_usage_w(handle)     # poll like nvmlDeviceGetPowerUsage
>>> nvml.device_set_power_limit_w(handle, 175.0)

The simulated devices keep an internal notion of time (advanced explicitly
via :meth:`SimulatedNvml.advance_time` or implicitly by the
:class:`~repro.telemetry.sampler.PowerSampler`), accumulate energy, and add
small measurement noise so downstream statistics behave like real telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..errors import TelemetryError
from ..rng import SeedLike, make_rng
from .gpu_power import GpuPowerModel, GpuSpec, get_gpu_spec

__all__ = ["NvmlNotInitializedError", "SimulatedGpuDevice", "SimulatedNvml"]


class NvmlNotInitializedError(TelemetryError):
    """Raised when the simulated NVML is used before :meth:`SimulatedNvml.init`."""


@dataclass
class SimulatedGpuDevice:
    """Mutable state of one simulated GPU device.

    Attributes mirror what NVML exposes: current utilization, enforced power
    limit, temperature, plus cumulative energy and busy-time counters used by
    the tracking layer.
    """

    index: int
    model: GpuPowerModel
    utilization: float = 0.0
    power_limit_w: Optional[float] = None
    temperature_c: float = 30.0
    cumulative_energy_j: float = 0.0
    busy_seconds: float = 0.0
    total_seconds: float = 0.0
    measurement_noise_fraction: float = 0.01
    _rng: np.random.Generator = field(default_factory=np.random.default_rng, repr=False)

    @property
    def spec(self) -> GpuSpec:
        """The static spec of this device's GPU model."""
        return self.model.spec

    def effective_power_limit_w(self) -> float:
        """The currently enforced power limit (TDP when unset)."""
        if self.power_limit_w is None:
            return self.spec.tdp_w
        return float(self.model.clamp_power_limit(self.power_limit_w))

    def true_power_w(self) -> float:
        """Noise-free instantaneous power draw."""
        return float(self.model.power_w(self.utilization, self.effective_power_limit_w()))

    def measured_power_w(self) -> float:
        """Instantaneous power draw with multiplicative measurement noise."""
        power = self.true_power_w()
        if self.measurement_noise_fraction <= 0:
            return power
        noise = self._rng.normal(1.0, self.measurement_noise_fraction)
        return max(0.0, power * noise)

    def advance(self, dt_s: float) -> float:
        """Advance device time by ``dt_s`` seconds, returning energy consumed (J)."""
        if dt_s < 0:
            raise TelemetryError(f"dt_s must be non-negative, got {dt_s!r}")
        energy = self.true_power_w() * dt_s
        self.cumulative_energy_j += energy
        self.total_seconds += dt_s
        if self.utilization > 0:
            self.busy_seconds += dt_s
        # Crude thermal response: temperature relaxes towards a load-dependent target.
        target = 30.0 + 50.0 * self.utilization
        tau = 120.0  # seconds
        alpha = 1.0 - float(np.exp(-dt_s / tau))
        self.temperature_c += (target - self.temperature_c) * alpha
        return energy

    def average_utilization(self) -> float:
        """Busy fraction since creation (0 when no time has elapsed)."""
        if self.total_seconds == 0:
            return 0.0
        return self.busy_seconds / self.total_seconds


class SimulatedNvml:
    """Container of simulated GPU devices with an NVML-like API surface.

    Use :meth:`create` for the common homogeneous case, or pass explicit
    devices for heterogeneous setups.  The object must be initialized via
    :meth:`init` before device calls (mirroring ``nvmlInit``); ``create``
    returns an already-initialized instance.
    """

    def __init__(self, devices: Iterable[SimulatedGpuDevice]) -> None:
        self._devices: list[SimulatedGpuDevice] = list(devices)
        if not self._devices:
            raise TelemetryError("SimulatedNvml requires at least one device")
        indices = [d.index for d in self._devices]
        if indices != list(range(len(self._devices))):
            raise TelemetryError(
                f"device indices must be 0..n-1 in order, got {indices}"
            )
        self._initialized = False
        self._clock_s = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        n_devices: int,
        gpu_model: str = "V100",
        *,
        seed: SeedLike = None,
        measurement_noise_fraction: float = 0.01,
    ) -> "SimulatedNvml":
        """Create ``n_devices`` identical simulated GPUs and initialize NVML."""
        if n_devices <= 0:
            raise TelemetryError(f"n_devices must be positive, got {n_devices!r}")
        spec = get_gpu_spec(gpu_model)
        model = GpuPowerModel(spec)
        devices = []
        for index in range(n_devices):
            devices.append(
                SimulatedGpuDevice(
                    index=index,
                    model=model,
                    measurement_noise_fraction=measurement_noise_fraction,
                    _rng=make_rng(seed, "nvml", index),
                )
            )
        nvml = cls(devices)
        nvml.init()
        return nvml

    # ------------------------------------------------------------------
    # Lifecycle (mirrors nvmlInit / nvmlShutdown)
    # ------------------------------------------------------------------
    def init(self) -> None:
        """Initialize the simulated library (idempotent)."""
        self._initialized = True

    def shutdown(self) -> None:
        """Shut the simulated library down; device calls then raise."""
        self._initialized = False

    @property
    def initialized(self) -> bool:
        """Whether :meth:`init` has been called (and not shut down)."""
        return self._initialized

    def _check_initialized(self) -> None:
        if not self._initialized:
            raise NvmlNotInitializedError(
                "SimulatedNvml used before init() or after shutdown()"
            )

    # ------------------------------------------------------------------
    # Device enumeration
    # ------------------------------------------------------------------
    def device_count(self) -> int:
        """Number of simulated devices (``nvmlDeviceGetCount``)."""
        self._check_initialized()
        return len(self._devices)

    def get_handle(self, index: int) -> SimulatedGpuDevice:
        """Return the device handle for ``index`` (``nvmlDeviceGetHandleByIndex``)."""
        self._check_initialized()
        if not 0 <= index < len(self._devices):
            raise TelemetryError(
                f"device index {index} out of range [0, {len(self._devices)})"
            )
        return self._devices[index]

    @property
    def devices(self) -> tuple[SimulatedGpuDevice, ...]:
        """All device handles (initialization not required; used by tests)."""
        return tuple(self._devices)

    # ------------------------------------------------------------------
    # Per-device queries (NVML naming kept recognisable)
    # ------------------------------------------------------------------
    def device_power_usage_w(self, handle: SimulatedGpuDevice) -> float:
        """Current measured power draw in watts."""
        self._check_initialized()
        return handle.measured_power_w()

    def device_utilization(self, handle: SimulatedGpuDevice) -> float:
        """Current compute utilization in [0, 1]."""
        self._check_initialized()
        return handle.utilization

    def device_temperature_c(self, handle: SimulatedGpuDevice) -> float:
        """Current device temperature in Celsius."""
        self._check_initialized()
        return handle.temperature_c

    def device_power_limit_w(self, handle: SimulatedGpuDevice) -> float:
        """Currently enforced power limit in watts."""
        self._check_initialized()
        return handle.effective_power_limit_w()

    def device_total_energy_j(self, handle: SimulatedGpuDevice) -> float:
        """Cumulative energy counter (``nvmlDeviceGetTotalEnergyConsumption``)."""
        self._check_initialized()
        return handle.cumulative_energy_j

    # ------------------------------------------------------------------
    # Per-device controls
    # ------------------------------------------------------------------
    def device_set_power_limit_w(self, handle: SimulatedGpuDevice, limit_w: float) -> float:
        """Set (and clamp) the device power limit, returning the enforced value."""
        self._check_initialized()
        if limit_w <= 0:
            raise TelemetryError(f"power limit must be positive, got {limit_w!r}")
        handle.power_limit_w = float(handle.model.clamp_power_limit(limit_w))
        return handle.power_limit_w

    def device_reset_power_limit(self, handle: SimulatedGpuDevice) -> None:
        """Restore the default power limit (TDP)."""
        self._check_initialized()
        handle.power_limit_w = None

    def set_utilization(self, handle: SimulatedGpuDevice, utilization: float) -> None:
        """Set the workload-driven utilization of a device (simulation hook).

        This is the one call with no real-NVML counterpart: in reality the
        running kernels determine utilization, here the workload model sets it.
        """
        self._check_initialized()
        if not 0.0 <= utilization <= 1.0:
            raise TelemetryError(f"utilization must lie in [0, 1], got {utilization!r}")
        handle.utilization = float(utilization)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def clock_s(self) -> float:
        """Simulated wall-clock time in seconds."""
        return self._clock_s

    def advance_time(self, dt_s: float) -> float:
        """Advance all devices by ``dt_s`` seconds, returning total energy (J)."""
        self._check_initialized()
        if dt_s < 0:
            raise TelemetryError(f"dt_s must be non-negative, got {dt_s!r}")
        total = 0.0
        for device in self._devices:
            total += device.advance(dt_s)
        self._clock_s += dt_s
        return total

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_power_w(self) -> float:
        """Sum of noise-free power across all devices."""
        self._check_initialized()
        return float(sum(d.true_power_w() for d in self._devices))

    def total_energy_j(self) -> float:
        """Sum of cumulative energy across all devices."""
        self._check_initialized()
        return float(sum(d.cumulative_energy_j for d in self._devices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedNvml(n_devices={len(self._devices)}, "
            f"initialized={self._initialized}, clock_s={self._clock_s})"
        )
