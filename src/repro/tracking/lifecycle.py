"""Model life-cycle energy accounting (training vs. experimentation vs. inference).

Section IV.B of the paper stresses that published estimates focus on the
*final* training run while "even less clear are the costs arising through a
model's entire life-cycle", and cites industry figures putting inference at
~90% of production ML infrastructure cost and 80-90% of energy.  This module
makes that accounting explicit:

* **development/experimentation** — hyper-parameter search and failed runs,
  expressed as a multiple of the final training run;
* **training** — the final run, from the
  :class:`~repro.workloads.training.TrainingJobModel`;
* **inference** — a serving fleet from
  :class:`~repro.workloads.inference.InferenceFleetModel` operated over the
  model's deployment lifetime.

The CLAIM-INFER benchmark builds a representative production model and checks
that the inference share lands in the 80-90% band while GPU utilization of
the serving fleet sits far below training utilization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

from ..config import require_non_negative, require_positive
from ..errors import TrackingError
from ..workloads.inference import InferenceFleetModel, InferenceWorkloadSpec
from ..workloads.training import TrainingJobModel, TrainingJobSpec

__all__ = ["LifecycleStage", "LifecycleBreakdown", "LifecycleCostModel"]


class LifecycleStage(enum.Enum):
    """Stages of a model's life-cycle."""

    DEVELOPMENT = "development"
    TRAINING = "training"
    INFERENCE = "inference"


@dataclass(frozen=True)
class LifecycleBreakdown:
    """Energy (kWh) attributed to each life-cycle stage."""

    development_kwh: float
    training_kwh: float
    inference_kwh: float
    deployment_days: float
    training_gpu_hours: float
    inference_gpu_hours: float
    inference_mean_utilization: float
    training_utilization: float

    def __post_init__(self) -> None:
        for name in ("development_kwh", "training_kwh", "inference_kwh"):
            if getattr(self, name) < 0:
                raise TrackingError(f"{name} must be non-negative")

    @property
    def total_kwh(self) -> float:
        """Total life-cycle energy."""
        return self.development_kwh + self.training_kwh + self.inference_kwh

    @property
    def inference_share(self) -> float:
        """Fraction of life-cycle energy spent on inference."""
        total = self.total_kwh
        return self.inference_kwh / total if total > 0 else 0.0

    @property
    def training_share(self) -> float:
        """Fraction of life-cycle energy spent on the final training run."""
        total = self.total_kwh
        return self.training_kwh / total if total > 0 else 0.0

    @property
    def development_share(self) -> float:
        """Fraction of life-cycle energy spent on development/search."""
        total = self.total_kwh
        return self.development_kwh / total if total > 0 else 0.0

    def shares(self) -> Mapping[str, float]:
        """All three shares keyed by stage name."""
        return {
            LifecycleStage.DEVELOPMENT.value: self.development_share,
            LifecycleStage.TRAINING.value: self.training_share,
            LifecycleStage.INFERENCE.value: self.inference_share,
        }


class LifecycleCostModel:
    """Combines training and inference models into a life-cycle estimate.

    Parameters
    ----------
    training_spec:
        The model's training workload.
    inference_spec:
        The model's serving workload.
    development_multiplier:
        Energy of experimentation/hyper-parameter search expressed as a
        multiple of the final training run (published post-mortems put this
        between ~2x and ~10x; default 4x).
    training_gpus:
        GPU count used for the final training run.
    """

    def __init__(
        self,
        training_spec: TrainingJobSpec,
        inference_spec: InferenceWorkloadSpec,
        *,
        development_multiplier: float = 4.0,
        training_gpus: int = 8,
        seed: Optional[int] = None,
    ) -> None:
        require_non_negative(development_multiplier, "development_multiplier")
        if training_gpus <= 0:
            raise TrackingError("training_gpus must be positive")
        self.training_model = TrainingJobModel(training_spec)
        self.inference_model = InferenceFleetModel(inference_spec, seed=seed)
        self.development_multiplier = float(development_multiplier)
        self.training_gpus = int(training_gpus)

    def breakdown(self, deployment_days: float = 365.0) -> LifecycleBreakdown:
        """Life-cycle energy breakdown for a given deployment lifetime."""
        require_positive(deployment_days, "deployment_days")
        training_run = self.training_model.run(self.training_gpus)
        serving = self.inference_model.serve(period_days=deployment_days)
        development_kwh = self.development_multiplier * training_run.total_energy_kwh
        return LifecycleBreakdown(
            development_kwh=development_kwh,
            training_kwh=training_run.total_energy_kwh,
            inference_kwh=serving.total_energy_kwh,
            deployment_days=deployment_days,
            training_gpu_hours=training_run.gpu_hours,
            inference_gpu_hours=serving.n_gpus * deployment_days * 24.0,
            inference_mean_utilization=serving.mean_utilization,
            training_utilization=self.training_model.spec.utilization,
        )

    def inference_share_vs_lifetime(
        self, deployment_days_grid: tuple[float, ...] = (30.0, 90.0, 180.0, 365.0, 730.0)
    ) -> dict[float, float]:
        """Inference's share of life-cycle energy as deployment lifetime grows."""
        return {days: self.breakdown(days).inference_share for days in deployment_days_grid}
