"""Energy & carbon tracking for (simulated) ML experiments.

Section IV.B of the paper argues that consistent measurement and reporting of
energy/carbon alongside accuracy is a precondition for Green A.I.  This
package is the measurement toolchain the paper asks facilities to provide:

* :class:`~repro.tracking.tracker.EnergyTracker` — a context manager that
  polls the (simulated) NVML devices while a workload runs and reports energy,
  average power and utilization, in the style of CodeCarbon / Zeus.
* :mod:`~repro.tracking.emissions` — emission factors and the conversion of
  measured energy into CO2e under a given grid mix.
* :mod:`~repro.tracking.reporting` — structured experiment reports
  (dict / CSV / JSON / markdown table) for papers and leaderboards.
* :mod:`~repro.tracking.lifecycle` — model life-cycle accounting: training +
  experimentation + serving, reproducing the "inference is 80-90% of the
  energy" observation.
"""

from .tracker import EnergyTracker, TrackerReport
from .emissions import EmissionFactor, REGIONAL_EMISSION_FACTORS, emissions_from_energy, equivalent_miles_driven, equivalent_homes_powered_for_a_year
from .reporting import ExperimentReport, ReportCollection
from .lifecycle import LifecycleStage, LifecycleCostModel, LifecycleBreakdown
from .embodied import HardwareFootprint, HARDWARE_FOOTPRINTS, EmbodiedCarbonModel, TotalFootprint

__all__ = [
    "EnergyTracker",
    "TrackerReport",
    "EmissionFactor",
    "REGIONAL_EMISSION_FACTORS",
    "emissions_from_energy",
    "equivalent_miles_driven",
    "equivalent_homes_powered_for_a_year",
    "ExperimentReport",
    "ReportCollection",
    "LifecycleStage",
    "LifecycleCostModel",
    "LifecycleBreakdown",
    "HardwareFootprint",
    "HARDWARE_FOOTPRINTS",
    "EmbodiedCarbonModel",
    "TotalFootprint",
]
