"""Structured experiment reports.

The paper calls for "an active, systematic, and consistent approach towards
collecting and reporting data/information (on energy usage, training
settings, etc.)" and for facilities to provide the logging/instrumentation so
users do not have to.  This module is that reporting surface: an
:class:`ExperimentReport` couples the performance result a paper would
normally report with the energy/carbon measurements, and a
:class:`ReportCollection` renders a set of reports as CSV, JSON or a markdown
leaderboard sorted by an efficiency metric.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..errors import TrackingError
from .tracker import TrackerReport

__all__ = ["ExperimentReport", "ReportCollection"]


@dataclass(frozen=True)
class ExperimentReport:
    """One experiment's joint performance / energy record.

    Attributes
    ----------
    name:
        Experiment name.
    task:
        Task or dataset identifier.
    performance_metric:
        Name of the headline performance metric (e.g. ``"top1_accuracy"``).
    performance_value:
        Value of the headline metric.
    energy_kwh:
        Total measured energy.
    emissions_kg:
        Total CO2e emissions.
    duration_h:
        Wall-clock duration in hours.
    gpu_hours:
        GPU-hours consumed.
    hardware:
        Hardware description (GPU model, node count).
    hyperparameters:
        Training settings needed for reproducibility (the reporting gap the
        paper highlights).
    """

    name: str
    task: str
    performance_metric: str
    performance_value: float
    energy_kwh: float
    emissions_kg: float
    duration_h: float
    gpu_hours: float
    hardware: str = ""
    hyperparameters: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.energy_kwh < 0 or self.emissions_kg < 0 or self.duration_h < 0 or self.gpu_hours < 0:
            raise TrackingError("energy, emissions, duration and gpu_hours must be non-negative")

    @classmethod
    def from_tracker(
        cls,
        tracker_report: TrackerReport,
        *,
        task: str,
        performance_metric: str,
        performance_value: float,
        gpu_hours: Optional[float] = None,
        hardware: str = "",
        hyperparameters: Mapping[str, Any] | None = None,
    ) -> "ExperimentReport":
        """Build a report from an :class:`~repro.tracking.tracker.TrackerReport`."""
        duration_h = tracker_report.duration_s / 3600.0
        return cls(
            name=tracker_report.label,
            task=task,
            performance_metric=performance_metric,
            performance_value=performance_value,
            energy_kwh=tracker_report.energy_kwh,
            emissions_kg=tracker_report.emissions_kg,
            duration_h=duration_h,
            gpu_hours=gpu_hours if gpu_hours is not None else duration_h * tracker_report.n_devices,
            hardware=hardware,
            hyperparameters=dict(hyperparameters or {}),
        )

    @property
    def performance_per_kwh(self) -> float:
        """Headline metric per kWh — the joint performance/efficiency number."""
        if self.energy_kwh == 0:
            return float("inf")
        return self.performance_value / self.energy_kwh

    def as_row(self) -> dict[str, Any]:
        """Flat row used by the collection renderers."""
        return {
            "name": self.name,
            "task": self.task,
            "metric": self.performance_metric,
            "value": self.performance_value,
            "energy_kwh": self.energy_kwh,
            "emissions_kg": self.emissions_kg,
            "duration_h": self.duration_h,
            "gpu_hours": self.gpu_hours,
            "performance_per_kwh": self.performance_per_kwh,
            "hardware": self.hardware,
        }


class ReportCollection:
    """A set of experiment reports with leaderboard-style renderers."""

    def __init__(self, reports: Iterable[ExperimentReport] = ()) -> None:
        self._reports: list[ExperimentReport] = list(reports)

    def add(self, report: ExperimentReport) -> None:
        """Add one report to the collection."""
        self._reports.append(report)

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self):
        return iter(self._reports)

    @property
    def reports(self) -> Sequence[ExperimentReport]:
        """The reports in insertion order."""
        return tuple(self._reports)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_energy_kwh(self) -> float:
        """Summed energy across all reports."""
        return sum(r.energy_kwh for r in self._reports)

    def total_emissions_kg(self) -> float:
        """Summed emissions across all reports."""
        return sum(r.emissions_kg for r in self._reports)

    def leaderboard(self, by: str = "performance_per_kwh", descending: bool = True) -> list[ExperimentReport]:
        """Reports sorted by an efficiency or performance column.

        ``by`` must be one of the keys of :meth:`ExperimentReport.as_row` that
        holds a number.
        """
        if not self._reports:
            return []
        sample = self._reports[0].as_row()
        if by not in sample:
            raise TrackingError(f"unknown leaderboard column {by!r}; available: {sorted(sample)}")
        if not isinstance(sample[by], (int, float)):
            raise TrackingError(f"leaderboard column {by!r} is not numeric")
        return sorted(self._reports, key=lambda r: r.as_row()[by], reverse=descending)

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Render the collection as CSV text."""
        if not self._reports:
            return ""
        rows = [r.as_row() for r in self._reports]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue()

    def to_json(self) -> str:
        """Render the collection as a JSON array."""
        return json.dumps([r.as_row() for r in self._reports], indent=2)

    def to_markdown(self, by: str = "performance_per_kwh") -> str:
        """Render a markdown leaderboard table sorted by ``by``."""
        ranked = self.leaderboard(by=by)
        if not ranked:
            return "(no experiments reported)"
        header = "| rank | name | task | {metric} | energy (kWh) | CO2e (kg) | {by} |".format(
            metric="metric value", by=by
        )
        separator = "|---" * 7 + "|"
        lines = [header, separator]
        for rank, report in enumerate(ranked, start=1):
            row = report.as_row()
            lines.append(
                f"| {rank} | {row['name']} | {row['task']} | {row['value']:.4g} "
                f"| {row['energy_kwh']:.3g} | {row['emissions_kg']:.3g} | {row[by]:.4g} |"
            )
        return "\n".join(lines)
