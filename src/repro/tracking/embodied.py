"""Embodied-carbon accounting for AI hardware.

The paper's introduction points out that "embodied carbon costs such as those
associated with manufacturing hardware for A.I. development and applications
also matter, especially as hardware continues to advance" — i.e. the
environmental footprint of A.I. is not just the electricity of the
datacenter, but also the manufacturing emissions baked into every GPU, server
and rack before the first kernel runs.

This module provides the standard amortization accounting used in life-cycle
assessments (and adopted by the Sustainable-AI literature the paper cites):
each hardware component carries a manufacturing footprint (kgCO2e) and a
service lifetime; usage is charged the footprint pro-rata to the fraction of
the lifetime consumed.  Combining the amortized embodied carbon with the
operational carbon from :mod:`repro.tracking.emissions` yields the total
footprint of a training run or a serving deployment — and shows when embodied
carbon dominates (short jobs on many devices, or very clean grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..config import require_non_negative, require_positive
from ..errors import TrackingError
from ..units import joules_to_kwh

__all__ = [
    "HardwareFootprint",
    "HARDWARE_FOOTPRINTS",
    "EmbodiedCarbonModel",
    "TotalFootprint",
]


@dataclass(frozen=True)
class HardwareFootprint:
    """Manufacturing footprint and service life of one hardware component.

    Attributes
    ----------
    name:
        Component name (GPU model, server chassis, ...).
    manufacturing_kg_co2e:
        Cradle-to-gate manufacturing emissions.
    lifetime_years:
        Expected service life over which the footprint is amortized.
    typical_utilization:
        Fraction of wall-clock time the component is expected to be doing
        useful work over its life; amortization per *useful* hour divides by
        this (idle hardware still ages).
    """

    name: str
    manufacturing_kg_co2e: float
    lifetime_years: float = 4.0
    typical_utilization: float = 0.6

    def __post_init__(self) -> None:
        require_non_negative(self.manufacturing_kg_co2e, "manufacturing_kg_co2e")
        require_positive(self.lifetime_years, "lifetime_years")
        if not 0.0 < self.typical_utilization <= 1.0:
            raise TrackingError("typical_utilization must lie in (0, 1]")

    @property
    def lifetime_hours(self) -> float:
        """Service life in wall-clock hours."""
        return self.lifetime_years * 8760.0

    def amortized_kg_per_hour(self, *, per_useful_hour: bool = False) -> float:
        """Embodied carbon charged per hour of use.

        With ``per_useful_hour=True`` the footprint is spread only over the
        hours the component is expected to be doing useful work, which is the
        fair charge when accounting a specific job on shared hardware.
        """
        hours = self.lifetime_hours
        if per_useful_hour:
            hours *= self.typical_utilization
        return self.manufacturing_kg_co2e / hours


#: Published life-cycle-assessment estimates (order of magnitude) for common
#: AI-relevant hardware.  GPU figures follow vendor LCA reports and the
#: Sustainable-AI literature (~150 kgCO2e per high-end accelerator package);
#: the server figure covers chassis, CPUs, DRAM and storage.
HARDWARE_FOOTPRINTS: Mapping[str, HardwareFootprint] = {
    "V100": HardwareFootprint("V100", manufacturing_kg_co2e=140.0),
    "A100": HardwareFootprint("A100", manufacturing_kg_co2e=160.0),
    "T4": HardwareFootprint("T4", manufacturing_kg_co2e=70.0),
    "GPU-SERVER": HardwareFootprint("GPU-SERVER", manufacturing_kg_co2e=1300.0, lifetime_years=5.0),
    "RACK-SWITCH": HardwareFootprint("RACK-SWITCH", manufacturing_kg_co2e=320.0, lifetime_years=6.0),
}


def get_hardware_footprint(name: str) -> HardwareFootprint:
    """Look up a hardware footprint by (case-insensitive) name."""
    key = name.strip().upper()
    for footprint_name, footprint in HARDWARE_FOOTPRINTS.items():
        if footprint_name.upper() == key:
            return footprint
    raise TrackingError(
        f"unknown hardware {name!r}; known: {sorted(HARDWARE_FOOTPRINTS)}"
    )


@dataclass(frozen=True)
class TotalFootprint:
    """Operational + embodied carbon of one workload."""

    operational_kg: float
    embodied_kg: float

    def __post_init__(self) -> None:
        require_non_negative(self.operational_kg, "operational_kg")
        require_non_negative(self.embodied_kg, "embodied_kg")

    @property
    def total_kg(self) -> float:
        """Total footprint in kgCO2e."""
        return self.operational_kg + self.embodied_kg

    @property
    def embodied_share(self) -> float:
        """Fraction of the total footprint that is embodied carbon."""
        if self.total_kg == 0:
            return 0.0
        return self.embodied_kg / self.total_kg


class EmbodiedCarbonModel:
    """Amortizes hardware manufacturing emissions over workloads.

    Parameters
    ----------
    gpu_model:
        GPU model powering the workload.
    gpus_per_server:
        GPUs per server chassis; the server footprint is split between them.
    per_useful_hour:
        Whether to amortize over expected *useful* hours (default) or over
        raw wall-clock lifetime hours.
    """

    def __init__(
        self,
        gpu_model: str = "V100",
        *,
        gpus_per_server: int = 4,
        per_useful_hour: bool = True,
    ) -> None:
        if gpus_per_server <= 0:
            raise TrackingError("gpus_per_server must be positive")
        self.gpu_footprint = get_hardware_footprint(gpu_model)
        self.server_footprint = get_hardware_footprint("GPU-SERVER")
        self.gpus_per_server = int(gpus_per_server)
        self.per_useful_hour = bool(per_useful_hour)

    def embodied_rate_kg_per_gpu_hour(self) -> float:
        """Embodied carbon charged per GPU-hour (GPU + its share of the server)."""
        gpu_rate = self.gpu_footprint.amortized_kg_per_hour(per_useful_hour=self.per_useful_hour)
        server_rate = (
            self.server_footprint.amortized_kg_per_hour(per_useful_hour=self.per_useful_hour)
            / self.gpus_per_server
        )
        return gpu_rate + server_rate

    def embodied_kg(self, gpu_hours: float) -> float:
        """Embodied carbon attributable to ``gpu_hours`` of use."""
        require_non_negative(gpu_hours, "gpu_hours")
        return gpu_hours * self.embodied_rate_kg_per_gpu_hour()

    def total_footprint(
        self,
        *,
        gpu_hours: float,
        energy_j: float,
        grid_intensity_g_per_kwh: float,
    ) -> TotalFootprint:
        """Operational + embodied carbon for a measured workload."""
        require_non_negative(energy_j, "energy_j")
        require_non_negative(grid_intensity_g_per_kwh, "grid_intensity_g_per_kwh")
        operational_kg = float(joules_to_kwh(energy_j)) * grid_intensity_g_per_kwh / 1e3
        return TotalFootprint(
            operational_kg=operational_kg, embodied_kg=self.embodied_kg(gpu_hours)
        )

    def breakeven_intensity_g_per_kwh(self, mean_power_w: float) -> float:
        """Grid intensity at which embodied and operational carbon rates are equal.

        Below this intensity (very clean grids) the embodied carbon of the
        hardware dominates a job's footprint — the regime in which "buy fewer,
        better-utilized accelerators" beats "buy greener electrons", a point
        the Sustainable-AI literature the paper cites emphasises.
        """
        require_positive(mean_power_w, "mean_power_w")
        embodied_rate_g_per_hour = self.embodied_rate_kg_per_gpu_hour() * 1e3
        kwh_per_hour = mean_power_w / 1e3
        return embodied_rate_g_per_hour / kwh_per_hour
