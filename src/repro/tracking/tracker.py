"""The experiment energy tracker.

Usage mirrors CodeCarbon / Zeus against the *simulated* NVML layer:

>>> from repro.telemetry import SimulatedNvml
>>> from repro.tracking import EnergyTracker
>>> nvml = SimulatedNvml.create(n_devices=2, gpu_model="V100", seed=0)
>>> tracker = EnergyTracker(nvml, region="ISO-NE", sampling_period_s=5.0)
>>> with tracker:
...     # drive the simulated devices as the workload would
...     for handle in nvml.devices:
...         nvml.set_utilization(handle, 0.9)
...     tracker.advance(3600.0)          # one simulated hour of training
>>> report = tracker.report()
>>> report.energy_kwh, report.emissions_g

Because time is simulated, the workload advances the clock explicitly via
:meth:`EnergyTracker.advance`; everything else (per-device sampling, energy
integration, emission conversion) behaves exactly as a wall-clock tracker
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..errors import TrackingError
from ..telemetry.nvml_sim import SimulatedNvml
from ..telemetry.sampler import PowerSampler
from ..units import joules_to_kwh
from .emissions import emissions_from_energy

__all__ = ["TrackerReport", "EnergyTracker"]


@dataclass(frozen=True)
class TrackerReport:
    """Summary produced by :meth:`EnergyTracker.report`."""

    label: str
    duration_s: float
    energy_j: float
    energy_kwh: float
    mean_power_w: float
    peak_power_w: float
    emissions_g: float
    region_or_intensity: Union[str, float]
    n_devices: int
    n_samples: int
    per_device_energy_j: dict[int, float] = field(default_factory=dict)
    mean_utilization: float = 0.0

    @property
    def emissions_kg(self) -> float:
        """Emissions in kilograms CO2e."""
        return self.emissions_g / 1e3

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary form (used by the reporting layer)."""
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "energy_kwh": self.energy_kwh,
            "mean_power_w": self.mean_power_w,
            "peak_power_w": self.peak_power_w,
            "emissions_kg": self.emissions_kg,
            "region": str(self.region_or_intensity),
            "n_devices": self.n_devices,
            "n_samples": self.n_samples,
            "mean_utilization": self.mean_utilization,
        }


class EnergyTracker:
    """Context-manager energy/carbon tracker over simulated NVML devices.

    Parameters
    ----------
    nvml:
        The simulated NVML library whose devices should be tracked.
    region:
        Region name (see :data:`~repro.tracking.emissions.REGIONAL_EMISSION_FACTORS`)
        or a numeric carbon intensity in gCO2e/kWh.
    sampling_period_s:
        Period at which devices are polled while :meth:`advance` runs.
    label:
        Experiment label recorded in the report.
    devices:
        Optional subset of device indices to track.
    """

    def __init__(
        self,
        nvml: SimulatedNvml,
        *,
        region: Union[str, float] = "ISO-NE",
        sampling_period_s: float = 5.0,
        label: str = "experiment",
        devices: Optional[list[int]] = None,
    ) -> None:
        if sampling_period_s <= 0:
            raise TrackingError("sampling_period_s must be positive")
        self.nvml = nvml
        self.region = region
        self.sampling_period_s = float(sampling_period_s)
        self.label = label
        self._device_subset = devices
        self._sampler: Optional[PowerSampler] = None
        self._started = False
        self._stopped = False
        self._start_clock_s = 0.0
        self._stop_clock_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "EnergyTracker":
        """Begin tracking (idempotent start is an error to catch misuse)."""
        if self._started:
            raise TrackingError("tracker already started")
        self._sampler = PowerSampler(
            self.nvml, period_s=self.sampling_period_s, devices=self._device_subset
        )
        self._start_clock_s = self.nvml.clock_s
        self._sampler.sample_now()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop tracking; further :meth:`advance` calls are rejected."""
        if not self._started:
            raise TrackingError("tracker was never started")
        if self._stopped:
            raise TrackingError("tracker already stopped")
        assert self._sampler is not None
        self._sampler.sample_now()
        self._stop_clock_s = self.nvml.clock_s
        self._stopped = True

    def __enter__(self) -> "EnergyTracker":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._stopped:
            self.stop()

    # ------------------------------------------------------------------
    # Driving simulated time
    # ------------------------------------------------------------------
    def advance(self, duration_s: float) -> None:
        """Advance simulated time by ``duration_s`` while sampling devices."""
        if not self._started or self._stopped:
            raise TrackingError("advance() requires a started, not-yet-stopped tracker")
        assert self._sampler is not None
        if duration_s < 0:
            raise TrackingError("duration_s must be non-negative")
        self._sampler.run(duration_s)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def report(self) -> TrackerReport:
        """Build the summary report (tracker must be stopped first)."""
        if not self._stopped:
            raise TrackingError("report() requires a stopped tracker")
        assert self._sampler is not None
        sampler = self._sampler
        energy_j = sampler.energy_j()
        duration_s = self._stop_clock_s - self._start_clock_s
        per_device = {index: sampler.energy_j(index) for index in sampler.device_indices}
        utilizations = [s.utilization for s in sampler.samples]
        return TrackerReport(
            label=self.label,
            duration_s=duration_s,
            energy_j=energy_j,
            energy_kwh=float(joules_to_kwh(energy_j)),
            mean_power_w=sampler.mean_power_w(),
            peak_power_w=sampler.peak_power_w(),
            emissions_g=float(emissions_from_energy(energy_j, self.region)),
            region_or_intensity=self.region,
            n_devices=len(sampler.device_indices),
            n_samples=len(sampler.samples),
            per_device_energy_j=per_device,
            mean_utilization=float(np.mean(utilizations)) if utilizations else 0.0,
        )
