"""Emission factors and energy-to-carbon conversion.

Converts measured energy into CO2-equivalent emissions under a regional grid
mix, and provides the everyday equivalences (miles driven, homes powered)
that papers such as Strubell et al. [24] popularized and that the paper's
reporting discussion references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from ..errors import DataError
from ..units import joules_to_kwh

__all__ = [
    "EmissionFactor",
    "REGIONAL_EMISSION_FACTORS",
    "emissions_from_energy",
    "equivalent_miles_driven",
    "equivalent_homes_powered_for_a_year",
]

ArrayLike = Union[float, np.ndarray]

#: Average passenger-vehicle emissions (EPA figure): ~404 gCO2e per mile.
GRAMS_CO2_PER_MILE = 404.0

#: Average U.S. household electricity use: ~10,600 kWh per year.
HOUSEHOLD_KWH_PER_YEAR = 10_600.0


@dataclass(frozen=True)
class EmissionFactor:
    """A regional grid emission factor.

    Attributes
    ----------
    region:
        Region identifier (ISO/balancing-authority style).
    g_co2e_per_kwh:
        Average grid carbon intensity.
    renewable_share:
        Approximate share of generation from renewables (informational).
    """

    region: str
    g_co2e_per_kwh: float
    renewable_share: float = 0.0

    def __post_init__(self) -> None:
        if self.g_co2e_per_kwh < 0:
            raise DataError("g_co2e_per_kwh must be non-negative")
        if not 0.0 <= self.renewable_share <= 1.0:
            raise DataError("renewable_share must lie in [0, 1]")


#: Representative 2020-2021 average grid intensities (gCO2e/kWh).
REGIONAL_EMISSION_FACTORS: Mapping[str, EmissionFactor] = {
    "ISO-NE": EmissionFactor("ISO-NE", 268.0, 0.12),
    "CAISO": EmissionFactor("CAISO", 210.0, 0.33),
    "PJM": EmissionFactor("PJM", 380.0, 0.06),
    "MISO": EmissionFactor("MISO", 470.0, 0.11),
    "ERCOT": EmissionFactor("ERCOT", 410.0, 0.25),
    "FRANCE": EmissionFactor("FRANCE", 56.0, 0.23),
    "GERMANY": EmissionFactor("GERMANY", 350.0, 0.45),
    "WORLD-AVG": EmissionFactor("WORLD-AVG", 475.0, 0.28),
}


def get_emission_factor(region: str) -> EmissionFactor:
    """Look up a regional emission factor by (case-insensitive) region name."""
    key = region.strip().upper()
    for name, factor in REGIONAL_EMISSION_FACTORS.items():
        if name.upper() == key:
            return factor
    raise DataError(
        f"unknown region {region!r}; known regions: {sorted(REGIONAL_EMISSION_FACTORS)}"
    )


def emissions_from_energy(
    energy_j: ArrayLike, region_or_intensity: Union[str, float, np.ndarray] = "ISO-NE"
) -> ArrayLike:
    """Emissions in grams CO2e for the given energy.

    ``region_or_intensity`` is either a region name from
    :data:`REGIONAL_EMISSION_FACTORS` or a numeric carbon intensity in
    gCO2e/kWh (scalar or an array aligned with ``energy_j``).
    """
    kwh = joules_to_kwh(energy_j)
    if isinstance(region_or_intensity, str):
        intensity = get_emission_factor(region_or_intensity).g_co2e_per_kwh
    else:
        intensity = np.asarray(region_or_intensity, dtype=float)
        if np.any(intensity < 0):
            raise DataError("carbon intensity must be non-negative")
    return kwh * intensity


def equivalent_miles_driven(grams_co2e: ArrayLike) -> ArrayLike:
    """Equivalent passenger-vehicle miles for the given emissions."""
    grams = np.asarray(grams_co2e, dtype=float)
    if np.any(grams < 0):
        raise DataError("grams_co2e must be non-negative")
    return grams / GRAMS_CO2_PER_MILE


def equivalent_homes_powered_for_a_year(energy_j: ArrayLike) -> ArrayLike:
    """How many average U.S. homes the energy would power for a year."""
    kwh = np.asarray(joules_to_kwh(energy_j), dtype=float)
    if np.any(kwh < 0):
        raise DataError("energy must be non-negative")
    return kwh / HOUSEHOLD_KWH_PER_YEAR
