"""Utilization accounting.

Section IV.B of the paper stresses how poor GPU utilization (10-30% on cloud
GPU instances, 28% average on TPUs) silently inflates the energy footprint of
A.I. workloads, particularly inference.  This module provides the utilization
book-keeping used by the tracking layer and the life-cycle benchmark: a
tracker that accumulates busy/idle GPU-time from a stream of observations,
and summary statistics over job records or power traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .resources import Cluster

__all__ = [
    "UtilizationTracker",
    "UtilizationSummary",
    "utilization_statistics",
    "cluster_utilization_statistics",
]


@dataclass(frozen=True)
class UtilizationSummary:
    """Summary statistics of a utilization series."""

    mean: float
    median: float
    p10: float
    p90: float
    fraction_below_30pct: float
    fraction_above_80pct: float


class UtilizationTracker:
    """Accumulates time-weighted utilization observations.

    Observations are (duration, utilization) pairs — e.g. "this GPU spent
    3600 s at 22% utilization".  The tracker reports the time-weighted mean
    and the busy/idle split used in energy attributions.
    """

    def __init__(self) -> None:
        self._total_time_s = 0.0
        self._weighted_utilization = 0.0
        self._busy_time_s = 0.0

    def observe(self, duration_s: float, utilization: float) -> None:
        """Record ``duration_s`` seconds spent at ``utilization`` (in [0, 1])."""
        if duration_s < 0:
            raise DataError(f"duration_s must be non-negative, got {duration_s!r}")
        if not 0.0 <= utilization <= 1.0:
            raise DataError(f"utilization must lie in [0, 1], got {utilization!r}")
        self._total_time_s += duration_s
        self._weighted_utilization += duration_s * utilization
        if utilization > 0:
            self._busy_time_s += duration_s

    @property
    def total_time_s(self) -> float:
        """Total observed time."""
        return self._total_time_s

    @property
    def busy_fraction(self) -> float:
        """Fraction of observed time with non-zero utilization."""
        if self._total_time_s == 0:
            return 0.0
        return self._busy_time_s / self._total_time_s

    @property
    def mean_utilization(self) -> float:
        """Time-weighted mean utilization (0 when nothing observed)."""
        if self._total_time_s == 0:
            return 0.0
        return self._weighted_utilization / self._total_time_s

    def merge(self, other: "UtilizationTracker") -> "UtilizationTracker":
        """Return a new tracker combining this one with ``other``."""
        merged = UtilizationTracker()
        merged._total_time_s = self._total_time_s + other._total_time_s
        merged._weighted_utilization = self._weighted_utilization + other._weighted_utilization
        merged._busy_time_s = self._busy_time_s + other._busy_time_s
        return merged


def utilization_statistics(utilizations: Sequence[float] | np.ndarray) -> UtilizationSummary:
    """Distributional summary of a collection of utilization observations.

    The ``fraction_below_30pct`` statistic is the headline number from the
    paper's inference discussion (AWS p3 instances at 10-30% utilization).
    """
    arr = np.asarray(list(utilizations), dtype=float)
    if arr.size == 0:
        raise DataError("utilization_statistics requires at least one observation")
    if np.any((arr < 0) | (arr > 1)):
        raise DataError("utilizations must lie in [0, 1]")
    return UtilizationSummary(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        fraction_below_30pct=float(np.mean(arr < 0.30)),
        fraction_above_80pct=float(np.mean(arr > 0.80)),
    )


def cluster_utilization_statistics(cluster: "Cluster") -> UtilizationSummary:
    """Distributional summary of the busy GPUs' utilizations, straight from state.

    Reads the cluster's utilization array through
    :meth:`~repro.cluster.resources.Cluster.busy_utilizations` — one
    vectorized slice of the busy mask rather than a Python sweep over GPU
    objects.  Raises :class:`~repro.errors.DataError` when no GPU is busy
    (an idle cluster has no utilization distribution to summarise).
    """
    busy = cluster.busy_utilizations()
    if busy.size == 0:
        raise DataError("cluster_utilization_statistics requires at least one busy GPU")
    return utilization_statistics(busy)
