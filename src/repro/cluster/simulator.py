"""The cluster simulator.

Executes a trace of :class:`~repro.scheduler.job.Job` objects on a
:class:`~repro.cluster.resources.Cluster` under a chosen scheduling policy,
with optional coupling to a weather trace (cooling overhead), a grid model
(carbon intensity and price) and a facility power budget.  It produces the
hourly power series and the job-level statistics that every policy-comparison
experiment in the paper's framework needs: total IT and facility energy,
emissions, cost, wait times, deadline misses, and delivered GPU-hours (the
activity quantity ``A`` of Eq. 1).

Design notes
------------
* Event-driven: job submissions and completions are events; a TICK event at a
  fixed cadence records the power series and lets time-varying context
  (carbon intensity, temperature) influence scheduling decisions.
* IT power is delta-maintained by the cluster itself: each allocate/release/
  re-cap adjusts the running total by the affected job's own GPUs, so reading
  it at a tick or scheduling round is O(1).  ``parity_check=True`` re-derives
  the value from the state arrays (the vectorized debug checkpoint) after
  every allocation change and raises on divergence.
* The hourly PUE curve is evaluated once, vectorized over the whole weather
  trace, at construction; per-round context lookups and the tick-series PUE
  are O(1) indexing into it rather than per-tick scalar ``np.asarray``
  round-trips.
* Scheduling happens after every batch of simultaneous events, so a finish
  and the start of the next job can occur at the same simulated instant.
  Started jobs are removed from the pending queue once per round (by id),
  not by rebuilding the queue per started job.
* Lifecycle hooks: :class:`~repro.cluster.observers.SimulatorObserver`\\ s
  receive ``on_job_start`` / ``on_job_finish`` / ``on_round`` / ``on_tick``
  callbacks, so adaptive controllers and telemetry live outside the loop.
  Observers are attached explicitly (``observers=`` / :meth:`ClusterSimulator.
  add_observer`) or implicitly by the scheduling policy via
  :meth:`~repro.scheduler.base.Scheduler.observers`.  With no observers the
  hook sites are a single falsy check — the hot path is unchanged.
* Stepping API: :meth:`ClusterSimulator.run` is a thin composition of
  :meth:`~ClusterSimulator.begin` (validate and enqueue the trace),
  :meth:`~ClusterSimulator.advance` (process events strictly before a time
  bound) and :meth:`~ClusterSimulator.finalize` (drain to the horizon, cut
  off still-running jobs, assemble the result).  Jobs may also be fed in
  mid-run with :meth:`~ClusterSimulator.submit`, which is what lets a
  :class:`~repro.fleet.FleetSimulator` co-simulate several sites in hourly
  lockstep and dispatch arriving jobs between them — the event order (and
  therefore every job record) is bit-identical to a monolithic ``run()``
  of the same per-site trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..config import FacilityConfig, require_positive
from ..errors import CheckpointError, SimulationError, SteppingError
from ..grid.iso_ne import IsoNeLikeGrid
from ..obs.recorder import get_recorder
from ..scheduler.base import ScheduleDecision, Scheduler, SchedulingContext
from ..scheduler.job import Job, JobState
from .cooling import CoolingModel
from .events import Event, EventQueue, EventType
from .observers import SimulatorObserver
from .resources import Cluster

__all__ = [
    "SimulationConfig",
    "JobRecord",
    "SimulationResult",
    "SitePowerSummary",
    "SimulatorSnapshot",
    "SNAPSHOT_VERSION",
    "ClusterSimulator",
    "SimulatorObserver",
]

#: Version of the simulator snapshot payload format.  Bumped on any change to
#: the layout produced by :meth:`ClusterSimulator.snapshot`; restore refuses
#: payloads from a different version instead of mis-reading them.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    horizon_h:
        Length of the simulated window in hours.  Jobs still running at the
        horizon are accounted for up to the horizon only.
    tick_h:
        Cadence of the power-recording / re-scheduling tick.
    facility_power_budget_w:
        Optional facility power budget passed to the scheduler.
    carbon_threshold_quantile:
        Quantile of the horizon's carbon-intensity distribution used as the
        "green hour" threshold for carbon-aware policies.
    """

    horizon_h: float = 7.0 * 24.0
    tick_h: float = 1.0
    facility_power_budget_w: Optional[float] = None
    carbon_threshold_quantile: float = 0.5

    def __post_init__(self) -> None:
        require_positive(self.horizon_h, "horizon_h")
        require_positive(self.tick_h, "tick_h")
        if self.facility_power_budget_w is not None and self.facility_power_budget_w <= 0:
            raise SimulationError("facility_power_budget_w must be positive when given")
        if not 0.0 <= self.carbon_threshold_quantile <= 1.0:
            raise SimulationError("carbon_threshold_quantile must lie in [0, 1]")


@dataclass(frozen=True)
class JobRecord:
    """Immutable per-job outcome extracted at the end of a run."""

    job_id: str
    user_id: str
    queue_name: str
    n_gpus: int
    submit_time_h: float
    start_time_h: Optional[float]
    finish_time_h: Optional[float]
    wait_time_h: Optional[float]
    baseline_duration_h: float
    actual_duration_h: Optional[float]
    power_cap_w: Optional[float]
    energy_j: float
    completed: bool
    had_deadline: bool
    missed_deadline: bool


@dataclass
class SimulationResult:
    """Everything a policy-comparison experiment needs from one run."""

    scheduler_name: str
    config: SimulationConfig
    tick_times_h: np.ndarray
    it_power_w: np.ndarray
    facility_power_w: np.ndarray
    pue: np.ndarray
    carbon_intensity_g_per_kwh: Optional[np.ndarray]
    price_per_mwh: Optional[np.ndarray]
    job_records: list[JobRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Energy / emissions / cost totals
    # ------------------------------------------------------------------
    @property
    def it_energy_kwh(self) -> float:
        """Total IT energy over the horizon in kWh."""
        return float(np.sum(self.it_power_w) * self.config.tick_h / 1e3)

    @property
    def facility_energy_kwh(self) -> float:
        """Total facility energy (IT + cooling overhead) in kWh."""
        return float(np.sum(self.facility_power_w) * self.config.tick_h / 1e3)

    @property
    def cooling_energy_kwh(self) -> float:
        """Cooling / overhead energy in kWh."""
        return self.facility_energy_kwh - self.it_energy_kwh

    @property
    def average_pue(self) -> float:
        """Energy-weighted average PUE over the horizon."""
        if self.it_energy_kwh == 0:
            return float("nan")
        return self.facility_energy_kwh / self.it_energy_kwh

    @property
    def total_emissions_kg(self) -> float:
        """Total emissions in kgCO2e (0 when no grid model was attached)."""
        if self.carbon_intensity_g_per_kwh is None:
            return 0.0
        hourly_kwh = self.facility_power_w * self.config.tick_h / 1e3
        grams = float(np.sum(hourly_kwh * self.carbon_intensity_g_per_kwh))
        return grams / 1e3

    @property
    def total_cost_usd(self) -> float:
        """Total electricity cost in dollars (0 when no grid model was attached)."""
        if self.price_per_mwh is None:
            return 0.0
        hourly_mwh = self.facility_power_w * self.config.tick_h / 1e6
        return float(np.sum(hourly_mwh * self.price_per_mwh))

    @property
    def peak_facility_power_w(self) -> float:
        """Largest facility power observed at any tick."""
        if self.facility_power_w.size == 0:
            return 0.0
        return float(np.max(self.facility_power_w))

    # ------------------------------------------------------------------
    # Activity / service quality (the A(.) >= alpha side of Eq. 1)
    # ------------------------------------------------------------------
    @property
    def completed_jobs(self) -> int:
        """Number of jobs that completed within the horizon."""
        return sum(1 for r in self.job_records if r.completed)

    @property
    def delivered_gpu_hours(self) -> float:
        """Baseline GPU-hours of work completed (the useful-work measure of activity)."""
        return sum(r.n_gpus * r.baseline_duration_h for r in self.job_records if r.completed)

    @property
    def mean_wait_h(self) -> float:
        """Mean queue wait among jobs that started (NaN when none started)."""
        waits = [r.wait_time_h for r in self.job_records if r.wait_time_h is not None]
        return float(np.mean(waits)) if waits else float("nan")

    @property
    def p95_wait_h(self) -> float:
        """95th-percentile queue wait among jobs that started."""
        waits = [r.wait_time_h for r in self.job_records if r.wait_time_h is not None]
        return float(np.percentile(waits, 95)) if waits else float("nan")

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying jobs that missed (or never met) their deadline."""
        deadline_jobs = [r for r in self.job_records if r.had_deadline]
        if not deadline_jobs:
            return 0.0
        missed = sum(1 for r in deadline_jobs if r.missed_deadline or not r.completed)
        return missed / len(deadline_jobs)

    @property
    def energy_per_gpu_hour_kwh(self) -> float:
        """Facility energy per delivered baseline GPU-hour (lower is better)."""
        delivered = self.delivered_gpu_hours
        if delivered == 0:
            return float("nan")
        return self.facility_energy_kwh / delivered

    def summary(self) -> dict[str, float]:
        """A flat dictionary of the headline metrics (for tables and reports)."""
        return {
            "scheduler": self.scheduler_name,
            "it_energy_kwh": self.it_energy_kwh,
            "facility_energy_kwh": self.facility_energy_kwh,
            "cooling_energy_kwh": self.cooling_energy_kwh,
            "average_pue": self.average_pue,
            "emissions_kg": self.total_emissions_kg,
            "cost_usd": self.total_cost_usd,
            "peak_facility_power_kw": self.peak_facility_power_w / 1e3,
            "completed_jobs": float(self.completed_jobs),
            "delivered_gpu_hours": self.delivered_gpu_hours,
            "mean_wait_h": self.mean_wait_h,
            "p95_wait_h": self.p95_wait_h,
            "energy_per_gpu_hour_kwh": self.energy_per_gpu_hour_kwh,
        }


@dataclass(frozen=True)
class SitePowerSummary:
    """One site's tick-aligned power accounting, from a single API.

    :meth:`ClusterSimulator.site_power_summary` builds this from the recorded
    tick series (mid-run or after :meth:`~ClusterSimulator.finalize`), so
    fleet routers, aggregators and reports read total IT + cooling power per
    tick here instead of recomputing PUE products from raw series.
    """

    tick_times_h: np.ndarray
    it_power_w: np.ndarray
    pue: np.ndarray
    facility_power_w: np.ndarray
    tick_h: float

    @property
    def cooling_power_w(self) -> np.ndarray:
        """Cooling / overhead power per tick (facility minus IT)."""
        return self.facility_power_w - self.it_power_w

    @property
    def it_energy_kwh(self) -> float:
        """Total IT energy over the recorded ticks in kWh."""
        return float(np.sum(self.it_power_w) * self.tick_h / 1e3)

    @property
    def facility_energy_kwh(self) -> float:
        """Total facility energy (IT + cooling) over the recorded ticks in kWh."""
        return float(np.sum(self.facility_power_w) * self.tick_h / 1e3)

    @property
    def cooling_energy_kwh(self) -> float:
        """Cooling / overhead energy over the recorded ticks in kWh."""
        return self.facility_energy_kwh - self.it_energy_kwh

    @property
    def peak_facility_power_w(self) -> float:
        """Largest facility power observed at any recorded tick."""
        if self.facility_power_w.size == 0:
            return 0.0
        return float(np.max(self.facility_power_w))


@dataclass(frozen=True)
class SimulatorSnapshot:
    """A versioned, JSON-able capture of a mid-run simulator's dynamic state.

    Produced by :meth:`ClusterSimulator.snapshot` and consumed by
    :meth:`ClusterSimulator.restore`.  The snapshot holds only *dynamic*
    state — the event queue, job table, pending/running sets, tick series,
    cluster allocations and observer state; the static substrates (weather,
    cooling, grid, scheduler) are rebuilt deterministically from the scenario
    spec by the caller, which keeps checkpoints small and lets the service
    share cached substrates across restored sessions.

    Restoring at hour H and advancing to the horizon is **bit-identical** to
    the uninterrupted run: accumulated floats (IT power totals) are stored
    verbatim rather than recomputed, job floats round-trip exactly through
    JSON, and event-queue tie-breaking sequence numbers are preserved.
    """

    version: int
    scheduler_name: str
    now_h: float
    state: dict

    def to_jsonable(self) -> dict:
        """A plain-dict form safe for ``json.dumps`` (and bit-exact back)."""
        return {
            "version": self.version,
            "scheduler_name": self.scheduler_name,
            "now_h": self.now_h,
            "state": self.state,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "SimulatorSnapshot":
        """Rebuild a snapshot from :meth:`to_jsonable` output, checking the version."""
        try:
            version = int(data["version"])
        except (KeyError, TypeError, ValueError):
            raise CheckpointError("snapshot payload has no usable 'version' field") from None
        if version != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot version {version} is not supported "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        return cls(
            version=version,
            scheduler_name=data["scheduler_name"],
            now_h=float(data["now_h"]),
            state=data["state"],
        )


class ClusterSimulator:
    """Runs a job trace through a scheduling policy on a simulated cluster.

    Parameters
    ----------
    cluster:
        The cluster to schedule onto (its allocation state is mutated; use a
        fresh cluster per run).
    scheduler:
        The scheduling policy under test.
    config:
        Run parameters.
    weather_hourly_c:
        Optional hourly outdoor temperature covering at least the horizon;
        required when a cooling model is supplied.
    cooling:
        Optional cooling model; without one the facility runs at PUE = 1.
    grid:
        Optional grid model supplying hourly carbon intensity and price.
    parity_check:
        When true, cross-check the delta-maintained IT power against the
        vectorized full recompute after every allocation change (debug aid;
        raises :class:`~repro.errors.SimulationError` on divergence).
    observers:
        Lifecycle observers to attach; the scheduler's own
        :meth:`~repro.scheduler.base.Scheduler.observers` are appended
        automatically (pipeline stages such as adaptive power caps use this).
    recorder:
        Trace recorder for ``sim.begin``/``sim.advance``/``sim.finalize``
        spans; defaults to the ambient :func:`repro.obs.get_recorder`.  When
        the recorder is enabled a (checkpoint-transient)
        :class:`~repro.obs.observer.MetricsObserver` is attached
        automatically, publishing queue depth, IT power, GPU utilization and
        round/job counters into its metrics registry; when disabled (the
        default) the observer list and the hot loop are untouched.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        config: SimulationConfig | None = None,
        *,
        weather_hourly_c: Optional[np.ndarray] = None,
        cooling: Optional[CoolingModel] = None,
        grid: Optional[IsoNeLikeGrid] = None,
        parity_check: bool = False,
        observers: Optional[Sequence[SimulatorObserver]] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.cooling = cooling
        self.grid = grid
        self.parity_check = bool(parity_check)
        self._recorder = recorder if recorder is not None else get_recorder()
        self._observers: list[SimulatorObserver] = list(observers or ())
        self._observers.extend(scheduler.observers())
        if self._recorder.enabled:
            # Imported lazily: repro.obs.observer subclasses SimulatorObserver,
            # so a module-level import would be circular.
            from ..obs.observer import MetricsObserver

            self._observers.append(MetricsObserver(self._recorder.metrics))
        n_hours_needed = int(np.ceil(self.config.horizon_h)) + 1
        if weather_hourly_c is not None:
            weather = np.asarray(weather_hourly_c, dtype=float)
            if weather.shape[0] < n_hours_needed:
                raise SimulationError(
                    f"weather trace must cover the horizon (+1h): need {n_hours_needed} hours, "
                    f"got {weather.shape[0]}"
                )
            self.weather_hourly_c = weather
        else:
            if cooling is not None:
                raise SimulationError("a cooling model requires a weather trace")
            self.weather_hourly_c = None
        if self.cooling is not None:
            # One vectorized pass over the whole weather trace; every later
            # PUE lookup (context, tick series) indexes into this.
            self._pue_hourly: Optional[np.ndarray] = self.cooling.pue_series(
                self.weather_hourly_c
            )
        else:
            self._pue_hourly = None
        if grid is not None:
            if grid.hours.shape[0] < n_hours_needed:
                raise SimulationError(
                    "grid model horizon is shorter than the simulation horizon"
                )
            self._carbon_hourly = grid.carbon_intensity_g_per_kwh
            self._price_hourly = grid.price_per_mwh
            quantile = self.config.carbon_threshold_quantile
            horizon_slice = self._carbon_hourly[: n_hours_needed]
            self._carbon_threshold = float(np.quantile(horizon_slice, quantile))
            self._renewable_hourly = grid.renewable_share
        else:
            self._carbon_hourly = None
            self._price_hourly = None
            self._carbon_threshold = None
            self._renewable_hourly = None

        # Runtime state
        self._events = EventQueue()
        self._pending: list[Job] = []
        self._running: dict[str, Job] = {}
        self._all_jobs: list[Job] = []
        self._seen_ids: set[str] = set()
        self._current_it_power_w = self.cluster.it_power_w()
        self._begun = False
        self._finalized = False
        self._advanced_to = 0.0
        self._tick_times: list[float] = []
        self._tick_it_power: list[float] = []
        self._power_summary: Optional[SitePowerSummary] = None

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: SimulatorObserver) -> SimulatorObserver:
        """Attach a lifecycle observer (returned for chaining)."""
        self._observers.append(observer)
        return observer

    @property
    def observers(self) -> tuple[SimulatorObserver, ...]:
        """The attached lifecycle observers, in call order."""
        return tuple(self._observers)

    @property
    def running_jobs(self) -> list[Job]:
        """The jobs currently holding allocations (start order)."""
        return list(self._running.values())

    @property
    def current_it_power_w(self) -> float:
        """The delta-maintained IT power as of the last refresh."""
        return self._current_it_power_w

    @property
    def n_pending(self) -> int:
        """Jobs submitted but not yet started (the queue length)."""
        return len(self._pending)

    @property
    def n_running(self) -> int:
        """Jobs currently holding allocations."""
        return len(self._running)

    def scheduling_context(self, now_h: float) -> SchedulingContext:
        """The time-varying context (carbon, price, renewables, PUE) at ``now_h``.

        Public read-only view used by fleet routers and telemetry; the same
        object the scheduler receives at a scheduling round.
        """
        return self._context(now_h)

    def site_power_summary(self) -> SitePowerSummary:
        """Tick-aligned IT / cooling / facility power recorded so far.

        One API for per-site power accounting: valid mid-run (covering the
        ticks processed up to now) and after :meth:`finalize` (covering the
        whole horizon, returned from the finalize-time cache — the arrays are
        shared with the :class:`SimulationResult`, not recomputed).  Fleet
        aggregation and reports read this instead of recomputing PUE products
        from raw series.
        """
        if self._power_summary is not None:
            return self._power_summary
        tick_times = np.asarray(self._tick_times, dtype=float)
        it_power = np.asarray(self._tick_it_power, dtype=float)
        if self._pue_hourly is not None and tick_times.size:
            indices = np.minimum(
                np.maximum(tick_times, 0.0), self.config.horizon_h
            ).astype(int)
            pue = np.asarray(self._pue_hourly[indices], dtype=float)
        else:
            pue = np.ones_like(tick_times)
        return SitePowerSummary(
            tick_times_h=tick_times,
            it_power_w=it_power,
            pue=pue,
            facility_power_w=it_power * pue,
            tick_h=self.config.tick_h,
        )

    # ------------------------------------------------------------------
    # Power accounting
    # ------------------------------------------------------------------
    def refresh_it_power(self) -> None:
        """Pull the cluster's delta-maintained IT power (O(1) read).

        Observers that change allocation power caps must call this so the
        cached total reflects the change.  With ``parity_check`` enabled, the
        value is verified against the vectorized full recompute from the
        state arrays.
        """
        power = self.cluster.it_power_w()
        if self.parity_check:
            expected = self.cluster.recompute_it_power_w()
            if not np.isclose(power, expected, rtol=1e-9, atol=1e-6):
                raise SimulationError(
                    f"incremental IT power diverged from recompute: "
                    f"{power!r} vs {expected!r}"
                )
        self._current_it_power_w = power

    # Backwards-compatible private alias (pre-hook name).
    _refresh_it_power = refresh_it_power

    # ------------------------------------------------------------------
    # Context
    # ------------------------------------------------------------------
    def _hour_index(self, now_h: float) -> int:
        return int(min(max(now_h, 0.0), self.config.horizon_h))

    def _outdoor_temperature(self, now_h: float) -> Optional[float]:
        if self.weather_hourly_c is None:
            return None
        return float(self.weather_hourly_c[self._hour_index(now_h)])

    def _pue_at(self, now_h: float) -> float:
        if self._pue_hourly is None:
            return 1.0
        return float(self._pue_hourly[self._hour_index(now_h)])

    def _context(self, now_h: float) -> SchedulingContext:
        index = self._hour_index(now_h)
        return SchedulingContext(
            now_h=now_h,
            carbon_intensity_g_per_kwh=(
                float(self._carbon_hourly[index]) if self._carbon_hourly is not None else None
            ),
            carbon_intensity_threshold=self._carbon_threshold,
            price_per_mwh=(
                float(self._price_hourly[index]) if self._price_hourly is not None else None
            ),
            renewable_share=(
                float(self._renewable_hourly[index]) if self._renewable_hourly is not None else None
            ),
            outdoor_temperature_c=self._outdoor_temperature(now_h),
            facility_power_budget_w=self.config.facility_power_budget_w,
            current_it_power_w=self._current_it_power_w,
            current_pue=self._pue_at(now_h),
        )

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _start_job(self, decision: ScheduleDecision, now_h: float) -> None:
        job = decision.job
        if job.n_gpus > self.cluster.n_free_gpus:
            raise SimulationError(
                f"scheduler {self.scheduler.name!r} started job {job.job_id!r} "
                f"needing {job.n_gpus} GPUs with only {self.cluster.n_free_gpus} free"
            )
        spec = self.cluster.gpu_spec
        model = self.cluster.gpu_power_model
        cap_fraction = decision.power_cap_fraction
        if cap_fraction is not None:
            cap_w = model.clamp_power_limit_scalar(cap_fraction * spec.tdp_w)
            slowdown = model.slowdown_factor_scalar(cap_w, job.utilization)
        else:
            cap_w = None
            slowdown = 1.0
        actual_duration_h = job.duration_h * slowdown
        self.cluster.allocate(
            job.job_id,
            job.n_gpus,
            utilization=job.utilization,
            power_limit_w=cap_w,
            pack=decision.pack,
        )
        job.mark_started(now_h, power_cap_w=cap_w, duration_h=actual_duration_h)
        self._running[job.job_id] = job
        self._events.push(now_h + actual_duration_h, EventType.JOB_FINISH, job.job_id)
        if self._observers:
            for observer in self._observers:
                observer.on_job_start(self, job, now_h)

    def _finish_job(self, job_id: str, now_h: float, *, completed: bool = True) -> None:
        job = self._running.pop(job_id, None)
        if job is None:
            raise SimulationError(f"finish event for unknown running job {job_id!r}")
        self.cluster.release(job.job_id)
        # Per-job attributed energy: its GPUs' power over the time it actually ran.
        model = self.cluster.gpu_power_model
        gpu_power = model.power_w_scalar(job.utilization, job.assigned_power_cap_w)
        start_h = job.start_time_h if job.start_time_h is not None else now_h
        elapsed_h = max(now_h - start_h, 0.0)
        energy_j = job.n_gpus * gpu_power * elapsed_h * 3600.0
        if completed:
            job.mark_completed(now_h, energy_j)
        else:
            job.mark_interrupted(now_h, energy_j)
        if self._observers:
            for observer in self._observers:
                observer.on_job_finish(self, job, now_h, completed=completed)

    # ------------------------------------------------------------------
    # Main loop (stepping API: begin -> [submit/advance]* -> finalize)
    # ------------------------------------------------------------------
    def begin(self, jobs: Sequence[Job] = ()) -> None:
        """Validate and enqueue a trace plus the tick schedule; run nothing yet.

        May only be called once per simulator.  Additional jobs can be fed in
        later with :meth:`submit` (before simulated time passes their submit
        instant), which is how a fleet co-simulation dispatches arriving jobs
        between lockstepped sites.
        """
        if self._begun:
            raise SteppingError("begin() called twice on the same simulator")
        with self._recorder.span(
            "sim.begin", n_jobs=len(jobs), policy=self.scheduler.name
        ):
            self._begun = True
            for job in jobs:
                self.submit(job)
            config = self.config
            n_ticks = int(np.floor(config.horizon_h / config.tick_h)) + 1
            for k in range(n_ticks):
                self._events.push(k * config.tick_h, EventType.TICK, None)

    def submit(self, job: Job) -> None:
        """Feed one PENDING job into the simulation at its own submit time.

        The submit instant must not lie in the simulator's past (events are
        processed in time order); within one instant, jobs are considered in
        submission (call) order, exactly as a monolithic :meth:`run` would.
        """
        if not self._begun:
            raise SteppingError(
                "submit() before begin(): call begin() once to start the run, "
                "then feed jobs in with submit()"
            )
        if self._finalized:
            raise SteppingError("submit() after finalize(): the run is already over")
        if job.submit_time_h < self._events.now_h - 1e-9:
            raise SteppingError(
                f"submit() of job {job.job_id!r} at t={job.submit_time_h}h lies in the "
                f"simulator's past (events were processed up to t={self._events.now_h}h)"
            )
        if job.job_id in self._seen_ids:
            raise SimulationError(f"duplicate job id {job.job_id!r} in trace")
        if job.state is not JobState.PENDING:
            raise SimulationError(
                f"job {job.job_id!r} must be PENDING at the start of a run"
            )
        self._seen_ids.add(job.job_id)
        self._all_jobs.append(job)
        self._events.push(job.submit_time_h, EventType.JOB_SUBMIT, job)

    def advance(self, until_h: float) -> None:
        """Process every event strictly before ``until_h`` (capped at the horizon).

        The right endpoint is exclusive so a lockstep driver can dispatch the
        jobs of window ``[k, k+1)`` *before* the events of instant ``k+1``
        (ticks, later submits) are drained — preserving the exact event order
        of a monolithic run.
        """
        if not self._begun:
            raise SteppingError("advance() before begin(): call begin() first")
        if self._finalized:
            raise SteppingError("advance() after finalize(): the run is already over")
        if until_h < self._advanced_to - 1e-9:
            raise SteppingError(
                f"advance() to t={until_h}h is behind the cursor: the run has "
                f"already advanced to t={self._advanced_to}h (time only moves forward; "
                f"re-advancing to the same bound is a harmless no-op)"
            )
        self._advanced_to = max(self._advanced_to, float(until_h))
        with self._recorder.span("sim.advance", until_h=float(until_h)):
            self._drain(min(until_h - 1e-9, self.config.horizon_h + 1e-9))

    def _drain(self, limit_h: float) -> None:
        """The event loop: drain instants with time <= ``limit_h``."""
        config = self.config
        while not self._events.is_empty():
            now_h = self._events.peek_time()
            if now_h is None or now_h > limit_h:
                break
            # Drain all events at this instant (finishes first, then submits, then ticks).
            allocations_changed = False
            tick_here = False
            while (not self._events.is_empty()) and abs(self._events.peek_time() - now_h) < 1e-9:
                event = self._events.pop()
                if event.event_type is EventType.JOB_FINISH:
                    self._finish_job(event.payload, now_h)
                    allocations_changed = True
                elif event.event_type is EventType.JOB_SUBMIT:
                    self._pending.append(event.payload)
                elif event.event_type is EventType.TICK:
                    tick_here = True
            if allocations_changed:
                self._refresh_it_power()

            # Scheduling round.
            if self._pending and self.cluster.n_free_gpus > 0:
                context = self._context(now_h)
                decisions = self.scheduler.select(list(self._pending), self.cluster, context)
                started_ids = set()
                for decision in decisions:
                    if decision.job.job_id in started_ids:
                        raise SimulationError(
                            f"scheduler {self.scheduler.name!r} returned job "
                            f"{decision.job.job_id!r} twice"
                        )
                    started_ids.add(decision.job.job_id)
                    self._start_job(decision, now_h)
                if decisions:
                    # One pass over the queue per round (not per started job).
                    self._pending = [j for j in self._pending if j.job_id not in started_ids]
                    self._refresh_it_power()
                if self._observers:
                    for observer in self._observers:
                        observer.on_round(self, now_h, context, decisions)

            if tick_here:
                self._tick_times.append(now_h)
                self._tick_it_power.append(self._current_it_power_w)
                if self._observers:
                    # Measure, then actuate: control actions taken here show
                    # up from the next tick on.
                    for observer in self._observers:
                        observer.on_tick(self, now_h, self._current_it_power_w)

    def finalize(self) -> SimulationResult:
        """Drain to the horizon, cut off still-running jobs, build the result."""
        if not self._begun:
            raise SteppingError("finalize() before begin(): there is no run to finalize")
        if self._finalized:
            raise SteppingError("finalize() called twice on the same simulator")
        config = self.config
        with self._recorder.span("sim.finalize", policy=self.scheduler.name):
            self._drain(config.horizon_h + 1e-9)
        self._finalized = True

        # Jobs still running at the horizon are accounted up to the horizon but
        # do not count as completed work.
        for job_id in list(self._running):
            self._finish_job(job_id, config.horizon_h, completed=False)
        self._refresh_it_power()

        # PUE over the whole tick series in one vectorized lookup (the hourly
        # curve was precomputed at construction).  The summary is cached: the
        # result and later site_power_summary() calls share the same arrays.
        power = self.site_power_summary()
        self._power_summary = power
        tick_times_arr = power.tick_times_h

        if self._carbon_hourly is not None:
            indices = np.clip(tick_times_arr.astype(int), 0, self._carbon_hourly.shape[0] - 1)
            carbon = self._carbon_hourly[indices]
            price = self._price_hourly[indices]
        else:
            carbon = None
            price = None

        records = [self._record_for(job) for job in self._all_jobs]
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            config=config,
            tick_times_h=tick_times_arr,
            it_power_w=power.it_power_w,
            facility_power_w=power.facility_power_w,
            pue=power.pue,
            carbon_intensity_g_per_kwh=carbon,
            price_per_mwh=price,
            job_records=records,
        )

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the given job trace and return the run's results."""
        self.begin(jobs)
        return self.finalize()

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot(self) -> SimulatorSnapshot:
        """Capture the run's full dynamic state as a :class:`SimulatorSnapshot`.

        Valid any time between :meth:`begin` and :meth:`finalize` (typically
        at an hour boundary after :meth:`advance` returns).  Restoring the
        snapshot onto a freshly constructed simulator with the same
        substrates, config and scheduling policy, then advancing to the
        horizon, yields job records bit-identical to the uninterrupted run.

        Events are stored with their payloads reduced to job ids (the job
        table carries the objects); observers contribute their own state via
        :meth:`~repro.cluster.observers.SimulatorObserver.snapshot_state`.
        """
        if not self._begun:
            raise SteppingError("snapshot() before begin(): there is no run to capture")
        if self._finalized:
            raise SteppingError("snapshot() after finalize(): the run is already over")
        events = []
        for event in self._events.pending_events():
            payload = event.payload
            if event.event_type is EventType.JOB_SUBMIT:
                payload = payload.job_id
            elif payload is not None and not isinstance(payload, str):
                raise CheckpointError(
                    f"cannot snapshot {event.event_type.name} event with non-string "
                    f"payload {payload!r}"
                )
            events.append(
                [event.time_h, int(event.event_type), event.sequence, payload]
            )
        config = self.config
        state = {
            "config": {
                "horizon_h": config.horizon_h,
                "tick_h": config.tick_h,
                "facility_power_budget_w": config.facility_power_budget_w,
                "carbon_threshold_quantile": config.carbon_threshold_quantile,
            },
            "now_h": self._events.now_h,
            "advanced_to": self._advanced_to,
            "next_sequence": self._events.next_sequence,
            "events": events,
            "jobs": [job.to_snapshot() for job in self._all_jobs],
            "pending": [job.job_id for job in self._pending],
            "running": list(self._running),
            "tick_times": list(self._tick_times),
            "tick_it_power": list(self._tick_it_power),
            "current_it_power_w": self._current_it_power_w,
            "cluster": self.cluster.snapshot_state(),
            # Transient observers (pure telemetry, e.g. tracing-mode metrics)
            # are invisible to checkpoints, so snapshots restore cleanly
            # whether or not tracing is enabled on the restoring side.
            "observers": [
                observer.snapshot_state()
                for observer in self._observers
                if not observer.transient
            ],
        }
        return SimulatorSnapshot(
            version=SNAPSHOT_VERSION,
            scheduler_name=self.scheduler.name,
            now_h=self._events.now_h,
            state=state,
        )

    def restore(self, snapshot: SimulatorSnapshot) -> None:
        """Adopt a snapshot's dynamic state on this freshly constructed simulator.

        The simulator must have been built with the same substrates (weather,
        cooling, grid), configuration and scheduling policy as the one that
        produced the snapshot, and must not have :meth:`begin`\\ -ed yet —
        :meth:`restore` *is* its begin.  After restoring, continue with
        :meth:`submit`/:meth:`advance`/:meth:`finalize` as usual.
        """
        if self._begun:
            raise SteppingError(
                "restore() on a simulator that already began a run; "
                "construct a fresh simulator to restore into"
            )
        if snapshot.version != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot version {snapshot.version} is not supported "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        if snapshot.scheduler_name != self.scheduler.name:
            raise CheckpointError(
                f"scheduler mismatch: snapshot was taken under "
                f"{snapshot.scheduler_name!r}, this simulator runs {self.scheduler.name!r}"
            )
        state = snapshot.state
        config = self.config
        saved = state["config"]
        for field_name in (
            "horizon_h",
            "tick_h",
            "facility_power_budget_w",
            "carbon_threshold_quantile",
        ):
            if getattr(config, field_name) != saved[field_name]:
                raise CheckpointError(
                    f"config mismatch on {field_name!r}: snapshot has "
                    f"{saved[field_name]!r}, simulator has {getattr(config, field_name)!r}"
                )
        observer_states = state["observers"]
        durable_observers = [obs for obs in self._observers if not obs.transient]
        if len(observer_states) != len(durable_observers):
            raise CheckpointError(
                f"observer count mismatch: snapshot carries {len(observer_states)} "
                f"observer states, simulator has {len(durable_observers)} "
                f"checkpointed observers"
            )

        jobs_by_id: dict[str, Job] = {}
        all_jobs: list[Job] = []
        for data in state["jobs"]:
            job = Job.from_snapshot(data)
            jobs_by_id[job.job_id] = job
            all_jobs.append(job)
        events: list[Event] = []
        for time_h, type_value, sequence, payload in state["events"]:
            event_type = EventType(type_value)
            if event_type is EventType.JOB_SUBMIT:
                payload = jobs_by_id[payload]
            events.append(
                Event(
                    time_h=float(time_h),
                    priority=int(event_type),
                    sequence=int(sequence),
                    event_type=event_type,
                    payload=payload,
                )
            )

        self.cluster.restore_state(state["cluster"])
        self._events.restore(events, float(state["now_h"]), int(state["next_sequence"]))
        self._all_jobs = all_jobs
        self._seen_ids = set(jobs_by_id)
        self._pending = [jobs_by_id[job_id] for job_id in state["pending"]]
        self._running = {job_id: jobs_by_id[job_id] for job_id in state["running"]}
        self._tick_times = [float(t) for t in state["tick_times"]]
        self._tick_it_power = [float(p) for p in state["tick_it_power"]]
        self._current_it_power_w = float(state["current_it_power_w"])
        self._advanced_to = float(state["advanced_to"])
        self._begun = True
        self._finalized = False
        self._power_summary = None
        for observer, observer_state in zip(durable_observers, observer_states):
            observer.restore_state(observer_state)

    @staticmethod
    def _record_for(job: Job) -> JobRecord:
        return JobRecord(
            job_id=job.job_id,
            user_id=job.user_id,
            queue_name=job.queue_name,
            n_gpus=job.n_gpus,
            submit_time_h=job.submit_time_h,
            start_time_h=job.start_time_h,
            finish_time_h=job.finish_time_h,
            wait_time_h=job.wait_time_h(),
            baseline_duration_h=job.duration_h,
            actual_duration_h=job.actual_duration_h,
            power_cap_w=job.assigned_power_cap_w,
            energy_j=job.energy_j,
            completed=job.state is JobState.COMPLETED,
            had_deadline=job.deadline_h is not None,
            missed_deadline=job.missed_deadline(),
        )
