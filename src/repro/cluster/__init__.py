"""Cluster substrate: resources, discrete-event simulation, cooling, utilization.

This package models the datacenter/HPC system whose energy the paper's
framework (Eq. 1) optimizes:

* :mod:`~repro.cluster.resources` — GPUs, nodes and the cluster resource pool
  with allocation/release book-keeping.
* :mod:`~repro.cluster.events` — a small discrete-event engine (heap-based).
* :mod:`~repro.cluster.cooling` — the cooling/PUE model that couples facility
  overhead to outdoor temperature (Fig. 4) and the optimizable cooling
  controller used for the DeepMind-style cooling claim.
* :mod:`~repro.cluster.simulator` — the cluster simulator that executes a job
  trace under a scheduling policy and produces hourly power series, job
  statistics, and energy/cost/carbon totals.
* :mod:`~repro.cluster.utilization` — utilization accounting helpers.
"""

from .resources import GpuResource, NodeState, Node, Cluster, Allocation
from .events import Event, EventType, EventQueue
from .cooling import CoolingConfig, CoolingModel, FixedOverheadCooling, OptimizedCoolingController
from .simulator import ClusterSimulator, SimulationConfig, SimulationResult, JobRecord
from .utilization import UtilizationTracker, utilization_statistics

__all__ = [
    "GpuResource",
    "NodeState",
    "Node",
    "Cluster",
    "Allocation",
    "Event",
    "EventType",
    "EventQueue",
    "CoolingConfig",
    "CoolingModel",
    "FixedOverheadCooling",
    "OptimizedCoolingController",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "JobRecord",
    "UtilizationTracker",
    "utilization_statistics",
]
