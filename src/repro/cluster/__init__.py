"""Cluster substrate: resources, discrete-event simulation, cooling, utilization.

This package models the datacenter/HPC system whose energy the paper's
framework (Eq. 1) optimizes:

* :mod:`~repro.cluster.resources` — GPUs, nodes and the cluster resource pool
  with allocation/release book-keeping.
* :mod:`~repro.cluster.events` — a small discrete-event engine (heap-based).
* :mod:`~repro.cluster.cooling` — the cooling/PUE model that couples facility
  overhead to outdoor temperature (Fig. 4) and the optimizable cooling
  controller used for the DeepMind-style cooling claim.
* :mod:`~repro.cluster.simulator` — the cluster simulator that executes a job
  trace under a scheduling policy and produces hourly power series, job
  statistics, and energy/cost/carbon totals.
* :mod:`~repro.cluster.utilization` — utilization accounting helpers.

Incremental state model
-----------------------
The cluster core is built around persistent, incrementally-maintained state
rather than recomputation.  Per-GPU state (allocated mask, utilization, power
cap) lives in NumPy arrays on :class:`~repro.cluster.resources.Cluster`;
per-node free counters and cluster-wide occupancy totals are updated only for
the nodes an ``allocate``/``release``/``drain`` actually touches, and the
cluster's IT power is delta-maintained so the simulator reads it in O(1) at
every tick and scheduling round.  :class:`~repro.cluster.resources.Node` and
:class:`~repro.cluster.resources.GpuResource` remain available as lightweight
views over the arrays, so scheduler policies and user code keep their
historical object API.  ``Cluster.recompute_it_power_w`` is the vectorized
full recompute retained as a debug/parity checkpoint (the simulator's
``parity_check=True`` verifies the incremental value against it after every
allocation change), and ``tests/test_cluster_state_parity.py`` pins the whole
model — counters, power, and end-to-end ``SimulationResult`` outputs —
against brute-force recounts and the pre-refactor implementation.  The
``supercloud-large`` scenario (256 nodes x 8 A100s) and
``benchmarks/test_bench_simulator_scale.py`` exercise the core at scale.
"""

from .resources import GpuResource, NodeState, Node, Cluster, Allocation
from .events import Event, EventType, EventQueue
from .cooling import CoolingConfig, CoolingModel, FixedOverheadCooling, OptimizedCoolingController
from .simulator import (
    ClusterSimulator,
    JobRecord,
    SimulationConfig,
    SimulationResult,
    SitePowerSummary,
)
from .utilization import UtilizationTracker, cluster_utilization_statistics, utilization_statistics

__all__ = [
    "GpuResource",
    "NodeState",
    "Node",
    "Cluster",
    "Allocation",
    "Event",
    "EventType",
    "EventQueue",
    "CoolingConfig",
    "CoolingModel",
    "FixedOverheadCooling",
    "OptimizedCoolingController",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "SitePowerSummary",
    "JobRecord",
    "UtilizationTracker",
    "cluster_utilization_statistics",
    "utilization_statistics",
]
