"""Lifecycle hooks for the cluster simulator.

A :class:`SimulatorObserver` receives callbacks from
:class:`~repro.cluster.simulator.ClusterSimulator` at well-defined points of
the event loop, so adaptive controllers, telemetry sinks and experiment
instrumentation can react to the run *without* being special-cased inside the
loop itself:

* ``on_job_start`` / ``on_job_finish`` — a job transitioned state (finish
  fires for both completion and horizon interruption);
* ``on_round`` — a scheduling round just executed (the policy was consulted);
* ``on_tick`` — the recording tick fired, *after* the power sample for the
  tick was taken, so control actions an observer applies here show up from
  the next tick on (measure, then actuate).

Observers are attached either explicitly (``ClusterSimulator(...,
observers=[...])`` / ``add_observer``) or implicitly by the scheduling policy:
the simulator asks its scheduler for :meth:`~repro.scheduler.base.Scheduler.
observers` at construction, which is how pipeline stages that carry run-time
state (e.g. the adaptive power-cap stage) get wired into the loop they need.

Every hook receives the simulator itself, giving observers access to the
cluster, the running set and the delta-maintained IT power through public
accessors.  An observer that changes allocation power caps must call
:meth:`~repro.cluster.simulator.ClusterSimulator.refresh_it_power` so the
cached total reflects the change.

This module is deliberately import-light (no scheduler imports) so both the
simulator and the scheduler packages can depend on it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduler.base import ScheduleDecision, SchedulingContext
    from ..scheduler.job import Job
    from .simulator import ClusterSimulator

__all__ = ["SimulatorObserver"]


class SimulatorObserver:
    """Base class for simulator lifecycle hooks; every method is a no-op.

    Subclass and override only the hooks you need.  Hooks must not submit or
    start jobs (that is the scheduler's contract) but may adjust power caps of
    running allocations, sample state, or record series.
    """

    #: Transient observers are pure telemetry sinks: they never influence the
    #: simulation and are excluded from checkpoints entirely, so snapshots
    #: taken with one attached (e.g. the tracing-mode
    #: :class:`~repro.obs.observer.MetricsObserver`) restore cleanly onto a
    #: simulator without it — and vice versa.
    transient: bool = False

    def on_job_start(self, simulator: "ClusterSimulator", job: "Job", now_h: float) -> None:
        """A job just transitioned to RUNNING and holds its allocation."""

    def on_job_finish(
        self, simulator: "ClusterSimulator", job: "Job", now_h: float, *, completed: bool
    ) -> None:
        """A job just left the cluster (``completed=False`` = horizon cut-off)."""

    def on_round(
        self,
        simulator: "ClusterSimulator",
        now_h: float,
        context: "SchedulingContext",
        decisions: "list[ScheduleDecision]",
    ) -> None:
        """A scheduling round just ran; ``decisions`` lists the started jobs."""

    def on_tick(self, simulator: "ClusterSimulator", now_h: float, it_power_w: float) -> None:
        """The recording tick fired; ``it_power_w`` is the sample just taken."""

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        """JSON-able run-time state for checkpointing (``None`` = stateless).

        Observers that carry state *across* scheduling rounds (e.g. the
        adaptive power-cap stage's per-job cap fractions) must override this
        pair so a restored run continues bit-identically; the default
        declares the observer stateless.
        """
        return None

    def restore_state(self, state: Any) -> None:
        """Restore state captured by :meth:`snapshot_state`.

        The default accepts only ``None``; receiving anything else means a
        checkpoint carrying observer state was restored onto an observer
        that does not implement the protocol.
        """
        if state is not None:
            from ..errors import CheckpointError

            raise CheckpointError(
                f"observer {type(self).__name__} received checkpoint state "
                f"but does not implement restore_state()"
            )
