"""A small discrete-event engine for the cluster simulator.

Events are ordered by (time, priority, sequence number): ties at the same
simulated time are broken first by an explicit priority (finishes are
processed before submissions so freed GPUs are visible to the scheduler
within the same instant) and then by insertion order, which keeps runs fully
deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SimulationError

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(enum.IntEnum):
    """Kinds of events processed by the simulator.

    The integer value doubles as the tie-breaking priority at equal times:
    lower values are processed first.
    """

    JOB_FINISH = 0
    JOB_SUBMIT = 1
    CONTROL = 2
    TICK = 3


@dataclass(order=True)
class Event:
    """One scheduled event.

    Only the sort key participates in ordering; the payload is excluded so
    arbitrary (unorderable) objects can ride along.
    """

    time_h: float
    priority: int
    sequence: int
    event_type: EventType = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A heap-based future event list."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now_h = 0.0

    @property
    def now_h(self) -> float:
        """Current simulated time in hours (time of the last popped event)."""
        return self._now_h

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time_h: float, event_type: EventType, payload: Any = None) -> Event:
        """Schedule an event at ``time_h`` (must not be in the past)."""
        if time_h < self._now_h - 1e-12:
            raise SimulationError(
                f"cannot schedule an event at {time_h} before current time {self._now_h}"
            )
        event = Event(
            time_h=float(time_h),
            priority=int(event_type),
            sequence=next(self._counter),
            event_type=event_type,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        event = heapq.heappop(self._heap)
        self._now_h = event.time_h
        return event

    def peek(self) -> Optional[Event]:
        """The next event without removing it (``None`` when empty)."""
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the next event (``None`` when empty)."""
        return self._heap[0].time_h if self._heap else None

    def is_empty(self) -> bool:
        """Whether no events remain."""
        return not self._heap

    def clear(self) -> None:
        """Drop all pending events (the clock is left unchanged)."""
        self._heap.clear()

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def pending_events(self) -> list[Event]:
        """The not-yet-processed events in deterministic (sort-key) order.

        Used by :meth:`~repro.cluster.simulator.ClusterSimulator.snapshot`;
        the heap's internal layout is not canonical, so the dump is sorted.
        """
        return sorted(self._heap)

    def restore(self, events: list[Event], now_h: float, next_sequence: int) -> None:
        """Replace the queue's entire state (events, clock, sequence counter).

        ``next_sequence`` must exceed every restored event's sequence so
        future pushes keep sorting after existing same-instant events —
        exactly as they would have in the uninterrupted run.
        """
        if any(event.sequence >= next_sequence for event in events):
            raise SimulationError(
                "next_sequence must exceed every restored event's sequence"
            )
        self._heap = list(events)
        heapq.heapify(self._heap)
        self._counter = itertools.count(next_sequence)
        self._now_h = float(now_h)

    @property
    def next_sequence(self) -> int:
        """The sequence number the next pushed event would receive.

        Reading it consumes one counter value (sequence numbers only break
        ties, so gaps are harmless).
        """
        return next(self._counter)
