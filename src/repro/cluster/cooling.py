"""Cooling and facility-overhead models.

Two questions from the paper live here:

1. **Fig. 4** — why does facility power track outdoor temperature almost
   one-to-one month by month?  Because the cooling overhead (PUE - 1) grows
   with outdoor temperature: chillers work harder, free-cooling hours vanish.
   :class:`CoolingModel` implements that coupling.
2. **Section IV.C / [29]** — DeepMind's RL controller cut Google's cooling
   energy by ~40% and PUE by ~15% relative to the incumbent controller.
   :class:`FixedOverheadCooling` models the incumbent (a conservative fixed
   overhead sized for the design-day), and :class:`OptimizedCoolingController`
   models a controller that tracks the weather-dependent optimum with a small
   margin; the CLAIM-COOLING benchmark measures the achieved reduction.

The model also reports cooling *water* use so the analysis layer can surface
the water-footprint point the introduction makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..config import FacilityConfig, require_non_negative, require_positive
from ..errors import ConfigurationError, DataError

__all__ = ["CoolingConfig", "CoolingModel", "FixedOverheadCooling", "OptimizedCoolingController"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CoolingConfig:
    """Parameters of the temperature-coupled cooling model.

    Attributes
    ----------
    baseline_pue:
        PUE at the reference outdoor temperature.
    reference_temperature_c:
        Outdoor temperature at which the baseline PUE holds.
    pue_temperature_slope_per_c:
        PUE increase per degree C above the reference (free cooling lost,
        chiller COP degrading).
    min_pue:
        Lower bound on PUE (fans, pumps and distribution losses never vanish).
    free_cooling_threshold_c:
        Below this outdoor temperature the facility can rely almost entirely
        on economizers; the overhead approaches ``min_pue``.
    water_liters_per_kwh_cooling:
        Evaporative water use per kWh of *cooling* (overhead) energy.
    cooling_capacity_kw:
        Maximum heat-rejection capacity; IT loads whose cooling demand
        exceeds it force either throttling or an emergency overhead penalty.
    """

    baseline_pue: float = 1.28
    reference_temperature_c: float = 10.0
    pue_temperature_slope_per_c: float = 0.010
    min_pue: float = 1.06
    free_cooling_threshold_c: float = 2.0
    water_liters_per_kwh_cooling: float = 1.8
    cooling_capacity_kw: float = 1200.0

    def __post_init__(self) -> None:
        if self.baseline_pue < 1.0 or self.min_pue < 1.0:
            raise ConfigurationError("PUE values must be >= 1.0")
        if self.min_pue > self.baseline_pue:
            raise ConfigurationError("min_pue cannot exceed baseline_pue")
        require_non_negative(self.pue_temperature_slope_per_c, "pue_temperature_slope_per_c")
        require_non_negative(self.water_liters_per_kwh_cooling, "water_liters_per_kwh_cooling")
        require_positive(self.cooling_capacity_kw, "cooling_capacity_kw")

    @classmethod
    def from_facility(cls, facility: FacilityConfig, **overrides: float) -> "CoolingConfig":
        """Build a cooling config consistent with a facility description."""
        kwargs = dict(
            baseline_pue=facility.baseline_pue,
            reference_temperature_c=facility.reference_temperature_c,
            pue_temperature_slope_per_c=facility.pue_temperature_slope_per_c,
            min_pue=facility.min_pue,
        )
        kwargs.update(overrides)
        return cls(**kwargs)


class CoolingModel:
    """Weather-coupled cooling model: PUE and cooling power vs. outdoor temperature."""

    def __init__(self, config: CoolingConfig | None = None) -> None:
        self.config = config or CoolingConfig()

    # ------------------------------------------------------------------
    # PUE
    # ------------------------------------------------------------------
    def pue(self, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        """Facility PUE at the given outdoor temperature.

        Piecewise: at or below the free-cooling threshold PUE sits at
        ``min_pue``; above it PUE rises linearly from the baseline value at
        the reference temperature.
        """
        cfg = self.config
        temp = np.asarray(outdoor_temperature_c, dtype=float)
        linear = cfg.baseline_pue + cfg.pue_temperature_slope_per_c * (
            temp - cfg.reference_temperature_c
        )
        pue = np.where(temp <= cfg.free_cooling_threshold_c, cfg.min_pue, linear)
        return np.maximum(pue, cfg.min_pue)

    def pue_series(self, hourly_temperature_c: ArrayLike) -> np.ndarray:
        """PUE evaluated over a whole temperature trace in one vectorized pass.

        Semantically identical to calling :meth:`pue` per element (the model
        is elementwise), but done once up front; the cluster simulator
        precomputes its hourly PUE curve through this instead of paying a
        scalar ``np.asarray`` round-trip at every tick.
        """
        temperatures = np.asarray(hourly_temperature_c, dtype=float)
        return np.asarray(self.pue(temperatures), dtype=float)

    # ------------------------------------------------------------------
    # Power / water
    # ------------------------------------------------------------------
    def cooling_power_w(self, it_power_w: ArrayLike, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        """Cooling + distribution overhead power for a given IT load."""
        it = np.asarray(it_power_w, dtype=float)
        if np.any(it < 0):
            raise DataError("it_power_w must be non-negative")
        overhead = (np.asarray(self.pue(outdoor_temperature_c)) - 1.0) * it
        # Capacity limit: once the required cooling exceeds capacity, the
        # remaining heat must be removed by inefficient emergency means
        # (portable/ DX units) at twice the energy cost.
        capacity_w = self.config.cooling_capacity_kw * 1e3
        excess = np.clip(overhead - capacity_w, 0.0, None)
        return overhead + excess  # excess counted twice = 2x penalty on the overflow

    def facility_power_w(self, it_power_w: ArrayLike, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        """Total facility power (IT + overhead) for a given IT load."""
        it = np.asarray(it_power_w, dtype=float)
        return it + np.asarray(self.cooling_power_w(it, outdoor_temperature_c))

    def water_use_liters(self, cooling_energy_kwh: ArrayLike) -> ArrayLike:
        """Evaporative water use for a given amount of cooling energy."""
        energy = np.asarray(cooling_energy_kwh, dtype=float)
        if np.any(energy < 0):
            raise DataError("cooling_energy_kwh must be non-negative")
        return energy * self.config.water_liters_per_kwh_cooling

    def is_overloaded(self, it_power_w: ArrayLike, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        """Whether the required cooling exceeds installed capacity."""
        it = np.asarray(it_power_w, dtype=float)
        overhead = (np.asarray(self.pue(outdoor_temperature_c)) - 1.0) * it
        return overhead > self.config.cooling_capacity_kw * 1e3

    def with_capacity_fraction(self, fraction: float) -> "CoolingModel":
        """A copy of this model with only ``fraction`` of cooling capacity available.

        Used by stress scenarios that take chillers out of service.
        """
        if not 0.0 < fraction <= 1.0:
            raise DataError("fraction must lie in (0, 1]")
        cfg = self.config
        reduced = CoolingConfig(
            baseline_pue=cfg.baseline_pue,
            reference_temperature_c=cfg.reference_temperature_c,
            pue_temperature_slope_per_c=cfg.pue_temperature_slope_per_c,
            min_pue=cfg.min_pue,
            free_cooling_threshold_c=cfg.free_cooling_threshold_c,
            water_liters_per_kwh_cooling=cfg.water_liters_per_kwh_cooling,
            cooling_capacity_kw=cfg.cooling_capacity_kw * fraction,
        )
        return CoolingModel(reduced)


class FixedOverheadCooling(CoolingModel):
    """The incumbent, conservatively tuned cooling plant.

    Real facilities before ML-driven optimization typically ran chiller
    set-points sized for the design day regardless of actual conditions,
    yielding a high, weather-insensitive PUE.  This model therefore returns a
    constant PUE equal to the design-day value of the underlying
    temperature-coupled model plus a safety margin.
    """

    def __init__(
        self,
        config: CoolingConfig | None = None,
        *,
        design_day_temperature_c: float = 28.0,
        safety_margin: float = 0.03,
    ) -> None:
        super().__init__(config)
        require_non_negative(safety_margin, "safety_margin")
        base = CoolingModel(self.config)
        self._fixed_pue = float(np.asarray(base.pue(design_day_temperature_c))) + safety_margin

    @property
    def fixed_pue(self) -> float:
        """The constant PUE this plant runs at."""
        return self._fixed_pue

    def pue(self, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        temp = np.asarray(outdoor_temperature_c, dtype=float)
        return np.full_like(temp, self._fixed_pue, dtype=float) if temp.ndim else self._fixed_pue


class OptimizedCoolingController(CoolingModel):
    """A weather-following cooling controller (the "DeepMind-style" optimum).

    The controller tracks the physical optimum of the temperature-coupled
    model with a small tracking margin, and exploits free cooling more
    aggressively (higher economizer threshold).  Comparing this controller
    against :class:`FixedOverheadCooling` over a simulated year reproduces
    the ~40% cooling-energy / ~15% PUE reduction claim.
    """

    def __init__(
        self,
        config: CoolingConfig | None = None,
        *,
        tracking_margin: float = 0.04,
        free_cooling_threshold_c: float = 8.0,
        max_pue: float = 1.45,
    ) -> None:
        base_cfg = config or CoolingConfig()
        improved = CoolingConfig(
            baseline_pue=base_cfg.baseline_pue,
            reference_temperature_c=base_cfg.reference_temperature_c,
            pue_temperature_slope_per_c=base_cfg.pue_temperature_slope_per_c * 0.8,
            min_pue=base_cfg.min_pue,
            free_cooling_threshold_c=free_cooling_threshold_c,
            water_liters_per_kwh_cooling=base_cfg.water_liters_per_kwh_cooling,
            cooling_capacity_kw=base_cfg.cooling_capacity_kw,
        )
        super().__init__(improved)
        require_non_negative(tracking_margin, "tracking_margin")
        if max_pue < 1.0:
            raise ConfigurationError("max_pue must be >= 1.0")
        self.tracking_margin = float(tracking_margin)
        self.max_pue = float(max_pue)

    def pue(self, outdoor_temperature_c: ArrayLike) -> ArrayLike:
        # A controller that can always fall back to the incumbent set-points is
        # never worse than its design-limit PUE, even on the hottest days.
        base = super().pue(outdoor_temperature_c)
        return np.minimum(np.asarray(base, dtype=float) + self.tracking_margin, self.max_pue)
