"""Cluster resource model: GPUs, nodes, and the allocation pool.

The resource model is deliberately coarse — the scheduling questions the
paper raises (how many GPUs to supply, which jobs to start when, what power
caps to enforce) only need GPU-count granularity with node boundaries, not a
full topology.  Nodes matter because an occupied node burns non-GPU overhead
power, so packing jobs onto fewer nodes is itself an energy lever.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import FacilityConfig
from ..errors import ResourceError
from ..telemetry.gpu_power import GpuPowerModel, GpuSpec, get_gpu_spec

__all__ = ["GpuResource", "NodeState", "Node", "Allocation", "Cluster"]


@dataclass
class GpuResource:
    """One physical GPU in the cluster.

    Attributes
    ----------
    node_id / index:
        Location of the device.
    allocated_job_id:
        Id of the job currently using the device, or ``None`` when free.
    power_limit_w:
        Power cap enforced on the device (``None`` means TDP).
    utilization:
        Current compute utilization driven by the running job.
    """

    node_id: int
    index: int
    allocated_job_id: Optional[str] = None
    power_limit_w: Optional[float] = None
    utilization: float = 0.0

    @property
    def is_free(self) -> bool:
        """Whether the GPU is currently unallocated."""
        return self.allocated_job_id is None


class NodeState(enum.Enum):
    """Operational state of a node."""

    IDLE = "idle"
    ACTIVE = "active"
    DRAINED = "drained"


@dataclass
class Node:
    """A GPU compute node."""

    node_id: int
    gpus: list[GpuResource]
    state: NodeState = NodeState.IDLE

    @property
    def n_gpus(self) -> int:
        """Total GPUs on the node."""
        return len(self.gpus)

    @property
    def free_gpus(self) -> list[GpuResource]:
        """GPUs currently unallocated (empty when the node is drained)."""
        if self.state is NodeState.DRAINED:
            return []
        return [g for g in self.gpus if g.is_free]

    @property
    def n_free_gpus(self) -> int:
        """Number of free GPUs on the node."""
        return len(self.free_gpus)

    @property
    def n_busy_gpus(self) -> int:
        """Number of allocated GPUs on the node."""
        return sum(1 for g in self.gpus if not g.is_free)

    @property
    def is_occupied(self) -> bool:
        """Whether any GPU on the node is allocated."""
        return self.n_busy_gpus > 0

    def refresh_state(self) -> None:
        """Update the IDLE/ACTIVE state from current allocations (drained nodes stay drained)."""
        if self.state is NodeState.DRAINED:
            return
        self.state = NodeState.ACTIVE if self.is_occupied else NodeState.IDLE


@dataclass(frozen=True)
class Allocation:
    """A successful placement of a job onto specific GPUs."""

    job_id: str
    gpu_locations: tuple[tuple[int, int], ...]  # (node_id, gpu_index) pairs

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the allocation."""
        return len(self.gpu_locations)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Distinct node ids touched by the allocation (sorted)."""
        return tuple(sorted({node_id for node_id, _ in self.gpu_locations}))


class Cluster:
    """The cluster's GPU pool with allocation and release book-keeping.

    Parameters
    ----------
    facility:
        Facility description (node count, GPUs per node, overhead powers).
    gpu_model:
        Name of the GPU model installed in every node.
    """

    def __init__(self, facility: FacilityConfig | None = None, gpu_model: str = "V100") -> None:
        self.facility = facility or FacilityConfig()
        self.gpu_spec: GpuSpec = get_gpu_spec(gpu_model)
        self.gpu_power_model = GpuPowerModel(self.gpu_spec)
        self.nodes: list[Node] = [
            Node(
                node_id=node_id,
                gpus=[GpuResource(node_id=node_id, index=i) for i in range(self.facility.gpus_per_node)],
            )
            for node_id in range(self.facility.n_nodes)
        ]
        self._allocations: dict[str, Allocation] = {}

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return sum(node.n_gpus for node in self.nodes)

    @property
    def n_free_gpus(self) -> int:
        """Currently free GPUs."""
        return sum(node.n_free_gpus for node in self.nodes)

    @property
    def n_busy_gpus(self) -> int:
        """Currently allocated GPUs."""
        return sum(node.n_busy_gpus for node in self.nodes)

    @property
    def n_occupied_nodes(self) -> int:
        """Nodes with at least one allocated GPU."""
        return sum(1 for node in self.nodes if node.is_occupied)

    @property
    def n_drained_nodes(self) -> int:
        """Nodes administratively removed from service."""
        return sum(1 for node in self.nodes if node.state is NodeState.DRAINED)

    @property
    def allocations(self) -> dict[str, Allocation]:
        """Live allocations keyed by job id (copy)."""
        return dict(self._allocations)

    def gpu_utilization_fraction(self) -> float:
        """Fraction of (non-drained) GPUs currently allocated."""
        available = sum(node.n_gpus for node in self.nodes if node.state is not NodeState.DRAINED)
        if available == 0:
            return 0.0
        return self.n_busy_gpus / available

    def can_fit(self, n_gpus: int) -> bool:
        """Whether ``n_gpus`` GPUs are currently free (across any nodes)."""
        if n_gpus <= 0:
            raise ResourceError(f"n_gpus must be positive, got {n_gpus!r}")
        return self.n_free_gpus >= n_gpus

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------
    def allocate(
        self,
        job_id: str,
        n_gpus: int,
        *,
        utilization: float = 1.0,
        power_limit_w: Optional[float] = None,
        pack: bool = True,
    ) -> Allocation:
        """Allocate ``n_gpus`` GPUs to ``job_id``.

        With ``pack=True`` (the default, and what energy-aware policies want)
        GPUs are taken from the most-occupied nodes first so fewer nodes are
        woken up; with ``pack=False`` they are taken from the least-occupied
        nodes (spreading, which can help thermals but costs idle overhead).
        """
        if job_id in self._allocations:
            raise ResourceError(f"job {job_id!r} already holds an allocation")
        if n_gpus <= 0:
            raise ResourceError(f"n_gpus must be positive, got {n_gpus!r}")
        if not self.can_fit(n_gpus):
            raise ResourceError(
                f"cannot allocate {n_gpus} GPUs: only {self.n_free_gpus} free"
            )
        candidates = [node for node in self.nodes if node.n_free_gpus > 0]
        chosen: list[GpuResource] = []
        if pack:
            # Fill the most-occupied nodes first, taking whole nodes at a time.
            candidates.sort(key=lambda node: (node.n_free_gpus, node.node_id))
            for node in candidates:
                for gpu in node.free_gpus:
                    chosen.append(gpu)
                    if len(chosen) == n_gpus:
                        break
                if len(chosen) == n_gpus:
                    break
        else:
            # Spread: take one GPU at a time from the emptiest node remaining.
            free_by_node = {node.node_id: list(node.free_gpus) for node in candidates}
            while len(chosen) < n_gpus:
                node_id = max(free_by_node, key=lambda nid: (len(free_by_node[nid]), -nid))
                chosen.append(free_by_node[node_id].pop(0))
                if not free_by_node[node_id]:
                    del free_by_node[node_id]
        locations = []
        for gpu in chosen:
            gpu.allocated_job_id = job_id
            gpu.utilization = float(utilization)
            gpu.power_limit_w = power_limit_w
            locations.append((gpu.node_id, gpu.index))
        for node in self.nodes:
            node.refresh_state()
        allocation = Allocation(job_id=job_id, gpu_locations=tuple(locations))
        self._allocations[job_id] = allocation
        return allocation

    def release(self, job_id: str) -> Allocation:
        """Release a job's allocation, returning it."""
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise ResourceError(f"job {job_id!r} holds no allocation")
        gpu_by_location = {(g.node_id, g.index): g for g in self.iter_gpus()}
        for location in allocation.gpu_locations:
            gpu = gpu_by_location[location]
            gpu.allocated_job_id = None
            gpu.utilization = 0.0
            gpu.power_limit_w = None
        for node in self.nodes:
            node.refresh_state()
        return allocation

    def set_power_limit(self, job_id: str, power_limit_w: Optional[float]) -> None:
        """Change the power cap on every GPU held by ``job_id``."""
        allocation = self._allocations.get(job_id)
        if allocation is None:
            raise ResourceError(f"job {job_id!r} holds no allocation")
        gpu_by_location = {(g.node_id, g.index): g for g in self.iter_gpus()}
        for location in allocation.gpu_locations:
            gpu_by_location[location].power_limit_w = power_limit_w

    def drain_nodes(self, n_nodes: int) -> int:
        """Administratively drain up to ``n_nodes`` currently idle nodes.

        Draining reduces the supplied resource quantity ``q_s`` in Eq. 1;
        only idle nodes can be drained, and the number actually drained is
        returned.
        """
        if n_nodes < 0:
            raise ResourceError(f"n_nodes must be non-negative, got {n_nodes!r}")
        drained = 0
        for node in self.nodes:
            if drained >= n_nodes:
                break
            if node.state is NodeState.IDLE and not node.is_occupied:
                node.state = NodeState.DRAINED
                drained += 1
        return drained

    def undrain_all(self) -> None:
        """Return every drained node to service."""
        for node in self.nodes:
            if node.state is NodeState.DRAINED:
                node.state = NodeState.IDLE
            node.refresh_state()

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def it_power_w(self) -> float:
        """Instantaneous IT power of the cluster in its current allocation state.

        Sums GPU power (via the analytic power model, honouring per-GPU caps
        and utilizations), per-node idle power for non-drained nodes, and the
        active-node overhead for occupied nodes.
        """
        power = 0.0
        for node in self.nodes:
            if node.state is NodeState.DRAINED:
                continue
            power += self.facility.node_idle_power_w
            if node.is_occupied:
                power += self.facility.node_active_overhead_w
            for gpu in node.gpus:
                if gpu.is_free:
                    power += self.gpu_spec.idle_power_w
                else:
                    power += float(
                        self.gpu_power_model.power_w(gpu.utilization, gpu.power_limit_w)
                    )
        return power

    def iter_gpus(self) -> Iterable[GpuResource]:
        """Iterate over every GPU in the cluster."""
        return itertools.chain.from_iterable(node.gpus for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={len(self.nodes)}, gpus={self.total_gpus}, "
            f"busy={self.n_busy_gpus}, drained_nodes={self.n_drained_nodes})"
        )
