"""Cluster resource model: GPUs, nodes, and the allocation pool.

The resource model is deliberately coarse — the scheduling questions the
paper raises (how many GPUs to supply, which jobs to start when, what power
caps to enforce) only need GPU-count granularity with node boundaries, not a
full topology.  Nodes matter because an occupied node burns non-GPU overhead
power, so packing jobs onto fewer nodes is itself an energy lever.

Incremental state model
-----------------------
Every experiment bottoms out in :class:`~repro.cluster.simulator.
ClusterSimulator`, which queries and mutates this pool millions of times per
run, so the pool is built for O(1) hot-path queries instead of whole-cluster
rescans:

* **Arrays are the source of truth.**  Per-GPU state lives in NumPy arrays
  indexed ``[node, gpu]``: an allocated mask, the utilization driven by the
  running job, and the enforced power cap (NaN = uncapped).  Job ids are kept
  in a parallel list-of-lists (strings don't belong in float arrays).
* **Counters are maintained, not recomputed.**  Per-node free-GPU counts, the
  cluster-wide free/busy totals, and the occupied/drained node counts are
  updated by the few GPUs each ``allocate``/``release`` touches, so
  ``n_free_gpus`` / ``can_fit`` are O(1) and placement sorts nodes by
  occupancy with one vectorized ``argsort`` instead of rebuilding per-node
  free lists.
* **IT power is delta-maintained.**  Each allocation contributes
  ``n_gpus x power_w(utilization, cap)`` (uniform across a job's GPUs by
  construction); ``allocate``/``release``/``set_power_limit``/``drain_nodes``
  adjust a running total so :meth:`Cluster.it_power_w` is an O(1) read.
  :meth:`Cluster.recompute_it_power_w` is the vectorized full recompute kept
  as a debug/parity checkpoint (and the fallback whenever per-GPU state was
  mutated directly through the view objects below).
* **``Node`` and ``GpuResource`` are views.**  The historical object API
  (``cluster.nodes``, ``node.free_gpus``, ``gpu.is_free``, …) is preserved as
  lightweight views over the arrays, so schedulers, tests and user code read
  the same state without the pool paying to keep thousands of Python objects
  coherent.  Writing through a view keeps the counters correct but drops the
  power cache to the recompute path until the cluster next drains empty.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..config import FacilityConfig
from ..errors import CheckpointError, ResourceError
from ..telemetry.gpu_power import GpuPowerModel, GpuSpec, get_gpu_spec

__all__ = ["GpuResource", "NodeState", "Node", "Allocation", "Cluster"]


class GpuResource:
    """One physical GPU in the cluster — a view over the cluster's state arrays.

    Attributes
    ----------
    node_id / index:
        Location of the device.
    allocated_job_id:
        Id of the job currently using the device, or ``None`` when free.
    power_limit_w:
        Power cap enforced on the device (``None`` means TDP).
    utilization:
        Current compute utilization driven by the running job.

    Reads come straight from the backing arrays; writes go through the
    cluster so the incremental counters stay consistent (direct writes also
    invalidate the delta-maintained power cache — see module docstring).
    """

    __slots__ = ("_cluster", "node_id", "index")

    def __init__(self, cluster: "Cluster", node_id: int, index: int) -> None:
        self._cluster = cluster
        self.node_id = node_id
        self.index = index

    @property
    def allocated_job_id(self) -> Optional[str]:
        """Id of the job using the device (``None`` when free)."""
        return self._cluster._job_ids[self.node_id][self.index]

    @allocated_job_id.setter
    def allocated_job_id(self, job_id: Optional[str]) -> None:
        self._cluster._set_gpu_job_id(self.node_id, self.index, job_id)

    @property
    def utilization(self) -> float:
        """Current compute utilization in [0, 1]."""
        return float(self._cluster._utilization[self.node_id, self.index])

    @utilization.setter
    def utilization(self, value: float) -> None:
        self._cluster._utilization[self.node_id, self.index] = float(value)
        self._cluster._power_dirty = True

    @property
    def power_limit_w(self) -> Optional[float]:
        """Enforced power cap in watts (``None`` means TDP)."""
        cap = self._cluster._power_cap_w[self.node_id, self.index]
        return None if np.isnan(cap) else float(cap)

    @power_limit_w.setter
    def power_limit_w(self, value: Optional[float]) -> None:
        self._cluster._power_cap_w[self.node_id, self.index] = (
            np.nan if value is None else float(value)
        )
        self._cluster._power_dirty = True

    @property
    def is_free(self) -> bool:
        """Whether the GPU is currently unallocated."""
        return not self._cluster._allocated[self.node_id, self.index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GpuResource(node_id={self.node_id}, index={self.index}, "
            f"allocated_job_id={self.allocated_job_id!r})"
        )


class NodeState(enum.Enum):
    """Operational state of a node."""

    IDLE = "idle"
    ACTIVE = "active"
    DRAINED = "drained"


class Node:
    """A GPU compute node — a view over the cluster's state arrays.

    ``state`` is derived (drained flag, else occupied → ACTIVE, else IDLE)
    instead of being refreshed by whole-cluster sweeps after every
    allocation change.
    """

    __slots__ = ("_cluster", "node_id", "gpus")

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self._cluster = cluster
        self.node_id = node_id
        self.gpus: list[GpuResource] = [
            GpuResource(cluster, node_id, i) for i in range(cluster._gpus_per_node)
        ]

    @property
    def n_gpus(self) -> int:
        """Total GPUs on the node."""
        return self._cluster._gpus_per_node

    @property
    def free_gpus(self) -> list[GpuResource]:
        """GPUs currently unallocated (empty when the node is drained)."""
        cluster = self._cluster
        if cluster._drained[self.node_id]:
            return []
        allocated_row = cluster._allocated[self.node_id]
        return [gpu for gpu, taken in zip(self.gpus, allocated_row) if not taken]

    @property
    def n_free_gpus(self) -> int:
        """Number of free GPUs on the node (0 when drained)."""
        cluster = self._cluster
        if cluster._drained[self.node_id]:
            return 0
        return int(cluster._node_free[self.node_id])

    @property
    def n_busy_gpus(self) -> int:
        """Number of allocated GPUs on the node."""
        cluster = self._cluster
        return cluster._gpus_per_node - int(cluster._node_free[self.node_id])

    @property
    def is_occupied(self) -> bool:
        """Whether any GPU on the node is allocated."""
        cluster = self._cluster
        return int(cluster._node_free[self.node_id]) < cluster._gpus_per_node

    @property
    def state(self) -> NodeState:
        """Operational state, derived from the drain flag and occupancy."""
        cluster = self._cluster
        if cluster._drained[self.node_id]:
            return NodeState.DRAINED
        return NodeState.ACTIVE if self.is_occupied else NodeState.IDLE

    def refresh_state(self) -> None:
        """Kept for API compatibility; state is now derived, nothing to refresh."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(node_id={self.node_id}, state={self.state.value!r}, "
            f"free={self.n_free_gpus}/{self.n_gpus})"
        )


@dataclass(frozen=True)
class Allocation:
    """A successful placement of a job onto specific GPUs."""

    job_id: str
    gpu_locations: tuple[tuple[int, int], ...]  # (node_id, gpu_index) pairs

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the allocation."""
        return len(self.gpu_locations)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Distinct node ids touched by the allocation (sorted)."""
        return tuple(sorted({node_id for node_id, _ in self.gpu_locations}))

    def resolve(self, cluster: "Cluster") -> list[GpuResource]:
        """The allocation's GPU views on ``cluster``, resolved directly by location."""
        return [cluster.nodes[node_id].gpus[index] for node_id, index in self.gpu_locations]


class Cluster:
    """The cluster's GPU pool with allocation and release book-keeping.

    Parameters
    ----------
    facility:
        Facility description (node count, GPUs per node, overhead powers).
    gpu_model:
        Name of the GPU model installed in every node.
    """

    def __init__(self, facility: FacilityConfig | None = None, gpu_model: str = "V100") -> None:
        self.facility = facility or FacilityConfig()
        self.gpu_spec: GpuSpec = get_gpu_spec(gpu_model)
        self.gpu_power_model = GpuPowerModel(self.gpu_spec)
        n_nodes = self.facility.n_nodes
        gpus_per_node = self.facility.gpus_per_node
        self._n_nodes = n_nodes
        self._gpus_per_node = gpus_per_node
        # Per-GPU state arrays [node, gpu] — the source of truth.
        self._allocated = np.zeros((n_nodes, gpus_per_node), dtype=bool)
        self._utilization = np.zeros((n_nodes, gpus_per_node), dtype=float)
        self._power_cap_w = np.full((n_nodes, gpus_per_node), np.nan)
        self._job_ids: list[list[Optional[str]]] = [
            [None] * gpus_per_node for _ in range(n_nodes)
        ]
        # Incrementally maintained counters.
        self._node_free = np.full(n_nodes, gpus_per_node, dtype=np.int64)
        self._drained = np.zeros(n_nodes, dtype=bool)
        self._free_gpus_nondrained = n_nodes * gpus_per_node
        self._busy_gpus = 0
        self._n_occupied = 0
        self._n_drained = 0
        # Delta-maintained IT power: per-job per-GPU power and the busy total.
        self._busy_power_w = 0.0
        self._job_power_w: dict[str, float] = {}
        self._power_dirty = False
        self._allocations: dict[str, Allocation] = {}
        self.nodes: list[Node] = [Node(self, node_id) for node_id in range(n_nodes)]

    # ------------------------------------------------------------------
    # Capacity queries (all O(1) reads of maintained counters)
    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self._n_nodes * self._gpus_per_node

    @property
    def n_free_gpus(self) -> int:
        """Currently free GPUs (on non-drained nodes)."""
        return self._free_gpus_nondrained

    @property
    def n_busy_gpus(self) -> int:
        """Currently allocated GPUs."""
        return self._busy_gpus

    @property
    def n_occupied_nodes(self) -> int:
        """Nodes with at least one allocated GPU."""
        return self._n_occupied

    @property
    def n_drained_nodes(self) -> int:
        """Nodes administratively removed from service."""
        return self._n_drained

    @property
    def allocations(self) -> dict[str, Allocation]:
        """Live allocations keyed by job id (copy)."""
        return dict(self._allocations)

    def gpu_utilization_fraction(self) -> float:
        """Fraction of (non-drained) GPUs currently allocated."""
        available = (self._n_nodes - self._n_drained) * self._gpus_per_node
        if available == 0:
            return 0.0
        return self._busy_gpus / available

    def can_fit(self, n_gpus: int) -> bool:
        """Whether ``n_gpus`` GPUs are currently free (across any nodes)."""
        if n_gpus <= 0:
            raise ResourceError(f"n_gpus must be positive, got {n_gpus!r}")
        return self._free_gpus_nondrained >= n_gpus

    def busy_utilizations(self) -> np.ndarray:
        """Utilizations of the currently-busy GPUs (node-major order)."""
        return self._utilization[self._allocated]

    # ------------------------------------------------------------------
    # Allocation / release
    # ------------------------------------------------------------------
    def allocate(
        self,
        job_id: str,
        n_gpus: int,
        *,
        utilization: float = 1.0,
        power_limit_w: Optional[float] = None,
        pack: bool = True,
    ) -> Allocation:
        """Allocate ``n_gpus`` GPUs to ``job_id``.

        With ``pack=True`` (the default, and what energy-aware policies want)
        GPUs are taken from the most-occupied nodes first so fewer nodes are
        woken up; with ``pack=False`` they are taken from the least-occupied
        nodes (spreading, which can help thermals but costs idle overhead).
        Only the touched nodes' counters are updated.
        """
        if job_id in self._allocations:
            raise ResourceError(f"job {job_id!r} already holds an allocation")
        if n_gpus <= 0:
            raise ResourceError(f"n_gpus must be positive, got {n_gpus!r}")
        if not self.can_fit(n_gpus):
            raise ResourceError(
                f"cannot allocate {n_gpus} GPUs: only {self.n_free_gpus} free"
            )
        free = np.where(self._drained, 0, self._node_free)
        locations: list[tuple[int, int]] = []
        if pack:
            # Fill the most-occupied nodes first (ties by node id, which the
            # stable argsort preserves since candidates are id-ordered).
            candidates = np.flatnonzero(free > 0)
            order = candidates[np.argsort(free[candidates], kind="stable")]
            remaining = n_gpus
            for node_id in order:
                free_indices = np.flatnonzero(~self._allocated[node_id])
                take = free_indices if free_indices.size <= remaining else free_indices[:remaining]
                node_id = int(node_id)
                locations.extend((node_id, int(index)) for index in take)
                remaining -= take.size
                if remaining == 0:
                    break
        else:
            # Spread: take one GPU at a time from the emptiest node remaining
            # (argmax returns the first maximum, i.e. the lowest node id).
            free = free.copy()
            cursors: dict[int, int] = {}
            free_rows: dict[int, np.ndarray] = {}
            for _ in range(n_gpus):
                node_id = int(np.argmax(free))
                row = free_rows.get(node_id)
                if row is None:
                    row = np.flatnonzero(~self._allocated[node_id])
                    free_rows[node_id] = row
                cursor = cursors.get(node_id, 0)
                locations.append((node_id, int(row[cursor])))
                cursors[node_id] = cursor + 1
                free[node_id] -= 1
        # Commit: per-GPU arrays, then the touched nodes' counters.
        utilization = float(utilization)
        cap = None if power_limit_w is None else float(power_limit_w)
        cap_value = np.nan if cap is None else cap
        gpus_per_node = self._gpus_per_node
        newly_occupied = 0
        node_free = self._node_free
        for node_id, index in locations:
            self._allocated[node_id, index] = True
            self._utilization[node_id, index] = utilization
            self._power_cap_w[node_id, index] = cap_value
            self._job_ids[node_id][index] = job_id
            if node_free[node_id] == gpus_per_node:
                newly_occupied += 1
            node_free[node_id] -= 1
        self._free_gpus_nondrained -= n_gpus
        self._busy_gpus += n_gpus
        self._n_occupied += newly_occupied
        per_gpu_power = self.gpu_power_model.power_w_scalar(utilization, cap)
        self._job_power_w[job_id] = per_gpu_power
        self._busy_power_w += n_gpus * per_gpu_power
        allocation = Allocation(job_id=job_id, gpu_locations=tuple(locations))
        self._allocations[job_id] = allocation
        return allocation

    def release(self, job_id: str) -> Allocation:
        """Release a job's allocation, returning it.

        The allocation's own ``gpu_locations`` index the state arrays
        directly — no cluster-wide GPU index is rebuilt.
        """
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise ResourceError(f"job {job_id!r} holds no allocation")
        gpus_per_node = self._gpus_per_node
        node_free = self._node_free
        newly_idle = 0
        for node_id, index in allocation.gpu_locations:
            self._allocated[node_id, index] = False
            self._utilization[node_id, index] = 0.0
            self._power_cap_w[node_id, index] = np.nan
            self._job_ids[node_id][index] = None
            node_free[node_id] += 1
            if node_free[node_id] == gpus_per_node:
                newly_idle += 1
        n_gpus = allocation.n_gpus
        self._free_gpus_nondrained += n_gpus
        self._busy_gpus -= n_gpus
        self._n_occupied -= newly_idle
        per_gpu_power = self._job_power_w.pop(job_id, 0.0)
        self._busy_power_w -= n_gpus * per_gpu_power
        if self._busy_gpus == 0:
            # Exact resynchronization point: an empty cluster has zero busy
            # power by definition, which also clears any drift or dirtiness.
            self._busy_power_w = 0.0
            self._power_dirty = False
        return allocation

    def set_power_limit(self, job_id: str, power_limit_w: Optional[float]) -> None:
        """Change the power cap on every GPU held by ``job_id``."""
        allocation = self._allocations.get(job_id)
        if allocation is None:
            raise ResourceError(f"job {job_id!r} holds no allocation")
        cap = None if power_limit_w is None else float(power_limit_w)
        cap_value = np.nan if cap is None else cap
        for node_id, index in allocation.gpu_locations:
            self._power_cap_w[node_id, index] = cap_value
        # A job's GPUs share one utilization by construction, so its power
        # contribution is a single scalar delta.
        first_node, first_index = allocation.gpu_locations[0]
        utilization = float(self._utilization[first_node, first_index])
        new_power = self.gpu_power_model.power_w_scalar(utilization, cap)
        old_power = self._job_power_w.get(job_id, 0.0)
        self._job_power_w[job_id] = new_power
        self._busy_power_w += allocation.n_gpus * (new_power - old_power)

    def drain_nodes(self, n_nodes: int) -> int:
        """Administratively drain up to ``n_nodes`` currently idle nodes.

        Draining reduces the supplied resource quantity ``q_s`` in Eq. 1;
        only idle nodes can be drained, and the number actually drained is
        returned.
        """
        if n_nodes < 0:
            raise ResourceError(f"n_nodes must be non-negative, got {n_nodes!r}")
        drained = 0
        gpus_per_node = self._gpus_per_node
        for node_id in range(self._n_nodes):
            if drained >= n_nodes:
                break
            if not self._drained[node_id] and self._node_free[node_id] == gpus_per_node:
                self._drained[node_id] = True
                self._n_drained += 1
                self._free_gpus_nondrained -= gpus_per_node
                drained += 1
        return drained

    def undrain_all(self) -> None:
        """Return every drained node to service."""
        drained_ids = np.flatnonzero(self._drained)
        if drained_ids.size:
            self._free_gpus_nondrained += int(self._node_free[drained_ids].sum())
            self._drained[drained_ids] = False
            self._n_drained = 0

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def it_power_w(self) -> float:
        """Instantaneous IT power of the cluster in its current allocation state.

        Sums GPU power (via the analytic power model, honouring per-GPU caps
        and utilizations), per-node idle power for non-drained nodes, and the
        active-node overhead for occupied nodes.  O(1): the busy-GPU term is
        delta-maintained by ``allocate``/``release``/``set_power_limit``;
        only direct per-GPU writes through the view objects force the
        vectorized :meth:`recompute_it_power_w` path.
        """
        if self._power_dirty:
            return self.recompute_it_power_w()
        facility = self.facility
        return (
            facility.node_idle_power_w * (self._n_nodes - self._n_drained)
            + facility.node_active_overhead_w * self._n_occupied
            + self.gpu_spec.idle_power_w * self._free_gpus_nondrained
            + self._busy_power_w
        )

    def recompute_it_power_w(self) -> float:
        """Vectorized full recompute of IT power from the state arrays.

        The debug/parity checkpoint for the delta-maintained value returned
        by :meth:`it_power_w`: one pass over the arrays, independent of the
        incremental counters.
        """
        facility = self.facility
        live = ~self._drained
        allocated = self._allocated[live]
        n_busy = int(np.count_nonzero(allocated))
        power = (
            facility.node_idle_power_w * int(np.count_nonzero(live))
            + facility.node_active_overhead_w * int(np.count_nonzero(allocated.any(axis=1)))
            + self.gpu_spec.idle_power_w * (allocated.size - n_busy)
        )
        if n_busy:
            utils = self._utilization[live][allocated]
            caps = self._power_cap_w[live][allocated]
            caps = np.where(np.isnan(caps), self.gpu_spec.tdp_w, caps)
            power += float(np.sum(self.gpu_power_model.power_w(utils, caps)))
        return float(power)

    def iter_gpus(self) -> Iterable[GpuResource]:
        """Iterate over every GPU in the cluster."""
        return itertools.chain.from_iterable(node.gpus for node in self.nodes)

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """A JSON-able dict of the pool's dynamic state.

        Captures the live allocations (locations, utilization, cap and the
        delta-maintained per-GPU power), the drained-node set, and the
        accumulated ``busy_power_w`` total.  The accumulated float is stored
        verbatim — recomputing it as a fresh sum on restore could differ in
        the last ulp from the incrementally-maintained original, breaking
        bit-identical continuation.

        Raises :class:`~repro.errors.CheckpointError` when per-GPU state was
        mutated out-of-band through the view objects (``_power_dirty``): such
        state is no longer job-uniform and cannot be represented per
        allocation.
        """
        if self._power_dirty:
            raise CheckpointError(
                "cluster state was mutated directly through GPU views; "
                "per-allocation snapshotting requires job-uniform state"
            )
        allocations = []
        for job_id, allocation in self._allocations.items():
            first_node, first_index = allocation.gpu_locations[0]
            cap = self._power_cap_w[first_node, first_index]
            allocations.append(
                {
                    "job_id": job_id,
                    "locations": [list(loc) for loc in allocation.gpu_locations],
                    "utilization": float(self._utilization[first_node, first_index]),
                    "power_limit_w": None if np.isnan(cap) else float(cap),
                    "per_gpu_power_w": self._job_power_w[job_id],
                }
            )
        return {
            "n_nodes": self._n_nodes,
            "gpus_per_node": self._gpus_per_node,
            "gpu_model": self.gpu_spec.name,
            "drained": [int(node_id) for node_id in np.flatnonzero(self._drained)],
            "allocations": allocations,
            "busy_power_w": self._busy_power_w,
        }

    def restore_state(self, state: dict) -> None:
        """Reset the pool to the state captured by :meth:`snapshot_state`.

        The cluster must have been constructed with the same facility shape
        and GPU model; all current allocations are discarded.
        """
        if (
            int(state["n_nodes"]) != self._n_nodes
            or int(state["gpus_per_node"]) != self._gpus_per_node
        ):
            raise CheckpointError(
                f"cluster shape mismatch: snapshot is {state['n_nodes']}x"
                f"{state['gpus_per_node']}, cluster is {self._n_nodes}x{self._gpus_per_node}"
            )
        if state["gpu_model"] != self.gpu_spec.name:
            raise CheckpointError(
                f"GPU model mismatch: snapshot has {state['gpu_model']!r}, "
                f"cluster has {self.gpu_spec.name!r}"
            )
        n_nodes, gpus_per_node = self._n_nodes, self._gpus_per_node
        self._allocated[:] = False
        self._utilization[:] = 0.0
        self._power_cap_w[:] = np.nan
        self._job_ids = [[None] * gpus_per_node for _ in range(n_nodes)]
        self._node_free[:] = gpus_per_node
        self._drained[:] = False
        self._drained[[int(i) for i in state["drained"]]] = True
        self._allocations = {}
        self._job_power_w = {}
        self._power_dirty = False
        for entry in state["allocations"]:
            job_id = entry["job_id"]
            locations = tuple((int(n), int(i)) for n, i in entry["locations"])
            cap = entry["power_limit_w"]
            cap_value = np.nan if cap is None else float(cap)
            utilization = float(entry["utilization"])
            for node_id, index in locations:
                self._allocated[node_id, index] = True
                self._utilization[node_id, index] = utilization
                self._power_cap_w[node_id, index] = cap_value
                self._job_ids[node_id][index] = job_id
                self._node_free[node_id] -= 1
            self._allocations[job_id] = Allocation(job_id=job_id, gpu_locations=locations)
            self._job_power_w[job_id] = float(entry["per_gpu_power_w"])
        # Derived counters, then the accumulated power total verbatim.
        self._busy_gpus = int(np.count_nonzero(self._allocated))
        self._n_occupied = int(np.count_nonzero(self._node_free < gpus_per_node))
        self._n_drained = int(np.count_nonzero(self._drained))
        self._free_gpus_nondrained = int(self._node_free[~self._drained].sum())
        self._busy_power_w = float(state["busy_power_w"])
        # The Node views hold direct array references; nothing to rebuild.

    # ------------------------------------------------------------------
    # Direct per-GPU writes (view setters route through here)
    # ------------------------------------------------------------------
    def _set_gpu_job_id(self, node_id: int, index: int, job_id: Optional[str]) -> None:
        """Write-through for ``GpuResource.allocated_job_id`` assignments.

        Keeps the occupancy counters exact; the power cache is marked dirty
        because out-of-band assignments carry no power bookkeeping.
        """
        was_allocated = bool(self._allocated[node_id, index])
        now_allocated = job_id is not None
        self._job_ids[node_id][index] = job_id
        self._power_dirty = True
        if was_allocated == now_allocated:
            return
        gpus_per_node = self._gpus_per_node
        self._allocated[node_id, index] = now_allocated
        if now_allocated:
            if self._node_free[node_id] == gpus_per_node:
                self._n_occupied += 1
            self._node_free[node_id] -= 1
            self._busy_gpus += 1
            if not self._drained[node_id]:
                self._free_gpus_nondrained -= 1
        else:
            self._node_free[node_id] += 1
            if self._node_free[node_id] == gpus_per_node:
                self._n_occupied -= 1
            self._busy_gpus -= 1
            if not self._drained[node_id]:
                self._free_gpus_nondrained += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(nodes={len(self.nodes)}, gpus={self.total_gpus}, "
            f"busy={self.n_busy_gpus}, drained_nodes={self.n_drained_nodes})"
        )
