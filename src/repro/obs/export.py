"""Trace exporters and readers.

Three output formats, all stdlib:

* **Chrome trace_event JSON** (:func:`chrome_trace` / ``*.json``) — the
  ``{"traceEvents": [...]}`` document Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing`` load directly; spans become complete (``"ph": "X"``)
  events on per-process/per-thread tracks, so a parallel fleet run shows one
  timeline per worker.
* **NDJSON event log** (:func:`write_ndjson` / ``*.ndjson``) — one JSON
  object per line (``meta``, then ``span`` rows, then ``metric`` rows),
  greppable and streamable.
* **Prometheus text** — via :meth:`repro.obs.metrics.MetricsRegistry.
  to_prometheus`; the serve daemon's ``GET /metrics`` endpoint renders it.

:func:`write_trace` picks the format from the path suffix, and
:func:`load_trace`/:func:`summarize_trace` read either span format back —
``greenhpc obs TRACE`` is a thin CLI shell over them.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence, TextIO, Union

from ..errors import ConfigurationError, DataError
from .profile import aggregate_spans
from .recorder import SpanRecord, TraceRecorder

__all__ = [
    "chrome_trace",
    "write_ndjson",
    "write_trace",
    "load_trace",
    "summarize_trace",
]


def _span_records(source: Union[TraceRecorder, Sequence[SpanRecord]]) -> list[SpanRecord]:
    return list(source.spans) if hasattr(source, "spans") else list(source)


def _metrics_snapshot(source: Any) -> dict[str, Any]:
    metrics = getattr(source, "metrics", None)
    return metrics.snapshot() if metrics is not None else {}


def chrome_trace(
    source: Union[TraceRecorder, Sequence[SpanRecord]],
    *,
    metrics: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """The Chrome ``trace_event`` document for a recorder (or span list).

    Timestamps are microseconds relative to the earliest span, so the file
    carries no absolute clock readings.  Process/thread metadata events name
    each track; the metrics snapshot (when present) rides along under
    ``otherData`` where Perfetto surfaces it as trace metadata.
    """
    spans = _span_records(source)
    if metrics is None:
        metrics = _metrics_snapshot(source)
    t0 = min((span.start_s for span in spans), default=0.0)
    events: list[dict[str, Any]] = []
    seen_tracks: set[tuple[int, int]] = set()
    for span in sorted(spans, key=lambda s: s.start_s):
        if (span.pid, span.tid) not in seen_tracks:
            seen_tracks.add((span.pid, span.tid))
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {"name": f"greenhpc pid {span.pid}"},
                }
            )
        args = {k: _jsonable(v) for k, v in span.attributes.items()}
        if span.cpu_s is not None:
            args["cpu_s"] = span.cpu_s
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - t0) * 1e6,
                "dur": span.wall_s * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "metrics": dict(metrics)},
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_ndjson(
    source: Union[TraceRecorder, Sequence[SpanRecord]],
    stream: TextIO,
    *,
    metrics: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write the NDJSON event log to ``stream``; returns the line count."""
    spans = _span_records(source)
    if metrics is None:
        metrics = _metrics_snapshot(source)
    t0 = min((span.start_s for span in spans), default=0.0)
    lines = 1
    stream.write(json.dumps({"type": "meta", "generator": "repro.obs", "t0_s": t0}) + "\n")
    for span in sorted(spans, key=lambda s: s.start_s):
        row = span.to_dict()
        row["start_s"] = span.start_s - t0
        row["attributes"] = {k: _jsonable(v) for k, v in row["attributes"].items()}
        stream.write(json.dumps({"type": "span", **row}) + "\n")
        lines += 1
    for name, family in dict(metrics).items():
        for entry in family.get("series", []):
            stream.write(
                json.dumps(
                    {"type": "metric", "name": name, "kind": family.get("kind"), **entry}
                )
                + "\n"
            )
            lines += 1
    return lines


def write_trace(recorder: TraceRecorder, path: str) -> str:
    """Export ``recorder`` to ``path``; the suffix picks the format.

    ``*.ndjson`` writes the NDJSON event log; anything else writes the
    Chrome ``trace_event`` JSON document.  Returns the format written.
    """
    if path.endswith(".ndjson"):
        with open(path, "w") as stream:
            write_ndjson(recorder, stream)
        return "ndjson"
    with open(path, "w") as stream:
        json.dump(chrome_trace(recorder), stream)
        stream.write("\n")
    return "chrome"


def load_trace(path: str) -> dict[str, Any]:
    """Read a trace file (either exported format) back to spans + metrics.

    Returns ``{"format", "spans", "metrics"}`` where each span is a plain
    dict carrying at least ``name``/``wall_s``/``pid``/``tid``/``attributes``.
    """
    try:
        with open(path) as stream:
            text = stream.read()
    except OSError as exc:
        raise DataError(f"cannot read trace file {path!r}: {exc}") from exc
    if not text.strip():
        raise DataError(f"trace file {path!r} is empty")
    first_line = text.lstrip().splitlines()[0]
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        spans = []
        for event in document["traceEvents"]:
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args", {}))
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "start_s": float(event.get("ts", 0.0)) / 1e6,
                    "wall_s": float(event.get("dur", 0.0)) / 1e6,
                    "cpu_s": args.pop("cpu_s", None),
                    "pid": event.get("pid"),
                    "tid": event.get("tid"),
                    "parent_id": None,
                    "attributes": args,
                }
            )
        metrics = document.get("otherData", {}).get("metrics", {})
        return {"format": "chrome", "spans": spans, "metrics": metrics}
    # NDJSON: one JSON object per line.
    try:
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    except ValueError as exc:
        raise DataError(f"trace file {path!r} is neither Chrome JSON nor NDJSON: {exc}") from None
    if not all(isinstance(row, dict) for row in rows):
        raise DataError(f"trace file {path!r} has non-object NDJSON lines")
    spans = [row for row in rows if row.get("type") == "span"]
    metrics: dict[str, Any] = {}
    for row in rows:
        if row.get("type") == "metric":
            family = metrics.setdefault(
                row["name"], {"kind": row.get("kind"), "help": "", "series": []}
            )
            entry = {k: v for k, v in row.items() if k not in ("type", "name", "kind")}
            family["series"].append(entry)
    if not spans and not metrics:
        raise DataError(
            f"trace file {path!r} contains no spans or metrics "
            f"(first line: {first_line[:80]!r})"
        )
    return {"format": "ndjson", "spans": spans, "metrics": metrics}


def summarize_trace(trace: Mapping[str, Any], *, top: int = 15) -> dict[str, Any]:
    """The ``greenhpc obs`` digest of a loaded trace.

    ``phases`` aggregates spans per name (count/total/mean/max/share of the
    top-level total); ``top_spans`` lists the ``top`` longest individual
    spans with their attributes.
    """
    if top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top!r}")
    spans = list(trace.get("spans", []))
    phases = aggregate_spans(spans)
    total = sum(
        entry["total_s"]
        for entry in phases
        # Nested spans double-count; the per-name shares stay comparable by
        # normalizing against the largest aggregate instead of a tree walk.
    )
    reference = phases[0]["total_s"] if phases else 0.0
    for entry in phases:
        entry["mean_s"] = entry["total_s"] / entry["count"]
        entry["share"] = entry["total_s"] / reference if reference else 0.0
    top_spans = sorted(spans, key=lambda s: -float(s.get("wall_s", 0.0)))[:top]
    processes = sorted({(s.get("pid"), s.get("tid")) for s in spans})
    return {
        "n_spans": len(spans),
        "n_tracks": len(processes),
        "recorded_total_s": total,
        "phases": phases,
        "top_spans": [
            {
                "name": s.get("name"),
                "wall_s": float(s.get("wall_s", 0.0)),
                "pid": s.get("pid"),
                "attributes": dict(s.get("attributes", {})),
            }
            for s in top_spans
        ],
        "metrics": dict(trace.get("metrics", {})),
    }
