"""Counters, gauges and histograms: the metrics half of :mod:`repro.obs`.

A :class:`MetricsRegistry` holds named metric families, each optionally
labelled (``registry.counter("serve_requests_total", method="GET")``), and
renders them as a JSON-able :meth:`~MetricsRegistry.snapshot` or a
Prometheus-text-exposition :meth:`~MetricsRegistry.to_prometheus` page (what
``GET /metrics`` on the serve daemon returns).

Everything is stdlib.  Metric creation takes the registry lock; the hot
mutators (``inc``/``set``/``observe``) are lock-free single attribute or
array updates — under CPython's GIL these are effectively atomic, and
best-effort accuracy under thread races is the usual (and accepted) contract
for process metrics.  Simulator-loop writers are single-threaded anyway.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (requests served, rounds executed)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Mapping[str, str]) -> None:
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount!r}")
        self.value += amount


class Gauge:
    """A point-in-time value that moves both ways (queue depth, power draw)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Mapping[str, str]) -> None:
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount`` (negative moves it down)."""
        self.value += amount


class Histogram:
    """A distribution summarized as cumulative buckets plus sum/count/min/max."""

    __slots__ = ("labels", "buckets", "counts", "total", "count", "min", "max")

    def __init__(
        self, labels: Mapping[str, str], buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.labels = dict(labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ConfigurationError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf bucket last
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        # First bucket with value <= bound (bisect runs in C; the bounds are
        # sorted at construction), falling through to the +Inf slot.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """The sample mean (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: kind, help text, and its labelled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str, buckets: Optional[Sequence[float]]):
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: dict[tuple, Any] = {}


class MetricsRegistry:
    """A process-local registry of named counter/gauge/histogram families.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's kind (and help text); later calls with the same name
    and labels return the same child, so call sites can re-resolve cheaply
    or keep the returned handle for hot loops.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, Any],
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help, buckets)
            elif family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                if kind == "histogram":
                    child = Histogram(
                        {str(k): str(v) for k, v in labels.items()},
                        family.buckets or DEFAULT_BUCKETS,
                    )
                else:
                    child = _KINDS[kind]({str(k): str(v) for k, v in labels.items()})
                family.children[key] = child
            return child

    def counter(self, name: str, *, help: str = "", **labels: Any) -> Counter:
        """The counter ``name`` for this label set (created on first use)."""
        return self._child(name, "counter", help, labels)

    def gauge(self, name: str, *, help: str = "", **labels: Any) -> Gauge:
        """The gauge ``name`` for this label set (created on first use)."""
        return self._child(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram ``name`` for this label set (created on first use)."""
        return self._child(name, "histogram", help, labels, buckets=buckets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot of every family and child, in creation order."""
        out: dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series = []
            for child in family.children.values():
                entry: dict[str, Any] = {"labels": dict(child.labels)}
                if family.kind == "histogram":
                    entry.update(
                        count=child.count,
                        sum=child.total,
                        mean=child.mean,
                        min=child.min,
                        max=child.max,
                        buckets={str(b): c for b, c in zip(child.buckets, child.counts)},
                    )
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help, "series": series}
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children.values():
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.buckets, child.counts):
                        cumulative += count
                        labels = _render_labels({**child.labels, "le": _format_bound(bound)})
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    cumulative += child.counts[-1]
                    labels = _render_labels({**child.labels, "le": "+Inf"})
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    base = _render_labels(child.labels)
                    lines.append(f"{family.name}_sum{base} {_format_value(child.total)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    labels = _render_labels(child.labels)
                    lines.append(f"{family.name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return repr(float(bound))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    escaped = {
        k: str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        for k, v in labels.items()
    }
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(escaped.items()))
    return "{" + inner + "}"
