"""Run profiles: the per-result digest of a traced run.

A :class:`RunProfile` compresses one run's spans (and optionally a metrics
snapshot) into the aggregate view a result object can carry without hauling
the raw trace around: per-span-name totals plus the headline wall time.
It is attached to :class:`~repro.experiments.ExperimentResult`,
:class:`~repro.fleet.result.FleetResult` and
:class:`~repro.experiments.campaign.CampaignResult` when tracing is enabled
(and always, for fleet results, whose step timings are recorder views
already) — so "where did the time go" is answerable from the object an
experiment returns, not only from an exported trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

__all__ = ["RunProfile", "aggregate_spans"]


def aggregate_spans(spans: Sequence[Any]) -> list[dict[str, Any]]:
    """Per-name count/total/max over span records, largest total first.

    Accepts :class:`~repro.obs.recorder.SpanRecord` objects or the dict form
    exporters read back (anything with ``name``/``wall_s``).
    """
    stats: dict[str, dict[str, Any]] = {}
    for span in spans:
        name = span.name if hasattr(span, "name") else span["name"]
        wall = float(span.wall_s if hasattr(span, "wall_s") else span["wall_s"])
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = {"name": name, "count": 0, "total_s": 0.0, "max_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += wall
        if wall > entry["max_s"]:
            entry["max_s"] = wall
    return sorted(stats.values(), key=lambda e: (-e["total_s"], e["name"]))


@dataclass(frozen=True)
class RunProfile:
    """Aggregate timing view of one traced run.

    Attributes
    ----------
    total_s:
        Wall time of the run's root span (or the spans' summed envelope when
        no single root covers them).
    n_spans:
        Number of spans aggregated.
    phases:
        Per-span-name aggregates (``name``/``count``/``total_s``/``max_s``),
        largest total first.
    metrics:
        Optional :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken at
        profile build time.
    """

    total_s: float
    n_spans: int
    phases: tuple[Mapping[str, Any], ...] = ()
    metrics: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_spans(
        cls,
        spans: Sequence[Any],
        *,
        total_s: Optional[float] = None,
        metrics: Optional[Mapping[str, Any]] = None,
    ) -> "RunProfile":
        """Build a profile over ``spans`` (see :func:`aggregate_spans`)."""
        phases = aggregate_spans(spans)
        if total_s is None:
            # Without an explicit root, top-level spans bound the run.
            roots = [
                s
                for s in spans
                if (s.parent_id if hasattr(s, "parent_id") else s.get("parent_id")) is None
            ]
            total_s = sum(
                float(s.wall_s if hasattr(s, "wall_s") else s["wall_s"]) for s in roots
            )
        return cls(
            total_s=float(total_s),
            n_spans=len(spans),
            phases=tuple(phases),
            metrics=dict(metrics or {}),
        )

    def phase(self, name: str) -> Optional[Mapping[str, Any]]:
        """The aggregate entry for one span name (``None`` when absent)."""
        for entry in self.phases:
            if entry["name"] == name:
                return entry
        return None

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form."""
        return {
            "total_s": self.total_s,
            "n_spans": self.n_spans,
            "phases": [dict(entry) for entry in self.phases],
            "metrics": dict(self.metrics),
        }
