"""The bundled simulator-metrics observer.

:class:`MetricsObserver` rides the existing
:class:`~repro.cluster.observers.SimulatorObserver` lifecycle hooks and turns
them into :mod:`repro.obs.metrics` series: scheduling-round and job counters,
queue-depth / IT-power / GPU-utilization gauges, and a per-round
started-decisions histogram.  :class:`~repro.cluster.simulator.
ClusterSimulator` attaches one automatically when the ambient recorder is
enabled at construction — with tracing off the observer list stays empty and
the event loop's ``if self._observers:`` guard keeps the hot path untouched.

The observer is stateless for checkpointing (the base class's ``None``
snapshot protocol applies): metric values are process-local run telemetry,
not simulation state, so restored runs remain bit-identical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from ..cluster.observers import SimulatorObserver
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.simulator import ClusterSimulator
    from ..scheduler.base import ScheduleDecision, SchedulingContext
    from ..scheduler.job import Job

__all__ = ["MetricsObserver"]

#: Bucket bounds for the per-round started-jobs histogram.
_DECISION_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


class MetricsObserver(SimulatorObserver):
    """Publishes simulator-loop telemetry into a :class:`MetricsRegistry`.

    All metric handles are resolved once at construction so the hooks do no
    registry lookups — each hook is a handful of attribute updates, cheap
    enough for the per-tick path.
    """

    transient = True

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._rounds = metrics.counter(
            "sim_scheduling_rounds_total", help="Scheduling rounds executed"
        )
        self._jobs_started = metrics.counter(
            "sim_jobs_started_total", help="Jobs that acquired an allocation"
        )
        self._jobs_finished = metrics.counter(
            "sim_jobs_finished_total", help="Jobs that left the cluster"
        )
        self._ticks = metrics.counter(
            "sim_ticks_total", help="Recording ticks fired"
        )
        self._queue_depth = metrics.gauge(
            "sim_queue_depth", help="Pending jobs after the last scheduling round"
        )
        self._it_power = metrics.gauge(
            "sim_it_power_w", help="IT power at the last recording tick (W)"
        )
        self._utilization = metrics.gauge(
            "sim_gpu_utilization", help="Allocated GPU fraction at the last tick"
        )
        self._round_decisions = metrics.histogram(
            "sim_round_decisions",
            help="Jobs started per scheduling round",
            buckets=_DECISION_BUCKETS,
        )

    # The hooks mutate metric attributes directly rather than going through
    # ``inc``/``set``/``observe``: they fire thousands of times per run on the
    # traced hot path, and the extra method dispatch plus argument validation
    # is what the <=1.05x tracing-overhead gate budgets against.

    def on_job_start(self, simulator: "ClusterSimulator", job: "Job", now_h: float) -> None:
        self._jobs_started.value += 1.0

    def on_job_finish(
        self, simulator: "ClusterSimulator", job: "Job", now_h: float, *, completed: bool
    ) -> None:
        self._jobs_finished.value += 1.0

    def on_round(
        self,
        simulator: "ClusterSimulator",
        now_h: float,
        context: "SchedulingContext",
        decisions: "list[ScheduleDecision]",
    ) -> None:
        self._rounds.value += 1.0
        self._queue_depth.value = float(simulator.n_pending)
        value = float(len(decisions))
        hist = self._round_decisions
        hist.counts[bisect_left(hist.buckets, value)] += 1
        hist.total += value
        hist.count += 1
        if hist.min is None or value < hist.min:
            hist.min = value
        if hist.max is None or value > hist.max:
            hist.max = value

    def on_tick(self, simulator: "ClusterSimulator", now_h: float, it_power_w: float) -> None:
        self._ticks.value += 1.0
        self._it_power.value = float(it_power_w)
        cluster = simulator.cluster
        total = cluster.total_gpus
        if total:
            self._utilization.value = 1.0 - cluster.n_free_gpus / total
