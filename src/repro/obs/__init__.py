"""``repro.obs`` — stdlib-only tracing and metrics for the toolkit.

The subsystem has three pieces:

* :class:`TraceRecorder` (:mod:`repro.obs.recorder`) collects nested,
  wall-clock-timed spans with structured attributes from every instrumented
  layer — cluster simulator, fleet coordinator and workers, campaigns, the
  serve daemon.  Instrumentation reads the **ambient** recorder
  (:func:`get_recorder`), which defaults to the zero-overhead
  :data:`NULL_RECORDER`; installing a real recorder (:func:`set_recorder`,
  the :class:`recording` context manager, or ``greenhpc --trace-out``) turns
  tracing on process-wide.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) holds counters, gauges
  and histograms; :class:`MetricsObserver` bridges the existing simulator
  observer hooks into it, and the serve daemon exposes its registry at
  ``GET /metrics`` in Prometheus text format.
* Exporters (:mod:`repro.obs.export`): :func:`write_trace` emits Chrome
  ``trace_event`` JSON (loadable in Perfetto) or an NDJSON event log by file
  suffix; :func:`load_trace`/:func:`summarize_trace` read either back for
  the ``greenhpc obs`` summary; :class:`RunProfile`
  (:mod:`repro.obs.profile`) is the per-result aggregate attached to
  experiment/fleet/campaign results when tracing is on.

Design contract: with tracing disabled the instrumented paths do no clock
reads and allocate nothing per span, and simulation outputs are bit-identical
to an uninstrumented build — tracing observes runs, it never participates in
them.
"""

from .export import chrome_trace, load_trace, summarize_trace, write_ndjson, write_trace
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .observer import MetricsObserver
from .profile import RunProfile, aggregate_spans
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    SpanRecord,
    TraceRecorder,
    get_recorder,
    recording,
    set_recorder,
)

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanRecord",
    "get_recorder",
    "set_recorder",
    "recording",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "MetricsObserver",
    "RunProfile",
    "aggregate_spans",
    "chrome_trace",
    "write_ndjson",
    "write_trace",
    "load_trace",
    "summarize_trace",
]
