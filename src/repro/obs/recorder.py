"""Span recording: the tracing half of :mod:`repro.obs`.

A :class:`TraceRecorder` collects **nested spans** — named, wall-clock-timed
(optionally CPU-timed) sections of work with structured attributes — from any
layer of the toolkit.  Instrumented code asks the *ambient* recorder
(:func:`get_recorder`) for a span and uses it as a context manager::

    from repro import obs

    with obs.get_recorder().span("campaign.point", index=3, cache="miss"):
        ...the work being measured...

When tracing is off the ambient recorder is the process-wide
:data:`NULL_RECORDER`, whose :meth:`~NullRecorder.span` returns one shared
do-nothing context manager — no allocation per finished span, no clock reads,
no lock traffic — so instrumentation left in hot paths costs near zero.

Nesting is tracked per thread: a span opened while another is open on the
same thread records that span as its parent, so exporters can rebuild the
call tree.  Finished spans carry ``pid``/``tid`` so batches recorded on
worker processes (see :mod:`repro.fleet.parallel`) merge into one trace with
per-process timelines; ``time.perf_counter`` is CLOCK_MONOTONIC system-wide
on Linux, which keeps cross-process timestamps comparable.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "recording",
]


@dataclass(slots=True)
class SpanRecord:
    """One finished span: what ran, when, for how long, and under what.

    ``start_s`` is a :func:`time.perf_counter` reading; exporters normalize
    against the earliest span so absolute values never leave the process.
    ``cpu_s`` is ``None`` unless the recorder was built with ``cpu_time=True``.
    """

    span_id: int
    name: str
    start_s: float
    wall_s: float = 0.0
    cpu_s: Optional[float] = None
    parent_id: Optional[int] = None
    depth: int = 0
    pid: int = 0
    tid: int = 0
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready form (the NDJSON exporter's row body)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }


class _OpenSpan:
    """Context manager for one in-flight span; ``.record`` is the result.

    The record's timing fields are filled on ``__exit__``; keep a reference
    to read ``wall_s`` after the block (this is how
    :class:`~repro.fleet.result.FleetStepTimings` is built as a view over
    the recorder instead of hand-rolled ``perf_counter`` arithmetic).
    """

    __slots__ = ("_recorder", "record", "_cpu_start")

    def __init__(self, recorder: "TraceRecorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record
        self._cpu_start: Optional[float] = None

    def set(self, key: str, value: Any) -> "_OpenSpan":
        """Attach one attribute mid-span (returned for chaining)."""
        self.record.attributes[key] = value
        return self

    def __enter__(self) -> "_OpenSpan":
        stack = self._recorder._stack()
        if stack:
            parent = stack[-1]
            self.record.parent_id = parent.span_id
            self.record.depth = parent.depth + 1
        stack.append(self.record)
        if self._recorder.cpu_time:
            self._cpu_start = time.process_time()
        self.record.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end_s = time.perf_counter()
        record = self.record
        record.wall_s = end_s - record.start_s
        if self._cpu_start is not None:
            record.cpu_s = time.process_time() - self._cpu_start
        stack = self._recorder._stack()
        if stack and stack[-1] is record:
            stack.pop()
        self._recorder._append(record)


class TraceRecorder:
    """Collects finished spans (and a :class:`MetricsRegistry`) for one run.

    Thread-safe: spans may be opened concurrently from many threads (the
    serve daemon does); each thread keeps its own open-span stack, finished
    spans land in one shared list in completion order.

    Parameters
    ----------
    cpu_time:
        Also sample :func:`time.process_time` around every span, so traces
        distinguish wall waiting from CPU burn.  Off by default (two extra
        clock reads per span).
    """

    enabled = True

    def __init__(self, *, cpu_time: bool = False) -> None:
        self.cpu_time = bool(cpu_time)
        self.metrics = MetricsRegistry()
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _OpenSpan:
        """Open one span; use as a context manager around the work."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            name=name,
            start_s=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=attributes,
        )
        return _OpenSpan(self, record)

    def event(self, name: str, **attributes: Any) -> SpanRecord:
        """Record an instant (zero-duration) event span."""
        with self.span(name, **attributes) as open_span:
            pass
        return open_span.record

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------------
    # Reading / merging
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[SpanRecord]:
        """A snapshot list of every finished span, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def mark(self) -> int:
        """A cursor into the span list; pass to :meth:`spans_since`."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> list[SpanRecord]:
        """The spans finished since :meth:`mark` returned ``mark``."""
        with self._lock:
            return list(self._spans[mark:])

    def extend(self, spans: Iterable[SpanRecord]) -> list[SpanRecord]:
        """Merge a batch of foreign spans (e.g. shipped from a worker process).

        Span ids are remapped into this recorder's id space; parent links
        *within* the batch are preserved, parents outside it are dropped.
        Returns the merged records.
        """
        batch = list(spans)
        if not batch:
            return []
        with self._lock:
            id_map = {}
            for record in batch:
                id_map[record.span_id] = self._next_id
                self._next_id += 1
            for record in batch:
                record.parent_id = id_map.get(record.parent_id)
                record.span_id = id_map[record.span_id]
            self._spans.extend(batch)
        return batch


class _NullSpan:
    """The do-nothing span: one shared instance, no state, no clocks."""

    __slots__ = ()

    record = None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead recorder installed when tracing is disabled.

    Every method is a constant-time no-op returning shared immutable
    objects; the ``metrics`` registry exists (so blind
    ``get_recorder().metrics`` reads never fail) but nothing in the toolkit
    writes to it while disabled — gated writers check :attr:`enabled`.
    """

    enabled = False
    cpu_time = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    @property
    def spans(self) -> list[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0

    def mark(self) -> int:
        return 0

    def spans_since(self, mark: int) -> list[SpanRecord]:
        return []

    def extend(self, spans: Iterable[SpanRecord]) -> list[SpanRecord]:
        return []


#: The process-wide disabled recorder (also the default ambient recorder).
NULL_RECORDER = NullRecorder()

_ambient: Any = NULL_RECORDER
_ambient_lock = threading.Lock()


def get_recorder() -> Any:
    """The ambient recorder instrumented layers record into."""
    return _ambient


def set_recorder(recorder: Any) -> Any:
    """Install ``recorder`` as the ambient recorder; returns the previous one.

    Pass :data:`NULL_RECORDER` (or the previous return value) to disable
    tracing again.  The CLI's ``--trace-out`` flag is the usual caller.
    """
    global _ambient
    with _ambient_lock:
        previous = _ambient
        _ambient = recorder if recorder is not None else NULL_RECORDER
    return previous


class recording:
    """Context manager installing ``recorder`` as ambient for the block.

    >>> from repro.obs import TraceRecorder, recording
    >>> rec = TraceRecorder()
    >>> with recording(rec):
    ...     pass  # everything traced in here lands in ``rec``
    """

    def __init__(self, recorder: Any) -> None:
        self.recorder = recorder
        self._previous: Any = None

    def __enter__(self) -> Any:
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: Any) -> None:
        set_recorder(self._previous)
