"""The content-addressed on-disk artifact store.

One :class:`ArtifactStore` directory holds every cached campaign artifact
as a JSON file addressed by its content key (see
:mod:`repro.artifacts.keys`), sharded into 256 two-hex-character
subdirectories so fleet-scale campaigns do not pile tens of thousands of
files into one directory.

Durability follows :class:`~repro.serve.checkpoint.CheckpointStore`: every
write goes to a temp file in the same directory and lands with
``os.replace``, so a crash mid-write never leaves a half-artifact at a live
address.  Reads are defensive the other way: a corrupt, truncated or
foreign file at an address is treated as a **miss** (and counted in
:attr:`ArtifactStore.corrupt_reads`), never an error — the caller simply
recomputes and overwrites it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from ..errors import ArtifactError

__all__ = ["ARTIFACT_FORMAT_VERSION", "ArtifactStore", "ArtifactStoreStats"]

#: Version of the artifact file envelope; files written by a different
#: envelope version read as misses (the payload schema is re-derived).
ARTIFACT_FORMAT_VERSION = 1

_KEY_CHARS = frozenset("0123456789abcdef")


def _validate_key(key: str) -> str:
    if not key or not isinstance(key, str) or set(key) - _KEY_CHARS or len(key) < 8:
        raise ArtifactError(f"malformed artifact key {key!r} (expected a hex digest)")
    return key


@dataclass(frozen=True)
class ArtifactStoreStats:
    """Size and traffic counters of one store.

    ``n_artifacts``/``total_bytes`` describe the on-disk population;
    ``hits``/``misses``/``writes``/``corrupt_reads`` count this process's
    traffic through the store object since it was opened.
    """

    root: str
    n_artifacts: int
    total_bytes: int
    hits: int
    misses: int
    writes: int
    corrupt_reads: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "n_artifacts": self.n_artifacts,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_reads": self.corrupt_reads,
        }


class ArtifactStore:
    """Content-addressed JSON artifacts under one root directory.

    Parameters
    ----------
    root:
        Directory to hold the artifacts (created if missing).

    Examples
    --------
    >>> import tempfile
    >>> store = ArtifactStore(tempfile.mkdtemp())
    >>> key = "ab" * 16
    >>> store.get(key) is None
    True
    >>> _ = store.put(key, {"rows": [1, 2, 3]})
    >>> store.get(key)
    {'rows': [1, 2, 3]}
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_reads = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The on-disk address of ``key`` (whether or not it exists)."""
        key = _validate_key(key)
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        """Every artifact key currently on disk (sorted, for determinism)."""
        found = []
        for shard in self.root.iterdir():
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in shard.iterdir():
                if path.suffix == ".json" and path.stem.startswith(shard.name):
                    found.append(path.stem)
        return iter(sorted(found))

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The payload stored at ``key``, or ``None`` on any kind of miss.

        Absent, truncated, corrupt, wrong-envelope-version and
        key-mismatched files all read as ``None`` — the cache contract is
        "a hit is trustworthy, everything else recomputes".
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            envelope = json.loads(raw)
        except ValueError:
            self.corrupt_reads += 1
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != ARTIFACT_FORMAT_VERSION
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            self.corrupt_reads += 1
            self.misses += 1
            return None
        self.hits += 1
        return envelope["payload"]

    def put(self, key: str, payload: dict) -> Path:
        """Atomically write ``payload`` at ``key`` (overwriting any old value)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            encoded = json.dumps(
                {"format": ARTIFACT_FORMAT_VERSION, "key": key, "payload": payload},
                allow_nan=False,
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact payload for key {key!r} is not JSON-serializable: {exc}"
            ) from None
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise ArtifactError(f"could not write artifact {key!r}: {exc}") from None
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def gc(self, live: Iterable[str]) -> int:
        """Delete every artifact whose key is not in ``live``; return the count.

        The caller names the keys that are still reachable (e.g. a
        :class:`~repro.experiments.dag.CampaignDAG`'s full key set); the
        store has no notion of liveness of its own.  Stray non-artifact
        files are left alone.
        """
        keep = {_validate_key(key) for key in live}
        removed = 0
        for key in list(self.keys()):
            if key in keep:
                continue
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass  # best effort: a vanished file is already collected
        return removed

    def stats(self) -> ArtifactStoreStats:
        """Current population and traffic counters."""
        n_artifacts = 0
        total_bytes = 0
        for key in self.keys():
            try:
                total_bytes += self.path_for(key).stat().st_size
                n_artifacts += 1
            except OSError:
                continue
        return ArtifactStoreStats(
            root=str(self.root),
            n_artifacts=n_artifacts,
            total_bytes=total_bytes,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            corrupt_reads=self.corrupt_reads,
        )
