"""Stable content-addressed cache keys for campaign artifacts.

Every artifact in an :class:`~repro.artifacts.store.ArtifactStore` is
addressed by a hex digest computed here.  The rules that make the keys a
sound cache identity:

* **Stable** — :func:`stable_hash` feeds a canonical JSON encoding (sorted
  keys, no whitespace, strict values) of the identity payload to BLAKE2b,
  so the digest is identical across processes, platforms and Python
  versions (unlike the built-in ``hash``).
* **Complete** — a run artifact's key (:func:`run_key`) covers everything
  that determines the simulation's output: the fully resolved
  :class:`~repro.experiments.spec.ScenarioSpec`, the experiment name, the
  resolved experiment parameters, the point's derived seed, and the
  :func:`code_version` of the package that produced it.  Upgrading the
  package therefore invalidates stale artifacts instead of silently
  serving results computed by older code.
* **Cascading** — a derived stage's key (:func:`derived_key`) hashes its
  *upstream artifact keys*, so invalidating one run point re-keys (and
  thereby invalidates) exactly the downstream subgraph that depends on it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..config import config_to_jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.campaign import CampaignPoint

__all__ = ["code_version", "stable_hash", "run_key", "derived_key"]

#: Hex digest length of every artifact key (BLAKE2b-128).
KEY_HEX_LENGTH = 32

#: Environment override for the code-version cache-key component (tests use
#: this to simulate a package upgrade without reinstalling).
CODE_VERSION_ENV = "GREENHPC_CODE_VERSION"


def code_version() -> str:
    """The code-version component of every cache key.

    Single-sourced with ``greenhpc --version``: this is exactly
    ``repro.__version__`` (``pyproject.toml`` via ``importlib.metadata``,
    with the source-checkout fallback), so bumping the package version is
    what retires every previously cached artifact.  The
    ``GREENHPC_CODE_VERSION`` environment variable overrides it — the
    lever the cache-invalidation tests (and a cautious operator mid-
    refactor) use to force a cold store.
    """
    override = os.environ.get(CODE_VERSION_ENV, "").strip()
    if override:
        return override
    from .. import __version__

    return __version__


def stable_hash(payload: Any) -> str:
    """BLAKE2b hex digest of the canonical JSON encoding of ``payload``.

    ``payload`` is passed through
    :func:`~repro.config.config_to_jsonable` first, so dataclass configs,
    numpy values and non-finite floats hash by their canonical JSON form —
    the same form the artifacts themselves are stored in.
    """
    canonical = json.dumps(
        config_to_jsonable(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    h = hashlib.blake2b(canonical.encode("utf-8"), digest_size=KEY_HEX_LENGTH // 2)
    return h.hexdigest()


def run_key(point: "CampaignPoint", *, version: Optional[str] = None) -> str:
    """The content address of one campaign point's run artifact.

    Hashes the complete identity of the simulation: (scenario spec,
    experiment name, resolved params, derived seed, code version).  Two
    campaigns that expand to the same point — regardless of grid shape or
    point order — share one artifact.
    """
    return stable_hash(
        {
            "stage": "run",
            "experiment": point.experiment,
            "spec": point.spec.to_dict(),
            "params": dict(point.params),
            "seed": point.seed,
            "code": version if version is not None else code_version(),
        }
    )


def derived_key(
    stage: str, upstream: Iterable[str], *, version: Optional[str] = None, **extra: Any
) -> str:
    """The content address of a derived-stage artifact.

    ``upstream`` are the artifact keys this stage consumes (order matters:
    it mirrors point order); changing any upstream key changes this key,
    which is what makes invalidation cascade down the DAG without any
    bookkeeping.  ``extra`` carries stage configuration that shapes the
    output (e.g. the report format).
    """
    return stable_hash(
        {
            "stage": stage,
            "upstream": list(upstream),
            "code": version if version is not None else code_version(),
            **extra,
        }
    )
