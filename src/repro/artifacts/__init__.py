"""Content-addressed artifact caching for campaign pipelines.

This package is the persistence layer behind incremental campaigns: an
on-disk :class:`ArtifactStore` maps stable content keys to JSON payloads,
and :mod:`repro.artifacts.keys` defines how those keys are derived —
:func:`run_key` hashes one campaign point's complete identity (scenario
spec, experiment, resolved params, derived seed, :func:`code_version`),
while :func:`derived_key` hashes a stage's *upstream keys*, so editing one
grid value re-keys exactly the subgraph that depends on it.

The store itself is deliberately dumb: ``get`` (anything unreadable is a
miss), atomic ``put`` (temp file + ``os.replace``), ``gc`` against a
caller-supplied live set, and ``stats``.  All policy — what to cache, when
a key is stale, what a payload means — lives with the callers:
:func:`repro.experiments.run_campaign` caches per-point run artifacts, and
:class:`repro.experiments.dag.CampaignDAG` chains the derived
``summarize`` → ``compare`` → ``report`` stages on top.

>>> from repro.artifacts import ArtifactStore, stable_hash
>>> import tempfile
>>> store = ArtifactStore(tempfile.mkdtemp())
>>> key = stable_hash({"what": "demo"})
>>> _ = store.put(key, {"value": 42})
>>> store.get(key)["value"]
42
"""

from .keys import code_version, derived_key, run_key, stable_hash
from .store import ARTIFACT_FORMAT_VERSION, ArtifactStore, ArtifactStoreStats

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactStore",
    "ArtifactStoreStats",
    "code_version",
    "derived_key",
    "run_key",
    "stable_hash",
]
