"""Scheduling & control: jobs, queues, scheduling policies and power caps.

The scheduler is the ``p`` lever of Eq. 1 and the power-cap controller is part
of the ``c`` lever.  The package provides:

* :mod:`~repro.scheduler.job` — the :class:`Job` model (GPU count, duration,
  deadline, deferability, power-cap assignment) and its lifecycle states.
* :mod:`~repro.scheduler.queue` — FIFO job queues and the *segmented* queue
  structure from Section II.C (per-profile queues with stated preferences).
* :mod:`~repro.scheduler.base` — the :class:`Scheduler` interface and the
  :class:`SchedulingContext` handed to policies (grid state, weather, budget).
* Concrete policies: :class:`FifoScheduler`, :class:`BackfillScheduler`,
  :class:`EnergyAwareScheduler`, :class:`CarbonAwareScheduler`,
  :class:`DeadlineAwareScheduler`.
* :mod:`~repro.scheduler.powercap` — static and adaptive GPU power-cap
  controllers (the mechanism shown effective by Frey et al. [15]).
"""

from .job import Job, JobState
from .queue import JobQueue, QueuePolicy, SegmentedQueueSystem
from .base import Scheduler, SchedulingContext, ScheduleDecision
from .fifo import FifoScheduler
from .backfill import BackfillScheduler
from .energy_aware import EnergyAwareScheduler
from .carbon_aware import CarbonAwareScheduler
from .deadline_aware import DeadlineAwareScheduler
from .powercap import StaticPowerCapPolicy, AdaptivePowerCapController, powercap_energy_tradeoff

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "QueuePolicy",
    "SegmentedQueueSystem",
    "Scheduler",
    "SchedulingContext",
    "ScheduleDecision",
    "FifoScheduler",
    "BackfillScheduler",
    "EnergyAwareScheduler",
    "CarbonAwareScheduler",
    "DeadlineAwareScheduler",
    "StaticPowerCapPolicy",
    "AdaptivePowerCapController",
    "powercap_energy_tradeoff",
]
