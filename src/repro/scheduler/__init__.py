"""Scheduling & control: jobs, queues, composable policies and power caps.

The scheduler is the ``p`` lever of Eq. 1 and the power-cap controller is part
of the ``c`` lever.  Policies are built from four independently pluggable
**stages**, composed by a :class:`PolicyPipeline`:

* **ordering** — the order pending jobs are considered in: submission order
  (``submit-order``), earliest-deadline-first (``edf``), shortest-job-first
  (``sjf``);
* **admission gates** — whether a fitting job may start *now*: carbon
  green-hour deferral (``carbon``), an electricity-price ceiling (``price``),
  a minimum renewable share (``renewable``), deadline-slack deferral
  (``slack``), the facility power budget (``budget``);
* **placement** — how the queue flows into free GPUs: strict head-of-line
  ``fifo`` or EASY-style ``backfill``, packed or spread;
* **power control** — a chain of cap transformers over each started job's own
  agreed cap: static caps (``cap``), dirty-hour caps (``dirty-cap``),
  per-job deadline-aware caps (``deadline-cap``) and tick-driven adaptive
  budget following (``adaptive``).

Any composition is addressable by a **spec string** in the
:mod:`~repro.scheduler.compose` grammar — ``token ('+' token)*`` with
``name(key=value, ...)`` parameters — e.g.
``"backfill+carbon(cap=0.7)+budget"`` or
``"edf+backfill+slack(margin=2.0)+cap(fraction=0.8)"``; see
:func:`~repro.scheduler.compose.parse_policy` /
:func:`~repro.scheduler.compose.build_pipeline`, and ``greenhpc policies``
for the generated catalogue.  :func:`~repro.core.levers.register_policy`
names canned compositions; the five legacy policy names resolve to pipelines
with bit-identical job records.

The package provides:

* :mod:`~repro.scheduler.job` — the :class:`Job` model (GPU count, duration,
  deadline, deferability, power-cap assignment) and its lifecycle states.
* :mod:`~repro.scheduler.queue` — FIFO job queues and the *segmented* queue
  structure from Section II.C (per-profile queues with stated preferences).
* :mod:`~repro.scheduler.base` — the :class:`Scheduler` interface and the
  :class:`SchedulingContext` handed to policies (grid state, weather, budget).
* :mod:`~repro.scheduler.stages` — the stage taxonomy listed above.
* :mod:`~repro.scheduler.pipeline` / :mod:`~repro.scheduler.compose` — the
  pipeline scheduler and the spec grammar / stage registry.
* Legacy monolithic policies (:class:`FifoScheduler`,
  :class:`BackfillScheduler`, :class:`EnergyAwareScheduler`,
  :class:`CarbonAwareScheduler`, :class:`DeadlineAwareScheduler`) — kept as
  the parity references for the canned compositions.
* :mod:`~repro.scheduler.powercap` — static and adaptive GPU power-cap
  controllers (the mechanism shown effective by Frey et al. [15]).
"""

from .job import Job, JobState
from .queue import JobQueue, QueuePolicy, SegmentedQueueSystem
from .base import Scheduler, SchedulingContext, ScheduleDecision
from .fifo import FifoScheduler
from .backfill import BackfillScheduler
from .energy_aware import EnergyAwareScheduler
from .carbon_aware import CarbonAwareScheduler
from .deadline_aware import DeadlineAwareScheduler
from .powercap import StaticPowerCapPolicy, AdaptivePowerCapController, powercap_energy_tradeoff
from .stages import (
    AdaptiveCapStage,
    AdmissionGate,
    DeadlineOrdering,
    DeadlineSlackCapStage,
    DeadlineSlackGate,
    DirtyHourCapStage,
    GreenHourGate,
    OrderingStage,
    Placement,
    PowerBudgetGate,
    PowerStage,
    PriceCeilingGate,
    RenewableShareGate,
    ShortestJobOrdering,
    StaticCapStage,
    SubmitOrdering,
)
from .pipeline import PolicyPipeline
from .compose import (
    PolicySpec,
    StageSpec,
    build_pipeline,
    parse_policy,
    register_stage,
    split_top_level,
    stage_names,
    list_stage_definitions,
)

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "QueuePolicy",
    "SegmentedQueueSystem",
    "Scheduler",
    "SchedulingContext",
    "ScheduleDecision",
    "FifoScheduler",
    "BackfillScheduler",
    "EnergyAwareScheduler",
    "CarbonAwareScheduler",
    "DeadlineAwareScheduler",
    "StaticPowerCapPolicy",
    "AdaptivePowerCapController",
    "powercap_energy_tradeoff",
    # Stage taxonomy
    "OrderingStage",
    "SubmitOrdering",
    "DeadlineOrdering",
    "ShortestJobOrdering",
    "Placement",
    "AdmissionGate",
    "GreenHourGate",
    "PriceCeilingGate",
    "RenewableShareGate",
    "DeadlineSlackGate",
    "PowerBudgetGate",
    "PowerStage",
    "StaticCapStage",
    "DirtyHourCapStage",
    "DeadlineSlackCapStage",
    "AdaptiveCapStage",
    # Pipeline + grammar
    "PolicyPipeline",
    "PolicySpec",
    "StageSpec",
    "parse_policy",
    "build_pipeline",
    "register_stage",
    "split_top_level",
    "stage_names",
    "list_stage_definitions",
]
