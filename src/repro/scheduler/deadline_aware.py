"""Deadline-aware (earliest-deadline-first) scheduling.

Section III observes that research activity — and therefore compute demand —
clusters ahead of conference deadlines.  A deadline-aware policy makes that
information explicit: jobs carrying deadlines are ordered earliest-deadline-
first, jobs without deadlines fill in behind them, and deferrable jobs may
additionally be pushed into green hours as long as their deadline slack
allows it (combining Sections II.A and III).

Kept as the parity reference for the registered ``deadline-aware`` pipeline
composition (spec ``"edf+backfill+slack(margin=2.0)"``); the EDF key lives on
in :class:`~repro.scheduler.stages.DeadlineOrdering` and the slack predicate
in :class:`~repro.scheduler.stages.DeadlineSlackGate`.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.resources import Cluster
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job
from .powercap import StaticPowerCapPolicy

__all__ = ["DeadlineAwareScheduler"]


class DeadlineAwareScheduler(Scheduler):
    """EDF ordering with optional carbon-aware use of deadline slack.

    Parameters
    ----------
    power_cap_policy:
        Optional static power-cap policy for started jobs.
    use_slack_for_carbon:
        When true, jobs whose deadline slack exceeds ``slack_margin_h`` are
        deferred during dirty hours even if they are not explicitly marked
        deferrable — the deadline itself bounds the deferral.
    slack_margin_h:
        Safety margin kept between the latest feasible start and the start
        the scheduler is willing to delay to.
    """

    name = "deadline-aware"

    def __init__(
        self,
        power_cap_policy: Optional[StaticPowerCapPolicy] = None,
        *,
        use_slack_for_carbon: bool = True,
        slack_margin_h: float = 2.0,
    ) -> None:
        self.power_cap_policy = power_cap_policy
        self.use_slack_for_carbon = bool(use_slack_for_carbon)
        if slack_margin_h < 0:
            raise ValueError(f"slack_margin_h must be non-negative, got {slack_margin_h!r}")
        self.slack_margin_h = float(slack_margin_h)

    def _cap_for(self, job: Job) -> Optional[float]:
        if self.power_cap_policy is None:
            return job.power_cap_fraction
        return self.power_cap_policy.cap_for(job)

    def _sort_key(self, job: Job) -> tuple:
        deadline = job.deadline_h if job.deadline_h is not None else float("inf")
        return (deadline, job.submit_time_h, job.job_id)

    def _may_start_now(self, job: Job, context: SchedulingContext) -> bool:
        if context.is_green_hour() or not self.use_slack_for_carbon:
            return True
        if job.deadline_h is None:
            # No deadline: fall back to the explicit deferability contract.
            if job.deferrable:
                return context.now_h >= job.must_start_by() - 1e-9
            return True
        latest_start = job.latest_start_for_deadline(slowdown_factor=1.0)
        if latest_start is None:
            return True
        return context.now_h >= latest_start - self.slack_margin_h - 1e-9

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = sorted(pending, key=self._sort_key)
        decisions: list[ScheduleDecision] = []
        remaining = cluster.n_free_gpus
        for job in ordered:
            if job.n_gpus > remaining:
                continue
            if not self._may_start_now(job, context):
                continue
            decisions.append(
                ScheduleDecision(job=job, power_cap_fraction=self._cap_for(job), pack=True)
            )
            remaining -= job.n_gpus
        return decisions
