"""The staged policy pipeline — a :class:`Scheduler` built from stages.

A :class:`PolicyPipeline` composes one :class:`~repro.scheduler.stages.
OrderingStage`, any number of :class:`~repro.scheduler.stages.AdmissionGate`\\ s,
one :class:`~repro.scheduler.stages.Placement` and a chain of
:class:`~repro.scheduler.stages.PowerStage`\\ s into a complete scheduling
policy.  Per round it:

1. orders the pending queue (ordering stage);
2. walks the ordered jobs through placement: a job that does not fit the free
   GPUs is skipped (backfill) or blocks the rest of the round (strict FIFO);
3. resolves the job's power cap by threading ``job.power_cap_fraction``
   through the power chain;
4. asks every admission gate (short-circuiting on the first rejection; gate
   rejections *skip* the job — they never block the queue); admitted jobs are
   committed to each gate so stateful gates can consume their resource;
5. emits a :class:`~repro.scheduler.base.ScheduleDecision` with the resolved
   cap and the placement's packing preference.

Stages that implement :class:`~repro.cluster.observers.SimulatorObserver`
(e.g. the adaptive power-cap stage) are surfaced through :meth:`PolicyPipeline.
observers`, which the cluster simulator subscribes automatically.

The five legacy monolithic schedulers are expressible as pipelines with
bit-identical job records; see :mod:`~repro.scheduler.compose` for the canned
compositions and the spec grammar that names them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cluster.observers import SimulatorObserver
from ..cluster.resources import Cluster
from ..errors import SchedulingError
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job
from .stages import AdmissionGate, OrderingStage, Placement, PowerStage, SubmitOrdering

__all__ = ["PolicyPipeline"]

#: Default placement when a composition names none: backfill, packed.
_DEFAULT_PLACEMENT = Placement(name="backfill", stop_at_first_blocked=False, pack=True)


class PolicyPipeline(Scheduler):
    """A scheduling policy composed from explicit stages.

    Parameters
    ----------
    ordering:
        Queue ordering per round (default: submission order).
    gates:
        Admission gates, consulted in order for every fitting job.
    placement:
        Queue-to-capacity flow (default: backfill, packed).
    power:
        Power-cap transformer chain, applied in order over the job's own cap.
    name:
        Policy name used in benchmark tables and result labels; defaults to
        a ``+``-joined summary of the stage names.
    """

    def __init__(
        self,
        *,
        ordering: Optional[OrderingStage] = None,
        gates: Sequence[AdmissionGate] = (),
        placement: Optional[Placement] = None,
        power: Sequence[PowerStage] = (),
        name: Optional[str] = None,
    ) -> None:
        self.ordering = ordering or SubmitOrdering()
        self.gates = tuple(gates)
        self.placement = placement or _DEFAULT_PLACEMENT
        self.power = tuple(power)
        for stage, kind in (
            (self.ordering, OrderingStage),
            (self.placement, Placement),
        ):
            if not isinstance(stage, kind):
                raise SchedulingError(f"{stage!r} is not a valid {kind.__name__}")
        self.name = name if name is not None else self._default_name()

    def _default_name(self) -> str:
        parts = [self.placement.name]
        if not isinstance(self.ordering, SubmitOrdering):
            parts.insert(0, self.ordering.name)
        parts.extend(gate.name for gate in self.gates)
        parts.extend(stage.name for stage in self.power)
        return "+".join(parts)

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def cap_for(self, job: Job, cluster: Cluster, context: SchedulingContext) -> Optional[float]:
        """The job's resolved power cap: its own cap through the power chain."""
        cap = job.power_cap_fraction
        for stage in self.power:
            cap = stage.apply(job, cap, cluster, context)
        return cap

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = self.ordering.order(pending, context)
        for gate in self.gates:
            gate.begin_round(cluster, context)
        decisions: list[ScheduleDecision] = []
        remaining = cluster.n_free_gpus
        stop_at_first_blocked = self.placement.stop_at_first_blocked
        pack = self.placement.pack
        for job in ordered:
            if job.n_gpus > remaining:
                if stop_at_first_blocked:
                    break
                continue
            cap = self.cap_for(job, cluster, context)
            if not all(gate.admits(job, cluster, context, cap) for gate in self.gates):
                continue
            for gate in self.gates:
                gate.commit(job, cluster, context, cap)
            decisions.append(ScheduleDecision(job=job, power_cap_fraction=cap, pack=pack))
            remaining -= job.n_gpus
        return decisions

    def observers(self) -> tuple[SimulatorObserver, ...]:
        """Stages that want simulator lifecycle hooks (e.g. adaptive caps)."""
        seen: list[SimulatorObserver] = []
        for stage in (self.ordering, *self.gates, self.placement, *self.power):
            if isinstance(stage, SimulatorObserver) and stage not in seen:
                seen.append(stage)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PolicyPipeline(name={self.name!r}, ordering={self.ordering!r}, "
            f"gates={list(self.gates)!r}, placement={self.placement!r}, "
            f"power={list(self.power)!r})"
        )
