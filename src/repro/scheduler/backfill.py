"""Backfill scheduling (the standard HPC baseline).

A simplified EASY-style backfill: jobs are considered in submission order,
and when the head job does not fit, later jobs that do fit are allowed to
start.  Reservation bookkeeping (guaranteeing the head job a future start
time) is deliberately omitted — at the granularity of this simulator it does
not change the energy picture, which is what the paper's comparisons are
about.

Kept as the parity reference for the registered ``backfill`` pipeline
composition (spec ``"backfill"``).
"""

from __future__ import annotations

from ..cluster.resources import Cluster
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job

__all__ = ["BackfillScheduler"]


class BackfillScheduler(Scheduler):
    """FIFO order with backfilling around blocked head-of-line jobs."""

    name = "backfill"

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = sorted(pending, key=lambda j: (j.submit_time_h, j.job_id))
        return self._greedy_fill(ordered, cluster.n_free_gpus, stop_at_first_blocked=False)
