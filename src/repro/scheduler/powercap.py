"""GPU power-cap control (the ``c`` lever of Eq. 1).

Two controllers are provided:

* :class:`StaticPowerCapPolicy` — the "optimal power caps" of the paper's
  Section II.C: a fixed cap (as a fraction of TDP) applied to every job, with
  an optional exemption for jobs that declared urgency.
* :class:`AdaptivePowerCapController` — a facility-power-budget follower:
  when the cluster's projected IT power exceeds the budget it tightens caps
  on running jobs (largest consumers first); when there is headroom it
  relaxes them.  This is the control loop an operator would run against a
  demand-charge or a grid curtailment signal.

:func:`powercap_energy_tradeoff` computes the energy/time/savings curve for a
sweep of cap levels, which is the CLAIM-POWERCAP benchmark's payload.

In the staged pipeline these controllers surface as power stages: the static
policy as the ``cap`` token (:class:`~repro.scheduler.stages.StaticCapStage`)
and the adaptive controller as the ``adaptive`` token
(:class:`~repro.scheduler.stages.AdaptiveCapStage`), which drives it through
the simulator's lifecycle hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import SchedulingError
from ..parallel.pool import ParallelConfig
from ..parallel.sweep import ParameterSweep, SweepPoint, grid_points
from ..telemetry.gpu_power import GpuPowerModel, get_gpu_spec
from .job import Job

__all__ = ["StaticPowerCapPolicy", "AdaptivePowerCapController", "powercap_energy_tradeoff", "PowerCapSweepPoint"]


class StaticPowerCapPolicy:
    """A fixed power cap applied uniformly (the paper's "fixed component").

    Parameters
    ----------
    cap_fraction:
        Cap as a fraction of TDP applied to jobs.
    exempt_queues:
        Queue names whose jobs run uncapped (e.g. the urgent queue).
    """

    def __init__(self, cap_fraction: float = 0.75, exempt_queues: Iterable[str] = ("urgent",)) -> None:
        if not 0.0 < cap_fraction <= 1.0:
            raise SchedulingError(f"cap_fraction must lie in (0, 1], got {cap_fraction!r}")
        self.cap_fraction = float(cap_fraction)
        self.exempt_queues = frozenset(exempt_queues)

    def cap_for(self, job: Job) -> Optional[float]:
        """The cap fraction to apply to ``job`` (``None`` = uncapped).

        A cap already agreed by the job (via its queue or the two-part
        mechanism) takes precedence when it is *stricter* than the policy cap.
        """
        if job.queue_name in self.exempt_queues:
            return job.power_cap_fraction
        if job.power_cap_fraction is not None:
            return min(job.power_cap_fraction, self.cap_fraction)
        return self.cap_fraction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticPowerCapPolicy(cap_fraction={self.cap_fraction})"


class AdaptivePowerCapController:
    """Adjusts per-job caps to keep cluster IT power under a budget.

    Parameters
    ----------
    power_budget_w:
        Target ceiling on IT power.
    min_cap_fraction:
        Tightest cap the controller will impose.
    step_fraction:
        Cap adjustment applied per control interval.
    """

    def __init__(
        self,
        power_budget_w: float,
        *,
        min_cap_fraction: float = 0.5,
        step_fraction: float = 0.05,
    ) -> None:
        if power_budget_w <= 0:
            raise SchedulingError("power_budget_w must be positive")
        if not 0.0 < min_cap_fraction <= 1.0:
            raise SchedulingError("min_cap_fraction must lie in (0, 1]")
        if not 0.0 < step_fraction <= 0.5:
            raise SchedulingError("step_fraction must lie in (0, 0.5]")
        self.power_budget_w = float(power_budget_w)
        self.min_cap_fraction = float(min_cap_fraction)
        self.step_fraction = float(step_fraction)
        self._current_caps: dict[str, float] = {}

    def current_cap(self, job_id: str) -> float:
        """The cap fraction currently imposed on a job (1.0 if none)."""
        return self._current_caps.get(job_id, 1.0)

    def seed_cap(self, job_id: str, cap_fraction: float) -> None:
        """Register a job's starting cap ahead of its first control step.

        Without seeding, :meth:`update` assumes unseen jobs start at the cap
        they *agreed* to (``job.power_cap_fraction`` or uncapped); a caller
        whose scheduler imposed a tighter cap at start (e.g. a pipeline power
        chain) seeds it here so the first control step relaxes from the real
        cap instead of silently resetting the job to uncapped.
        """
        if cap_fraction <= 0.0:
            raise SchedulingError(f"cap_fraction must be positive, got {cap_fraction!r}")
        self._current_caps.setdefault(job_id, min(1.0, float(cap_fraction)))

    def update(
        self,
        running_jobs: Sequence[Job],
        current_it_power_w: float,
    ) -> dict[str, float]:
        """One control step; returns the new cap fraction per running job id.

        When power exceeds the budget, caps are tightened on the largest
        GPU consumers first; when power is at least 10% under budget, caps
        are relaxed uniformly.  Jobs not seen before start at 1.0 (uncapped).
        """
        for job in running_jobs:
            self._current_caps.setdefault(job.job_id, job.power_cap_fraction or 1.0)
        # Drop caps of jobs that are gone.
        live_ids = {job.job_id for job in running_jobs}
        self._current_caps = {k: v for k, v in self._current_caps.items() if k in live_ids}

        if not running_jobs:
            return {}
        if current_it_power_w > self.power_budget_w:
            # Tighten the biggest consumers first.
            by_size = sorted(running_jobs, key=lambda j: j.n_gpus * j.utilization, reverse=True)
            overshoot = current_it_power_w / self.power_budget_w
            n_to_tighten = max(1, int(np.ceil(len(by_size) * min(1.0, overshoot - 1.0 + 0.25))))
            for job in by_size[:n_to_tighten]:
                new_cap = max(self.min_cap_fraction, self._current_caps[job.job_id] - self.step_fraction)
                self._current_caps[job.job_id] = new_cap
        elif current_it_power_w < 0.9 * self.power_budget_w:
            for job in running_jobs:
                new_cap = min(1.0, self._current_caps[job.job_id] + self.step_fraction)
                self._current_caps[job.job_id] = new_cap
        return dict(self._current_caps)


@dataclass(frozen=True)
class PowerCapSweepPoint:
    """One row of the power-cap sweep table (CLAIM-POWERCAP)."""

    cap_fraction: float
    cap_w: float
    relative_runtime: float
    relative_energy: float
    energy_savings_pct: float
    runtime_penalty_pct: float


def _evaluate_cap_point(
    point: SweepPoint, *, gpu_model: str, utilization: float, baseline_energy: float
) -> PowerCapSweepPoint:
    """One cap level of the trade-off sweep (module-level, so it pickles)."""
    fraction = point.params["cap_fraction"]
    spec = get_gpu_spec(gpu_model)
    model = GpuPowerModel(spec)
    cap_w = float(model.clamp_power_limit(fraction * spec.tdp_w))
    slowdown = float(model.slowdown_factor(cap_w, utilization))
    energy = float(model.energy_for_work(1.0, utilization, cap_w))
    relative_energy = energy / baseline_energy
    return PowerCapSweepPoint(
        cap_fraction=float(fraction),
        cap_w=cap_w,
        relative_runtime=slowdown,
        relative_energy=relative_energy,
        energy_savings_pct=100.0 * (1.0 - relative_energy),
        runtime_penalty_pct=100.0 * (slowdown - 1.0),
    )


def powercap_energy_tradeoff(
    gpu_model: str = "V100",
    cap_fractions: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
    *,
    utilization: float = 0.95,
    parallel: Optional[ParallelConfig] = None,
) -> list[PowerCapSweepPoint]:
    """Energy/time trade-off of power caps for a fixed amount of training work.

    Reproduces the shape of the Frey et al. [15] result the paper leans on:
    moderate caps (70-80% of TDP) save 10-25% of energy at only a few percent
    runtime penalty, while very tight caps hit diminishing returns.  The cap
    levels are evaluated through the sweep harness, so large custom sweeps can
    run across processes via ``parallel``; results are in ``cap_fractions``
    order either way.
    """
    if not cap_fractions:
        return []
    for fraction in cap_fractions:
        if not 0.0 < fraction <= 1.0:
            raise SchedulingError(f"cap fractions must lie in (0, 1], got {fraction!r}")
    spec = get_gpu_spec(gpu_model)
    model = GpuPowerModel(spec)
    baseline_energy = float(model.energy_for_work(1.0, utilization, None))
    sweep = ParameterSweep(
        partial(
            _evaluate_cap_point,
            gpu_model=gpu_model,
            utilization=utilization,
            baseline_energy=baseline_energy,
        ),
        parallel=parallel or ParallelConfig(),
    )
    result = sweep.run_grid({"cap_fraction": [float(f) for f in cap_fractions]})
    return list(result.values)
