"""The stage taxonomy of the composable policy pipeline.

A scheduling policy decomposes into four independently pluggable stages, each
answering one question per scheduling round:

* **ordering** — in what order are pending jobs considered?
  (:class:`SubmitOrdering`, :class:`DeadlineOrdering`,
  :class:`ShortestJobOrdering`)
* **admission gates** — may this job start *now*, given the environment?
  (:class:`GreenHourGate`, :class:`PriceCeilingGate`,
  :class:`RenewableShareGate`, :class:`DeadlineSlackGate`,
  :class:`PowerBudgetGate`)
* **placement** — how does the queue flow into free capacity, and how are
  GPUs picked?  (:class:`Placement` — strict FIFO or backfill, packed or
  spread)
* **power control** — what power cap does a started job get?  A *chain* of
  :class:`PowerStage` transformers starting from the job's own agreed cap
  (:class:`StaticCapStage`, :class:`DirtyHourCapStage`,
  :class:`DeadlineSlackCapStage`, :class:`AdaptiveCapStage`)

:class:`~repro.scheduler.pipeline.PolicyPipeline` composes one ordering, any
number of gates, one placement and a power chain into a full
:class:`~repro.scheduler.base.Scheduler`; the grammar in
:mod:`~repro.scheduler.compose` makes any such composition addressable by a
spec string.

The concrete stages below reproduce the behaviour of the five legacy
monolithic schedulers *bit-for-bit* (see ``tests/test_policy_compose.py``):
the deferral predicates, cap arithmetic and power-budget estimator are kept
operation-for-operation identical to the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..cluster.observers import SimulatorObserver
from ..cluster.resources import Cluster
from ..errors import SchedulingError
from .base import SchedulingContext
from .job import Job
from .powercap import AdaptivePowerCapController

__all__ = [
    "estimate_job_it_power_w",
    "OrderingStage",
    "SubmitOrdering",
    "DeadlineOrdering",
    "ShortestJobOrdering",
    "Placement",
    "AdmissionGate",
    "GreenHourGate",
    "PriceCeilingGate",
    "RenewableShareGate",
    "DeadlineSlackGate",
    "PowerBudgetGate",
    "PowerStage",
    "StaticCapStage",
    "DirtyHourCapStage",
    "DeadlineSlackCapStage",
    "AdaptiveCapStage",
]


def estimate_job_it_power_w(job: Job, cluster: Cluster, cap_fraction: Optional[float]) -> float:
    """Rough per-job IT power estimate used for facility-budget checks.

    GPU power at the cap plus a share of node overhead proportional to the
    fraction of a node used.  Shared by :class:`PowerBudgetGate` and the
    legacy :class:`~repro.scheduler.energy_aware.EnergyAwareScheduler` so the
    bit-parity between them cannot drift.
    """
    spec = cluster.gpu_spec
    cap_w = None if cap_fraction is None else cap_fraction * spec.tdp_w
    gpu_power = cluster.gpu_power_model.power_w_scalar(job.utilization, cap_w)
    node_share = min(1.0, job.n_gpus / cluster.facility.gpus_per_node)
    return job.n_gpus * gpu_power + node_share * cluster.facility.node_active_overhead_w


# ---------------------------------------------------------------------------
# Ordering stages
# ---------------------------------------------------------------------------


class OrderingStage:
    """Orders the pending queue at each scheduling round (stable sort)."""

    name: str = "abstract-ordering"

    def order(self, pending: list[Job], context: SchedulingContext) -> list[Job]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SubmitOrdering(OrderingStage):
    """Submission order (ties broken by job id) — the FIFO/backfill default."""

    name = "submit-order"

    def order(self, pending: list[Job], context: SchedulingContext) -> list[Job]:
        return sorted(pending, key=lambda j: (j.submit_time_h, j.job_id))


class DeadlineOrdering(OrderingStage):
    """Earliest-deadline-first; jobs without deadlines fill in behind."""

    name = "edf"

    def order(self, pending: list[Job], context: SchedulingContext) -> list[Job]:
        return sorted(
            pending,
            key=lambda j: (
                j.deadline_h if j.deadline_h is not None else float("inf"),
                j.submit_time_h,
                j.job_id,
            ),
        )


class ShortestJobOrdering(OrderingStage):
    """Shortest baseline duration first (SJF) — drains small work quickly."""

    name = "sjf"

    def order(self, pending: list[Job], context: SchedulingContext) -> list[Job]:
        return sorted(pending, key=lambda j: (j.duration_h, j.submit_time_h, j.job_id))


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Placement:
    """How the ordered queue flows into free GPUs.

    Attributes
    ----------
    name:
        Token name ("fifo" or "backfill").
    stop_at_first_blocked:
        Strict FIFO semantics: a job that does not *fit* blocks everything
        behind it.  (Gate rejections never block — a deferred job must not
        starve the queue.)
    pack:
        Whether allocations pack onto few nodes (energy-aware) or spread
        across many (thermal-aware).
    """

    name: str
    stop_at_first_blocked: bool
    pack: bool = True


# ---------------------------------------------------------------------------
# Admission gates
# ---------------------------------------------------------------------------


class AdmissionGate:
    """Decides, per round, whether a fitting job may start right now.

    The pipeline calls :meth:`begin_round` once per scheduling round, then
    :meth:`admits` for each candidate (short-circuiting on first rejection)
    and :meth:`commit` once the job passed *every* gate and will start —
    stateful gates (e.g. the power budget) consume their resource there.
    """

    name: str = "abstract-gate"

    def begin_round(self, cluster: Cluster, context: SchedulingContext) -> None:
        """Reset per-round state (projected power, counters, ...)."""

    def admits(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> bool:
        raise NotImplementedError

    def commit(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> None:
        """The job passed every gate and is starting now."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class _DeferralGate(AdmissionGate):
    """Shared deferral contract of the signal-following gates.

    While the environment signal is *unfavourable*, deferrable jobs wait until
    their ``max_defer_h`` window expires; with ``defer_non_deferrable`` even
    unmarked jobs are held for up to ``grace_h`` hours.  The predicates are
    kept bit-identical to ``CarbonAwareScheduler._may_start_now``.
    """

    def __init__(self, *, defer_non_deferrable: bool = False, grace_h: float = 6.0) -> None:
        self.defer_non_deferrable = bool(defer_non_deferrable)
        if grace_h < 0:
            raise SchedulingError(f"grace_h must be non-negative, got {grace_h!r}")
        self.grace_h = float(grace_h)

    def _is_favourable(self, context: SchedulingContext) -> bool:
        """Whether the signal currently allows unrestricted starts."""
        raise NotImplementedError

    def admits(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> bool:
        if self._is_favourable(context):
            return True
        if job.deferrable:
            return context.now_h >= job.must_start_by() - 1e-9
        if self.defer_non_deferrable:
            return context.now_h >= job.submit_time_h + self.grace_h - 1e-9
        return True


class GreenHourGate(_DeferralGate):
    """Defer deferrable work while grid carbon intensity is above threshold.

    The temporal-shifting gate of Section II.A: an hour is green when the
    context's carbon intensity is at or below its pre-computed threshold
    (missing data counts as green — no information, no deferral).
    """

    name = "carbon"

    def _is_favourable(self, context: SchedulingContext) -> bool:
        return context.is_green_hour()


class PriceCeilingGate(_DeferralGate):
    """Defer deferrable work while electricity price exceeds a ceiling."""

    name = "price"

    def __init__(
        self,
        ceiling_per_mwh: float,
        *,
        defer_non_deferrable: bool = False,
        grace_h: float = 6.0,
    ) -> None:
        super().__init__(defer_non_deferrable=defer_non_deferrable, grace_h=grace_h)
        if ceiling_per_mwh <= 0:
            raise SchedulingError(f"ceiling_per_mwh must be positive, got {ceiling_per_mwh!r}")
        self.ceiling_per_mwh = float(ceiling_per_mwh)

    def _is_favourable(self, context: SchedulingContext) -> bool:
        return context.price_per_mwh is None or context.price_per_mwh <= self.ceiling_per_mwh


class RenewableShareGate(_DeferralGate):
    """Defer deferrable work while the grid's renewable share is low."""

    name = "renewable"

    def __init__(
        self,
        min_share: float = 0.3,
        *,
        defer_non_deferrable: bool = False,
        grace_h: float = 6.0,
    ) -> None:
        super().__init__(defer_non_deferrable=defer_non_deferrable, grace_h=grace_h)
        if not 0.0 <= min_share <= 1.0:
            raise SchedulingError(f"min_share must lie in [0, 1], got {min_share!r}")
        self.min_share = float(min_share)

    def _is_favourable(self, context: SchedulingContext) -> bool:
        return context.renewable_share is None or context.renewable_share >= self.min_share


class DeadlineSlackGate(AdmissionGate):
    """Use deadline slack (not just the deferability flag) to ride out dirty hours.

    The Section II.A x III combination from the legacy deadline-aware policy:
    during dirty hours a deadline-carrying job waits until its latest feasible
    start (minus a safety margin); jobs without deadlines fall back to the
    explicit deferability contract.  Bit-identical to
    ``DeadlineAwareScheduler._may_start_now``.
    """

    name = "slack"

    def __init__(self, slack_margin_h: float = 2.0) -> None:
        if slack_margin_h < 0:
            raise SchedulingError(
                f"slack_margin_h must be non-negative, got {slack_margin_h!r}"
            )
        self.slack_margin_h = float(slack_margin_h)

    def admits(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> bool:
        if context.is_green_hour():
            return True
        if job.deadline_h is None:
            if job.deferrable:
                return context.now_h >= job.must_start_by() - 1e-9
            return True
        latest_start = job.latest_start_for_deadline(slowdown_factor=1.0)
        if latest_start is None:
            return True
        return context.now_h >= latest_start - self.slack_margin_h - 1e-9


class PowerBudgetGate(AdmissionGate):
    """Stop starting work once the facility power budget would be exceeded.

    Converts the context's ``facility_power_budget_w`` into an IT budget at
    the current PUE and projects each candidate start's IT power on top of the
    running total; jobs that would overshoot are skipped this round.  The
    per-job estimator is kept operation-for-operation identical to
    ``EnergyAwareScheduler._estimated_job_power_w``.
    """

    name = "budget"

    def __init__(self) -> None:
        self._it_budget_w: Optional[float] = None
        self._projected_it_power_w: float = 0.0

    def begin_round(self, cluster: Cluster, context: SchedulingContext) -> None:
        budget = context.facility_power_budget_w
        if budget is not None and context.current_pue > 0:
            self._it_budget_w = budget / context.current_pue
        else:
            self._it_budget_w = None
        self._projected_it_power_w = context.current_it_power_w

    def admits(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> bool:
        if self._it_budget_w is None:
            return True
        added = estimate_job_it_power_w(job, cluster, cap_fraction)
        return self._projected_it_power_w + added <= self._it_budget_w

    def commit(
        self,
        job: Job,
        cluster: Cluster,
        context: SchedulingContext,
        cap_fraction: Optional[float],
    ) -> None:
        if self._it_budget_w is not None:
            self._projected_it_power_w += estimate_job_it_power_w(job, cluster, cap_fraction)


# ---------------------------------------------------------------------------
# Power stages
# ---------------------------------------------------------------------------


class PowerStage:
    """One transformer in the power-cap chain.

    The pipeline resolves a started job's cap by threading the job's own
    agreed cap (``job.power_cap_fraction``) through every power stage in spec
    order; each stage may tighten, set or pass through the running value.
    """

    name: str = "abstract-power"

    def apply(
        self,
        job: Job,
        base: Optional[float],
        cluster: Cluster,
        context: SchedulingContext,
    ) -> Optional[float]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StaticCapStage(PowerStage):
    """A fixed cap fraction with queue exemptions (Section II.C's fixed component).

    Reproduces :class:`~repro.scheduler.powercap.StaticPowerCapPolicy.cap_for`
    exactly when the chain's running value is the job's own cap: exempt queues
    keep whatever they agreed, everyone else gets ``min(agreed, cap)``.
    """

    name = "cap"

    def __init__(self, cap_fraction: float = 0.75, exempt_queues: Iterable[str] = ("urgent",)) -> None:
        if not 0.0 < cap_fraction <= 1.0:
            raise SchedulingError(f"cap_fraction must lie in (0, 1], got {cap_fraction!r}")
        self.cap_fraction = float(cap_fraction)
        self.exempt_queues = frozenset(exempt_queues)

    def apply(
        self,
        job: Job,
        base: Optional[float],
        cluster: Cluster,
        context: SchedulingContext,
    ) -> Optional[float]:
        if job.queue_name in self.exempt_queues:
            return base
        if base is not None:
            return min(base, self.cap_fraction)
        return self.cap_fraction


class DirtyHourCapStage(PowerStage):
    """Additionally cap jobs started during carbon-intense (dirty) hours.

    Deferral moves deferrable work into green hours; this stage slows down
    the work that cannot wait, so proportionally more of the facility's
    energy is drawn when the grid is green.  Bit-identical to the dirty-hour
    arm of ``CarbonAwareScheduler._cap_for``.
    """

    name = "dirty-cap"

    def __init__(self, cap_fraction: float = 0.7) -> None:
        if not 0.0 < cap_fraction <= 1.0:
            raise SchedulingError(f"cap_fraction must lie in (0, 1], got {cap_fraction!r}")
        self.cap_fraction = float(cap_fraction)

    def apply(
        self,
        job: Job,
        base: Optional[float],
        cluster: Cluster,
        context: SchedulingContext,
    ) -> Optional[float]:
        if not context.is_green_hour():
            if base is None:
                return self.cap_fraction
            return min(base, self.cap_fraction)
        return base


class DeadlineSlackCapStage(PowerStage):
    """Per-job deadline-aware caps: run each job as slow as its deadline allows.

    For a deadline-carrying job, picks the *tightest* cap (from
    ``min_fraction`` upward in ``step_fraction`` increments) whose modelled
    slowdown still finishes the job by its deadline; jobs without deadlines
    (or without slack) pass through unchanged.  This converts deadline slack
    directly into energy savings instead of queue deferral.
    """

    name = "deadline-cap"

    def __init__(self, min_fraction: float = 0.5, step_fraction: float = 0.05) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise SchedulingError(f"min_fraction must lie in (0, 1], got {min_fraction!r}")
        if not 0.0 < step_fraction <= 0.5:
            raise SchedulingError(f"step_fraction must lie in (0, 0.5], got {step_fraction!r}")
        self.min_fraction = float(min_fraction)
        self.step_fraction = float(step_fraction)

    def apply(
        self,
        job: Job,
        base: Optional[float],
        cluster: Cluster,
        context: SchedulingContext,
    ) -> Optional[float]:
        if job.deadline_h is None:
            return base
        budget_h = job.deadline_h - context.now_h
        if budget_h <= job.duration_h:
            return base  # no slack: do not slow an already-tight job further
        model = cluster.gpu_power_model
        tdp_w = cluster.gpu_spec.tdp_w
        ceiling = 1.0 if base is None else base
        fraction = self.min_fraction
        while fraction < ceiling - 1e-12:
            cap_w = model.clamp_power_limit_scalar(fraction * tdp_w)
            slowdown = model.slowdown_factor_scalar(cap_w, job.utilization)
            if job.duration_h * slowdown <= budget_h:
                return fraction
            fraction += self.step_fraction
        return base


class AdaptiveCapStage(PowerStage, SimulatorObserver):
    """Budget-following caps on *running* jobs, driven by the simulator's ticks.

    Wraps :class:`~repro.scheduler.powercap.AdaptivePowerCapController` as a
    pipeline stage: at every tick the controller compares the cluster's IT
    power against its budget and tightens caps on the largest consumers (or
    relaxes them when there is headroom); changed caps are pushed onto the
    live allocations through :meth:`~repro.cluster.resources.Cluster.
    set_power_limit`.  A job's remaining runtime is *not* re-planned on re-cap
    (durations are fixed at start) — the stage shapes the facility power
    series, which is what demand-charge/curtailment control is about.

    Per-job attributed energy stays exact under re-caps: every cap change
    accrues the segment just run at the *old* cap, and on finish the stage
    replaces the simulator's single-cap attribution with the time-weighted
    integral over all segments.

    As a :class:`~repro.cluster.observers.SimulatorObserver` it is wired into
    the event loop automatically when its pipeline is handed to a
    :class:`~repro.cluster.simulator.ClusterSimulator`.
    """

    name = "adaptive"

    def __init__(
        self,
        power_budget_w: float,
        *,
        min_cap_fraction: float = 0.5,
        step_fraction: float = 0.05,
    ) -> None:
        self.controller = AdaptivePowerCapController(
            power_budget_w,
            min_cap_fraction=min_cap_fraction,
            step_fraction=step_fraction,
        )
        #: job_id -> (segment start hour, energy accrued in earlier segments),
        #: tracked only for jobs whose cap has been changed mid-run.
        self._accrual: dict[str, tuple[float, float]] = {}

    # -- power stage: new starts keep their chained cap; adaptation is live --
    def apply(
        self,
        job: Job,
        base: Optional[float],
        cluster: Cluster,
        context: SchedulingContext,
    ) -> Optional[float]:
        return base

    def _segment_energy_j(self, job: Job, cluster: Cluster, since_h: float, now_h: float) -> float:
        """Energy of one constant-cap segment at the job's current cap."""
        gpu_power = cluster.gpu_power_model.power_w_scalar(
            job.utilization, job.assigned_power_cap_w
        )
        return job.n_gpus * gpu_power * max(now_h - since_h, 0.0) * 3600.0

    # -- observer: seed at start, one control step per tick ----------------
    def on_job_start(self, simulator, job: Job, now_h: float) -> None:
        # Caps imposed by the rest of the power chain (static, dirty-hour,
        # deadline caps) must survive into the control loop: seed the
        # controller with the job's actual starting cap, or its first step
        # would reset the job toward uncapped.
        if job.assigned_power_cap_w is not None:
            tdp_w = simulator.cluster.gpu_spec.tdp_w
            self.controller.seed_cap(job.job_id, job.assigned_power_cap_w / tdp_w)

    def on_tick(self, simulator, now_h: float, it_power_w: float) -> None:
        running = simulator.running_jobs
        caps = self.controller.update(running, it_power_w)
        if not running:
            return
        cluster = simulator.cluster
        model = cluster.gpu_power_model
        tdp_w = cluster.gpu_spec.tdp_w
        changed = False
        for job in running:
            fraction = caps.get(job.job_id, 1.0)
            cap_w = None if fraction >= 1.0 else model.clamp_power_limit_scalar(fraction * tdp_w)
            if (
                cap_w is not None
                and job.assigned_power_cap_w is not None
                and abs(cap_w - job.assigned_power_cap_w) < 1e-9
            ):
                continue  # round-trip through the fraction left the cap as-is
            if cap_w != job.assigned_power_cap_w:
                # Close the segment run at the old cap before switching.
                first_since = job.start_time_h if job.start_time_h is not None else now_h
                since_h, accrued_j = self._accrual.get(job.job_id, (first_since, 0.0))
                accrued_j += self._segment_energy_j(job, cluster, since_h, now_h)
                self._accrual[job.job_id] = (now_h, accrued_j)
                cluster.set_power_limit(job.job_id, cap_w)
                job.assigned_power_cap_w = cap_w
                changed = True
        if changed:
            simulator.refresh_it_power()

    def on_job_finish(self, simulator, job: Job, now_h: float, *, completed: bool) -> None:
        entry = self._accrual.pop(job.job_id, None)
        if entry is None:
            return  # cap never changed: the simulator's attribution is exact
        since_h, accrued_j = entry
        job.energy_j = accrued_j + self._segment_energy_j(
            job, simulator.cluster, since_h, now_h
        )

    # -- checkpointing: the controller's caps and the accrual ledger are the
    # only state that crosses scheduling rounds -----------------------------
    def snapshot_state(self):
        return {
            "caps": dict(self.controller._current_caps),
            "accrual": {job_id: list(entry) for job_id, entry in self._accrual.items()},
        }

    def restore_state(self, state) -> None:
        if state is None:
            return  # checkpoint taken before the stage accumulated any state
        self.controller._current_caps = {
            job_id: float(cap) for job_id, cap in state["caps"].items()
        }
        self._accrual = {
            job_id: (float(since_h), float(accrued_j))
            for job_id, (since_h, accrued_j) in state["accrual"].items()
        }
