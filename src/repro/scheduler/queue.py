"""Job queues and the segmented-queue system of Section II.C.

The paper proposes "queues for finer user and workload segmentation": users
declare preferences (urgency, energy-efficiency tolerance, expected length)
and are routed to queues whose policies are tailored to those declarations —
e.g. an *eco* queue that enforces tighter power caps but offers more GPUs,
versus an *urgent* queue with no caps but lower GPU limits.  It also warns
about the adverse-selection failure mode, which the
:mod:`repro.core.adverse_selection` simulation explores using exactly these
queue objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..config import require_non_negative
from ..errors import ConfigurationError, SchedulingError
from .job import Job, JobState

__all__ = ["QueuePolicy", "JobQueue", "SegmentedQueueSystem"]


@dataclass(frozen=True)
class QueuePolicy:
    """The resource policy attached to one queue.

    Attributes
    ----------
    name:
        Queue name.
    max_gpus_per_job:
        Largest GPU request accepted by the queue.
    power_cap_fraction:
        Power cap (fraction of TDP) enforced on jobs in this queue; ``None``
        means uncapped.
    priority_boost:
        Additive priority applied to the queue's jobs at scheduling time.
    max_queue_wait_h:
        Advisory wait-time target used for reporting (not enforced).
    description:
        Human-readable description shown to users.
    """

    name: str
    max_gpus_per_job: int
    power_cap_fraction: Optional[float] = None
    priority_boost: int = 0
    max_queue_wait_h: float = 24.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("queue name must be non-empty")
        if self.max_gpus_per_job <= 0:
            raise ConfigurationError("max_gpus_per_job must be positive")
        if self.power_cap_fraction is not None and not 0.0 < self.power_cap_fraction <= 1.0:
            raise ConfigurationError("power_cap_fraction must lie in (0, 1]")
        require_non_negative(self.max_queue_wait_h, "max_queue_wait_h")

    def admits(self, job: Job) -> bool:
        """Whether the queue accepts this job's resource request."""
        return job.n_gpus <= self.max_gpus_per_job


class JobQueue:
    """A FIFO queue of pending jobs governed by a :class:`QueuePolicy`."""

    def __init__(self, policy: QueuePolicy) -> None:
        self.policy = policy
        self._jobs: list[Job] = []

    @property
    def name(self) -> str:
        """The queue's name."""
        return self.policy.name

    def __len__(self) -> int:
        return len(self._jobs)

    def submit(self, job: Job) -> None:
        """Add a pending job to the queue (applying the queue's policy to it)."""
        if not job.is_pending:
            raise SchedulingError(f"only pending jobs can be queued, got state {job.state}")
        if not self.policy.admits(job):
            raise SchedulingError(
                f"queue {self.name!r} admits at most {self.policy.max_gpus_per_job} GPUs, "
                f"job {job.job_id!r} requested {job.n_gpus}"
            )
        job.queue_name = self.name
        if self.policy.power_cap_fraction is not None:
            job.power_cap_fraction = self.policy.power_cap_fraction
        job.priority += self.policy.priority_boost
        self._jobs.append(job)

    def pending_jobs(self) -> list[Job]:
        """Pending jobs in submission order (drops jobs that left PENDING)."""
        self._jobs = [j for j in self._jobs if j.state is JobState.PENDING]
        return list(self._jobs)

    def pop_ready(self, predicate: Callable[[Job], bool]) -> list[Job]:
        """Remove and return the pending jobs satisfying ``predicate`` (in order)."""
        ready = [j for j in self.pending_jobs() if predicate(j)]
        taken = {id(j) for j in ready}
        self._jobs = [j for j in self._jobs if id(j) not in taken]
        return ready

    def waiting_gpu_demand(self) -> int:
        """Total GPUs requested by jobs currently waiting in the queue."""
        return sum(j.n_gpus for j in self.pending_jobs())


class SegmentedQueueSystem:
    """A collection of queues with user self-selection (Section II.C).

    Parameters
    ----------
    policies:
        The queue policies offered to users.
    default_queue:
        Name of the queue used when a job does not state a preference or its
        preferred queue rejects the request.
    """

    #: A representative three-queue menu: an urgent queue (small, uncapped),
    #: a standard queue, and an eco queue that trades a tight power cap for
    #: bigger allocations — the paper's two-part-mechanism example.
    DEFAULT_POLICIES: tuple[QueuePolicy, ...] = (
        QueuePolicy(
            name="urgent",
            max_gpus_per_job=4,
            power_cap_fraction=None,
            priority_boost=10,
            max_queue_wait_h=2.0,
            description="Small, latency-sensitive jobs; no power caps.",
        ),
        QueuePolicy(
            name="standard",
            max_gpus_per_job=16,
            power_cap_fraction=None,
            priority_boost=0,
            max_queue_wait_h=24.0,
            description="Default batch queue.",
        ),
        QueuePolicy(
            name="eco",
            max_gpus_per_job=32,
            power_cap_fraction=0.6,
            priority_boost=2,
            max_queue_wait_h=48.0,
            description="Accept a 60% TDP power cap in exchange for larger allocations.",
        ),
    )

    def __init__(
        self,
        policies: Iterable[QueuePolicy] | None = None,
        *,
        default_queue: str = "standard",
    ) -> None:
        policy_list = tuple(policies) if policies is not None else self.DEFAULT_POLICIES
        if not policy_list:
            raise ConfigurationError("SegmentedQueueSystem requires at least one queue policy")
        names = [p.name for p in policy_list]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate queue names: {names}")
        self.queues: dict[str, JobQueue] = {p.name: JobQueue(p) for p in policy_list}
        if default_queue not in self.queues:
            raise ConfigurationError(
                f"default queue {default_queue!r} not among queues {sorted(self.queues)}"
            )
        self.default_queue = default_queue

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, job: Job, preferred_queue: Optional[str] = None) -> str:
        """Route a job to a queue and return the queue name used.

        The user's preferred queue is honoured when it exists and admits the
        request; otherwise the job falls back to the default queue, and, if
        even that queue rejects it, to any queue that admits it (largest
        ``max_gpus_per_job`` first).
        """
        candidates: list[str] = []
        if preferred_queue is not None and preferred_queue in self.queues:
            candidates.append(preferred_queue)
        candidates.append(self.default_queue)
        candidates.extend(
            sorted(
                self.queues,
                key=lambda name: self.queues[name].policy.max_gpus_per_job,
                reverse=True,
            )
        )
        for name in candidates:
            queue = self.queues[name]
            if queue.policy.admits(job):
                queue.submit(job)
                return name
        raise SchedulingError(
            f"no queue admits job {job.job_id!r} requesting {job.n_gpus} GPUs"
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def pending_jobs(self) -> list[Job]:
        """All pending jobs across queues, ordered by submit time then queue priority."""
        jobs: list[Job] = []
        for queue in self.queues.values():
            jobs.extend(queue.pending_jobs())
        jobs.sort(key=lambda j: (j.submit_time_h, -j.priority, j.job_id))
        return jobs

    def queue_lengths(self) -> dict[str, int]:
        """Number of pending jobs per queue."""
        return {name: len(queue.pending_jobs()) for name, queue in self.queues.items()}

    def queue_gpu_demand(self) -> dict[str, int]:
        """Pending GPU demand per queue."""
        return {name: queue.waiting_gpu_demand() for name, queue in self.queues.items()}

    def imbalance(self) -> float:
        """Load imbalance across queues: max/mean pending GPU demand (1.0 = balanced).

        The adverse-selection analysis uses this as the "clogged queues"
        indicator the paper describes (some queues overtaxed, others idle).
        """
        demands = list(self.queue_gpu_demand().values())
        total = sum(demands)
        if total == 0:
            return 1.0
        mean = total / len(demands)
        return max(demands) / mean
