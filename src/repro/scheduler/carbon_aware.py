"""Carbon-aware (temporally shifting) scheduling.

Section II.A's central proposal: since the grid's renewable share (and hence
its carbon intensity and price) varies over time, deferrable work should be
shifted into the green windows.  The policy below holds back *deferrable*
jobs while the current carbon intensity is above a threshold (by default the
horizon median supplied in the scheduling context), releasing them when the
grid turns green or when their deferral window expires, so no job waits
unboundedly — the activity constraint of Eq. 1 is respected through the
``max_defer_h`` contract rather than ignored.

Kept as the parity reference for the registered ``carbon-aware`` pipeline
composition (spec ``"backfill+carbon(cap=0.7)"``); the deferral predicate
lives on in :class:`~repro.scheduler.stages.GreenHourGate` and the dirty-hour
cap in :class:`~repro.scheduler.stages.DirtyHourCapStage`.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.resources import Cluster
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job
from .powercap import StaticPowerCapPolicy

__all__ = ["CarbonAwareScheduler"]


class CarbonAwareScheduler(Scheduler):
    """Backfill that defers deferrable jobs during carbon-intense hours.

    Parameters
    ----------
    power_cap_policy:
        Optional static power-cap policy applied to started jobs (``None``
        starts jobs uncapped, isolating the pure effect of temporal shifting).
    dirty_hour_cap_fraction:
        Power cap applied to jobs *started during dirty hours* (the grid is
        above the carbon threshold).  Deferral moves deferrable work into
        green hours; this cap additionally slows down the work that cannot
        wait, so that proportionally more of the facility's energy is drawn
        when the grid is green.  ``None`` disables the behaviour.
    defer_non_deferrable:
        When true, even jobs not marked deferrable are held for up to
        ``grace_h`` hours during dirty hours — an aggressive variant used in
        ablations.
    grace_h:
        The deferral applied to non-deferrable jobs when
        ``defer_non_deferrable`` is set.
    """

    name = "carbon-aware"

    def __init__(
        self,
        power_cap_policy: Optional[StaticPowerCapPolicy] = None,
        *,
        dirty_hour_cap_fraction: Optional[float] = 0.7,
        defer_non_deferrable: bool = False,
        grace_h: float = 6.0,
    ) -> None:
        self.power_cap_policy = power_cap_policy
        if dirty_hour_cap_fraction is not None and not 0.0 < dirty_hour_cap_fraction <= 1.0:
            raise ValueError("dirty_hour_cap_fraction must lie in (0, 1]")
        self.dirty_hour_cap_fraction = dirty_hour_cap_fraction
        self.defer_non_deferrable = bool(defer_non_deferrable)
        if grace_h < 0:
            raise ValueError(f"grace_h must be non-negative, got {grace_h!r}")
        self.grace_h = float(grace_h)

    def _cap_for(self, job: Job, context: SchedulingContext) -> Optional[float]:
        base = job.power_cap_fraction if self.power_cap_policy is None else self.power_cap_policy.cap_for(job)
        if self.dirty_hour_cap_fraction is not None and not context.is_green_hour():
            if base is None:
                return self.dirty_hour_cap_fraction
            return min(base, self.dirty_hour_cap_fraction)
        return base

    def _may_start_now(self, job: Job, context: SchedulingContext) -> bool:
        """Whether carbon-aware deferral allows the job to start at this hour."""
        if context.is_green_hour():
            return True
        # Dirty hour: deferrable jobs wait while their window allows it.
        if job.deferrable:
            return context.now_h >= job.must_start_by() - 1e-9
        if self.defer_non_deferrable:
            return context.now_h >= job.submit_time_h + self.grace_h - 1e-9
        return True

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = sorted(pending, key=lambda j: (j.submit_time_h, j.job_id))
        decisions: list[ScheduleDecision] = []
        remaining = cluster.n_free_gpus
        for job in ordered:
            if job.n_gpus > remaining:
                continue
            if not self._may_start_now(job, context):
                continue
            decisions.append(
                ScheduleDecision(job=job, power_cap_fraction=self._cap_for(job, context), pack=True)
            )
            remaining -= job.n_gpus
        return decisions
