"""Strict first-in-first-out scheduling (the naive baseline).

Kept as the parity reference for the registered ``fifo`` pipeline
composition (spec ``"fifo"``): submit-order + strict head-of-line placement.
"""

from __future__ import annotations

from ..cluster.resources import Cluster
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """Start jobs strictly in submission order.

    If the job at the head of the queue does not fit in the free GPUs, nothing
    behind it starts either — the classic head-of-line blocking that backfill
    exists to fix.  Kept as the simplest baseline for the scheduler-comparison
    ablation.
    """

    name = "fifo"

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = sorted(pending, key=lambda j: (j.submit_time_h, j.job_id))
        return self._greedy_fill(ordered, cluster.n_free_gpus, stop_at_first_blocked=True)
