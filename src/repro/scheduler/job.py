"""The job model.

A job is the unit of demand ``q_d`` in the paper's framework: a request for
``n_gpus`` GPUs for some duration, submitted by a user, possibly carrying the
user-stated preferences that Section II.C's queue-segmentation mechanism
relies on (urgency/patience, deadline, willingness to accept power caps).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SchedulingError

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """A GPU job.

    Attributes
    ----------
    job_id:
        Unique identifier.
    user_id:
        Submitting user (ties into the Eq. 2 per-user decomposition).
    n_gpus:
        Number of GPUs requested.
    duration_h:
        Baseline runtime in hours at full power (no cap) on the requested GPUs.
    submit_time_h:
        Simulated submission time.
    utilization:
        Average GPU utilization the job drives while running.
    priority:
        Larger values are more important (used by some policies).
    deadline_h:
        Optional absolute completion deadline in simulated hours.
    deferrable:
        Whether the job tolerates being delayed for carbon/price reasons.
    max_defer_h:
        Maximum delay (beyond submit time) a deferrable job accepts before it
        must be started regardless of grid conditions.
    queue_name:
        Name of the queue the job was submitted to (segmentation mechanism).
    power_cap_fraction:
        Power cap (as a fraction of TDP) the job agreed to, if any.  ``None``
        means "no agreement"; the scheduler may still impose one.
    tags:
        Free-form metadata (workload type, conference target, ...).
    """

    job_id: str
    user_id: str
    n_gpus: int
    duration_h: float
    submit_time_h: float
    utilization: float = 0.9
    priority: int = 0
    deadline_h: Optional[float] = None
    deferrable: bool = False
    max_defer_h: float = 0.0
    queue_name: str = "default"
    power_cap_fraction: Optional[float] = None
    tags: dict[str, Any] = field(default_factory=dict)

    # Runtime fields managed by the simulator.
    state: JobState = JobState.PENDING
    start_time_h: Optional[float] = None
    finish_time_h: Optional[float] = None
    assigned_power_cap_w: Optional[float] = None
    actual_duration_h: Optional[float] = None
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise SchedulingError(f"job {self.job_id!r}: n_gpus must be positive")
        if self.duration_h <= 0:
            raise SchedulingError(f"job {self.job_id!r}: duration_h must be positive")
        if self.submit_time_h < 0:
            raise SchedulingError(f"job {self.job_id!r}: submit_time_h must be non-negative")
        if not 0.0 <= self.utilization <= 1.0:
            raise SchedulingError(f"job {self.job_id!r}: utilization must lie in [0, 1]")
        if self.max_defer_h < 0:
            raise SchedulingError(f"job {self.job_id!r}: max_defer_h must be non-negative")
        if self.power_cap_fraction is not None and not 0.0 < self.power_cap_fraction <= 1.0:
            raise SchedulingError(
                f"job {self.job_id!r}: power_cap_fraction must lie in (0, 1]"
            )
        if self.deadline_h is not None and self.deadline_h < self.submit_time_h:
            raise SchedulingError(
                f"job {self.job_id!r}: deadline_h precedes submit_time_h"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def gpu_hours(self) -> float:
        """Requested GPU-hours (n_gpus * baseline duration)."""
        return self.n_gpus * self.duration_h

    @property
    def is_pending(self) -> bool:
        """Whether the job is waiting to be scheduled."""
        return self.state is JobState.PENDING

    @property
    def is_running(self) -> bool:
        """Whether the job is currently running."""
        return self.state is JobState.RUNNING

    @property
    def is_finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (JobState.COMPLETED, JobState.CANCELLED)

    def wait_time_h(self) -> Optional[float]:
        """Time spent waiting in queue, or ``None`` if never started."""
        if self.start_time_h is None:
            return None
        return self.start_time_h - self.submit_time_h

    def turnaround_h(self) -> Optional[float]:
        """Submit-to-finish time, or ``None`` if not finished."""
        if self.finish_time_h is None:
            return None
        return self.finish_time_h - self.submit_time_h

    def latest_start_for_deadline(self, slowdown_factor: float = 1.0) -> Optional[float]:
        """Latest start time that still meets the deadline at the given slowdown."""
        if self.deadline_h is None:
            return None
        return self.deadline_h - self.duration_h * slowdown_factor

    def must_start_by(self) -> float:
        """Hard latest start time: deferral window end, or +inf if not deferrable.

        Deferrable jobs may be held back for carbon/price reasons, but only
        until ``submit_time_h + max_defer_h``.
        """
        if not self.deferrable:
            return self.submit_time_h
        return self.submit_time_h + self.max_defer_h

    def missed_deadline(self) -> bool:
        """Whether the job finished after its deadline (False when no deadline)."""
        if self.deadline_h is None or self.finish_time_h is None:
            return False
        return self.finish_time_h > self.deadline_h + 1e-9

    # ------------------------------------------------------------------
    # State transitions (used by the simulator)
    # ------------------------------------------------------------------
    def mark_started(self, time_h: float, *, power_cap_w: Optional[float], duration_h: float) -> None:
        """Transition PENDING -> RUNNING, recording the placement decisions."""
        if self.state is not JobState.PENDING:
            raise SchedulingError(f"job {self.job_id!r} cannot start from state {self.state}")
        if time_h < self.submit_time_h - 1e-9:
            raise SchedulingError(f"job {self.job_id!r} cannot start before submission")
        self.state = JobState.RUNNING
        self.start_time_h = float(time_h)
        self.assigned_power_cap_w = power_cap_w
        self.actual_duration_h = float(duration_h)

    def mark_completed(self, time_h: float, energy_j: float) -> None:
        """Transition RUNNING -> COMPLETED, recording the consumed energy."""
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.job_id!r} cannot complete from state {self.state}")
        self.state = JobState.COMPLETED
        self.finish_time_h = float(time_h)
        self.energy_j = float(energy_j)

    def mark_interrupted(self, time_h: float, energy_j: float) -> None:
        """Transition RUNNING -> CANCELLED at ``time_h`` (e.g. the simulation horizon).

        The energy consumed so far is recorded, but the job does not count as
        completed — its work was cut short.
        """
        if self.state is not JobState.RUNNING:
            raise SchedulingError(f"job {self.job_id!r} cannot be interrupted from state {self.state}")
        self.state = JobState.CANCELLED
        self.finish_time_h = float(time_h)
        self.energy_j = float(energy_j)

    def mark_cancelled(self) -> None:
        """Transition any non-terminal state -> CANCELLED."""
        if self.is_finished:
            raise SchedulingError(f"job {self.job_id!r} is already finished")
        self.state = JobState.CANCELLED

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing support)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> dict[str, Any]:
        """A JSON-able dict of the job's full state (static + runtime fields).

        Together with :meth:`from_snapshot` this is the exact round-trip the
        simulator's checkpoint/restore relies on: every field — including the
        runtime state the simulator manages — survives bit-identically
        (floats round-trip exactly through JSON's shortest-repr encoding).
        """
        return {
            "job_id": self.job_id,
            "user_id": self.user_id,
            "n_gpus": self.n_gpus,
            "duration_h": self.duration_h,
            "submit_time_h": self.submit_time_h,
            "utilization": self.utilization,
            "priority": self.priority,
            "deadline_h": self.deadline_h,
            "deferrable": self.deferrable,
            "max_defer_h": self.max_defer_h,
            "queue_name": self.queue_name,
            "power_cap_fraction": self.power_cap_fraction,
            "tags": dict(self.tags),
            "state": self.state.value,
            "start_time_h": self.start_time_h,
            "finish_time_h": self.finish_time_h,
            "assigned_power_cap_w": self.assigned_power_cap_w,
            "actual_duration_h": self.actual_duration_h,
            "energy_j": self.energy_j,
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "Job":
        """Rebuild a job (including its runtime state) from :meth:`to_snapshot`."""
        job = cls(
            job_id=data["job_id"],
            user_id=data["user_id"],
            n_gpus=int(data["n_gpus"]),
            duration_h=float(data["duration_h"]),
            submit_time_h=float(data["submit_time_h"]),
            utilization=float(data["utilization"]),
            priority=int(data["priority"]),
            deadline_h=data["deadline_h"],
            deferrable=bool(data["deferrable"]),
            max_defer_h=float(data["max_defer_h"]),
            queue_name=data["queue_name"],
            power_cap_fraction=data["power_cap_fraction"],
            tags=dict(data["tags"]),
        )
        job.state = JobState(data["state"])
        job.start_time_h = data["start_time_h"]
        job.finish_time_h = data["finish_time_h"]
        job.assigned_power_cap_w = data["assigned_power_cap_w"]
        job.actual_duration_h = data["actual_duration_h"]
        job.energy_j = float(data["energy_j"])
        return job

    def clone_pending(self) -> "Job":
        """A fresh PENDING copy of this job (same static fields, reset runtime).

        Policy-comparison experiments run the *same* trace through several
        schedulers; cloning keeps the traces independent.
        """
        return Job(
            job_id=self.job_id,
            user_id=self.user_id,
            n_gpus=self.n_gpus,
            duration_h=self.duration_h,
            submit_time_h=self.submit_time_h,
            utilization=self.utilization,
            priority=self.priority,
            deadline_h=self.deadline_h,
            deferrable=self.deferrable,
            max_defer_h=self.max_defer_h,
            queue_name=self.queue_name,
            power_cap_fraction=self.power_cap_fraction,
            tags=dict(self.tags),
        )
