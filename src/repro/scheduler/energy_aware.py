"""Energy-aware scheduling.

Combines the two system-side energy levers the paper describes as cheap and
effective (Section II): GPU power caps and node packing, plus an optional
facility power budget under which the scheduler simply refuses to start more
work (the activity constraint α decides how far that can be pushed — the
Eq. 1 optimizer explores exactly that trade-off).

Kept as the parity reference for the registered ``energy-aware`` pipeline
composition (spec ``"backfill+budget"`` plus a static ``cap`` stage); the
budget estimator lives on in :class:`~repro.scheduler.stages.PowerBudgetGate`.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.resources import Cluster
from ..errors import SchedulingError
from .base import ScheduleDecision, Scheduler, SchedulingContext
from .job import Job
from .powercap import StaticPowerCapPolicy
from .stages import estimate_job_it_power_w

__all__ = ["EnergyAwareScheduler"]


class EnergyAwareScheduler(Scheduler):
    """Backfill with power caps, node packing and an optional power budget.

    Parameters
    ----------
    power_cap_policy:
        The static cap policy applied to started jobs (default 75% of TDP,
        urgent queue exempt).
    respect_power_budget:
        When true and the context carries ``facility_power_budget_w``, the
        scheduler estimates the IT power each start would add and stops
        starting jobs once the budget would be exceeded.
    """

    name = "energy-aware"

    def __init__(
        self,
        power_cap_policy: Optional[StaticPowerCapPolicy] = None,
        *,
        respect_power_budget: bool = True,
    ) -> None:
        self.power_cap_policy = power_cap_policy or StaticPowerCapPolicy()
        self.respect_power_budget = bool(respect_power_budget)

    def _estimated_job_power_w(self, job: Job, cluster: Cluster, cap_fraction: Optional[float]) -> float:
        """Rough per-job IT power estimate (the shared budget-gate estimator)."""
        return estimate_job_it_power_w(job, cluster, cap_fraction)

    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        ordered = sorted(pending, key=lambda j: (j.submit_time_h, j.job_id))
        decisions: list[ScheduleDecision] = []
        remaining_gpus = cluster.n_free_gpus

        budget = context.facility_power_budget_w if self.respect_power_budget else None
        if budget is not None and context.current_pue > 0:
            # Convert the facility budget into an IT budget at the current PUE.
            it_budget = budget / context.current_pue
        else:
            it_budget = None
        projected_it_power = context.current_it_power_w

        for job in ordered:
            if job.n_gpus > remaining_gpus:
                continue  # backfill around blocked jobs
            cap = self.power_cap_policy.cap_for(job)
            if it_budget is not None:
                added = self._estimated_job_power_w(job, cluster, cap)
                if projected_it_power + added > it_budget:
                    continue
                projected_it_power += added
            decisions.append(ScheduleDecision(job=job, power_cap_fraction=cap, pack=True))
            remaining_gpus -= job.n_gpus
        return decisions
