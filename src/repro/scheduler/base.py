"""Scheduler interface and scheduling context.

A scheduler implements the policy lever ``p`` of Eq. 1: at every scheduling
point it sees the pending jobs, the cluster's free capacity, and a
:class:`SchedulingContext` describing the environment ``ε`` (grid carbon
intensity and price, outdoor temperature, facility power budget), and decides
which jobs to start now and under what power caps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cluster.resources import Cluster
from ..errors import SchedulingError
from .job import Job

__all__ = ["SchedulingContext", "ScheduleDecision", "Scheduler"]


@dataclass
class SchedulingContext:
    """Environment information handed to the scheduler at each decision point.

    Attributes
    ----------
    now_h:
        Current simulated time in hours.
    carbon_intensity_g_per_kwh:
        Grid carbon intensity right now (``None`` when no grid model is attached).
    carbon_intensity_threshold:
        Pre-computed "green hour" threshold (e.g. the horizon median); carbon-
        aware policies defer below-threshold work when intensity exceeds it.
    price_per_mwh:
        Current electricity price.
    renewable_share:
        Current solar+wind share of grid generation.
    outdoor_temperature_c:
        Current outdoor temperature (drives cooling overhead).
    facility_power_budget_w:
        Optional cap on total facility power the scheduler should respect.
    current_it_power_w:
        The cluster's IT power before this scheduling round's decisions.
    current_pue:
        The facility PUE at the current outdoor temperature.
    """

    now_h: float
    carbon_intensity_g_per_kwh: Optional[float] = None
    carbon_intensity_threshold: Optional[float] = None
    price_per_mwh: Optional[float] = None
    renewable_share: Optional[float] = None
    outdoor_temperature_c: Optional[float] = None
    facility_power_budget_w: Optional[float] = None
    current_it_power_w: float = 0.0
    current_pue: float = 1.0
    extra: dict = field(default_factory=dict)

    def is_green_hour(self) -> bool:
        """Whether the current hour counts as "green" for carbon-aware policies.

        Defined as carbon intensity at or below the configured threshold.
        When either value is missing the hour is treated as green (no
        information, no deferral).
        """
        if self.carbon_intensity_g_per_kwh is None or self.carbon_intensity_threshold is None:
            return True
        return self.carbon_intensity_g_per_kwh <= self.carbon_intensity_threshold


@dataclass(frozen=True)
class ScheduleDecision:
    """One job the scheduler decided to start now.

    Attributes
    ----------
    job:
        The job to start.
    power_cap_fraction:
        Power cap (fraction of TDP) to enforce on the job's GPUs, or ``None``
        to run uncapped.  When the job itself carries an agreed cap
        (``job.power_cap_fraction``), schedulers should propagate it here.
    pack:
        Whether the allocation should pack onto few nodes (energy-aware) or
        spread across many (thermal-aware).
    """

    job: Job
    power_cap_fraction: Optional[float] = None
    pack: bool = True

    def __post_init__(self) -> None:
        if self.power_cap_fraction is not None and not 0.0 < self.power_cap_fraction <= 1.0:
            raise SchedulingError("power_cap_fraction must lie in (0, 1]")


class Scheduler(ABC):
    """Interface implemented by all scheduling policies."""

    #: Human-readable policy name used in benchmark tables.
    name: str = "abstract"

    def observers(self) -> tuple:
        """Simulator lifecycle observers this policy wants attached.

        The cluster simulator subscribes these automatically at construction,
        which is how stateful pipeline stages (e.g. adaptive power caps) hook
        into the event loop without being special-cased there.  Monolithic
        policies have none.
        """
        return ()

    @abstractmethod
    def select(
        self, pending: list[Job], cluster: Cluster, context: SchedulingContext
    ) -> list[ScheduleDecision]:
        """Choose which pending jobs to start at this decision point.

        Implementations must not start more GPUs than are currently free and
        must not return the same job twice; the simulator validates both.
        The ``pending`` list is ordered by submission time.
        """

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _greedy_fill(
        jobs: list[Job],
        free_gpus: int,
        *,
        stop_at_first_blocked: bool,
        cap_for: Callable[[Job], Optional[float]] = lambda job: job.power_cap_fraction,
    ) -> list[ScheduleDecision]:
        """Start jobs in the given order while they fit.

        With ``stop_at_first_blocked=True`` this is strict FIFO (a blocked
        head blocks everything behind it); with ``False`` it is a simple
        backfill that lets smaller jobs flow around the blocked head.
        """
        decisions: list[ScheduleDecision] = []
        remaining = free_gpus
        for job in jobs:
            if job.n_gpus <= remaining:
                decisions.append(
                    ScheduleDecision(job=job, power_cap_fraction=cap_for(job))
                )
                remaining -= job.n_gpus
            elif stop_at_first_blocked:
                break
        return decisions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
