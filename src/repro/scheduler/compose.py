"""The policy-spec grammar: every stage composition addressable by string.

A *policy spec* names a :class:`~repro.scheduler.pipeline.PolicyPipeline` as
a ``+``-joined sequence of stage tokens, each optionally parameterized::

    spec   := token ('+' token)*
    token  := name | name '(' arg (',' arg)* ')' | name '()'
    arg    := key '=' value
    value  := int | float | true | false | none | bare-word

Examples::

    backfill
    backfill+carbon(cap=0.7)+budget
    edf+backfill+slack(margin=2.0)+cap(fraction=0.8)
    sjf+fifo+price(ceiling=60)+deadline-cap(min_fraction=0.5)

Token order is meaningful only within a slot: gates run (and short-circuit)
in spec order, and power stages chain in spec order over the job's own cap.
Ordering and placement may each appear at most once; omitting them defaults
to submission order and backfill.

:func:`parse_policy` turns text into a :class:`PolicySpec` (raising
:class:`~repro.errors.SchedulingError` naming the offending token on bad
input); ``str(spec)`` renders the canonical spelling, and
``parse_policy(str(spec)) == spec`` round-trips.  :func:`build_pipeline`
instantiates the composition.  The stage vocabulary itself is an open
registry (:func:`register_stage` / :func:`list_stage_definitions`), which is
what the ``greenhpc policies`` listing and the CLI sweep grids are generated
from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Union

from ..errors import SchedulingError
from .pipeline import PolicyPipeline
from .stages import (
    AdaptiveCapStage,
    AdmissionGate,
    DeadlineOrdering,
    DeadlineSlackCapStage,
    DeadlineSlackGate,
    DirtyHourCapStage,
    GreenHourGate,
    OrderingStage,
    Placement,
    PowerBudgetGate,
    PowerStage,
    PriceCeilingGate,
    RenewableShareGate,
    ShortestJobOrdering,
    StaticCapStage,
    SubmitOrdering,
)

__all__ = [
    "StageSpec",
    "PolicySpec",
    "parse_policy",
    "build_pipeline",
    "split_top_level",
    "StageParam",
    "StageDefinition",
    "register_stage",
    "get_stage",
    "stage_names",
    "list_stage_definitions",
]

_TOKEN_RE = re.compile(r"^(?P<name>[a-z][a-z0-9-]*)(?:\((?P<args>.*)\))?$", re.DOTALL)
_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_INT_RE = re.compile(r"^-?\d+$")
_BARE_RE = re.compile(r"^[A-Za-z0-9_.:-]+$")

#: Values a spec parameter may carry.
ParamValue = Union[int, float, bool, str, None]


def split_top_level(text: str, sep: str = ",") -> list[str]:
    """Split ``text`` on ``sep`` occurrences outside parentheses.

    The CLI uses this for comma-separated lists whose items may themselves be
    parameterized specs (``backfill,backfill+carbon(cap=0.7)``).  Raises
    :class:`SchedulingError` on unbalanced parentheses.
    """
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise SchedulingError(f"unbalanced ')' in {text!r}")
        if char == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise SchedulingError(f"unbalanced '(' in {text!r}")
    parts.append("".join(current))
    return parts


def _parse_value(raw: str, token: str) -> ParamValue:
    raw = raw.strip()
    if _INT_RE.match(raw):
        return int(raw)
    try:
        return float(raw)
    except ValueError:
        pass
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "none":
        return None
    if not raw or not _BARE_RE.match(raw):
        raise SchedulingError(f"invalid value {raw!r} in policy token {token!r}")
    return raw


def _render_value(value: ParamValue) -> str:
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if not _BARE_RE.match(value):
        raise SchedulingError(f"string parameter value {value!r} is not grammar-safe")
    return value


@dataclass(frozen=True)
class StageSpec:
    """One parsed stage token: a name plus its (ordered) parameters."""

    name: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    def param_dict(self) -> dict[str, ParamValue]:
        return dict(self.params)

    def __str__(self) -> str:
        if not self.params:
            return self.name
        args = ",".join(f"{key}={_render_value(value)}" for key, value in self.params)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class PolicySpec:
    """A parsed policy spec: the ordered stage tokens of one composition."""

    stages: tuple[StageSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.stages:
            raise SchedulingError("policy spec must contain at least one stage token")

    def __str__(self) -> str:
        return "+".join(str(stage) for stage in self.stages)

    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse spec text; raises :class:`SchedulingError` naming the bad token."""
        if not isinstance(text, str) or not text.strip():
            raise SchedulingError(f"policy spec must be a non-empty string, got {text!r}")
        stages: list[StageSpec] = []
        for raw_token in split_top_level(text.strip(), "+"):
            token = raw_token.strip()
            if not token:
                raise SchedulingError(f"empty stage token in policy spec {text!r}")
            match = _TOKEN_RE.match(token)
            if match is None:
                raise SchedulingError(f"invalid policy token {token!r} in spec {text!r}")
            args_raw = match.group("args")
            params: list[tuple[str, ParamValue]] = []
            if args_raw is not None and args_raw.strip():
                for arg in split_top_level(args_raw, ","):
                    key, sep, raw_value = arg.partition("=")
                    key = key.strip()
                    if not sep or not _KEY_RE.match(key):
                        raise SchedulingError(
                            f"invalid argument {arg.strip()!r} in policy token {token!r} "
                            "(expected key=value)"
                        )
                    if key in dict(params):
                        raise SchedulingError(
                            f"duplicate argument {key!r} in policy token {token!r}"
                        )
                    params.append((key, _parse_value(raw_value, token)))
            stages.append(StageSpec(name=match.group("name"), params=tuple(params)))
        return cls(stages=tuple(stages))

    def build(self, *, name: Optional[str] = None) -> PolicyPipeline:
        """Instantiate the composition (see :func:`build_pipeline`)."""
        builder = _Builder()
        for stage in self.stages:
            definition = get_stage(stage.name)
            resolved = definition.resolve_params(stage)
            definition.contribute(builder, resolved, stage)
        return builder.finish(name=name if name is not None else str(self))


def parse_policy(text: str) -> PolicySpec:
    """Parse ``text`` into a :class:`PolicySpec` (module-level convenience)."""
    return PolicySpec.parse(text)


def build_pipeline(
    spec: Union[str, PolicySpec], *, name: Optional[str] = None
) -> PolicyPipeline:
    """Build the :class:`PolicyPipeline` a spec (string or parsed) describes."""
    if isinstance(spec, str):
        spec = PolicySpec.parse(spec)
    return spec.build(name=name)


# ---------------------------------------------------------------------------
# Stage registry
# ---------------------------------------------------------------------------

#: Sentinel for parameters that must be supplied explicitly.
REQUIRED = object()


@dataclass(frozen=True)
class StageParam:
    """One declared parameter of a stage token.

    ``allow_none`` marks parameters for which the grammar literal ``none`` is
    meaningful (e.g. ``carbon(cap=none)`` disables the dirty-hour cap);
    elsewhere ``none`` is rejected at parse-resolution time rather than
    crashing the stage constructor.
    """

    name: str
    type: type
    default: Any = REQUIRED
    help: str = ""
    allow_none: bool = False

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def coerce(self, value: ParamValue, token: StageSpec) -> Any:
        """Validate/coerce a parsed grammar value for this parameter."""
        if value is None:
            if not self.allow_none:
                raise SchedulingError(
                    f"argument {self.name!r} of policy token {str(token)!r} "
                    "does not accept 'none'"
                )
            return None
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.type is str and not isinstance(value, str):
            return _render_value(value)
        if not isinstance(value, self.type) or (self.type is not bool and isinstance(value, bool)):
            raise SchedulingError(
                f"argument {self.name!r} of policy token {str(token)!r} must be "
                f"{self.type.__name__}, got {value!r}"
            )
        return value


class _Builder:
    """Accumulates stage contributions into one pipeline."""

    def __init__(self) -> None:
        self.ordering: Optional[OrderingStage] = None
        self.placement: Optional[Placement] = None
        self.gates: list[AdmissionGate] = []
        self.power: list[PowerStage] = []

    def set_ordering(self, stage: OrderingStage, token: StageSpec) -> None:
        if self.ordering is not None:
            raise SchedulingError(
                f"policy token {str(token)!r} sets a second ordering "
                f"(already {self.ordering.name!r})"
            )
        self.ordering = stage

    def set_placement(self, placement: Placement, token: StageSpec) -> None:
        if self.placement is not None:
            raise SchedulingError(
                f"policy token {str(token)!r} sets a second placement "
                f"(already {self.placement.name!r})"
            )
        self.placement = placement

    def finish(self, *, name: Optional[str]) -> PolicyPipeline:
        return PolicyPipeline(
            ordering=self.ordering,
            gates=self.gates,
            placement=self.placement,
            power=self.power,
            name=name,
        )


@dataclass(frozen=True)
class StageDefinition:
    """A registered stage token: metadata plus its pipeline contribution."""

    name: str
    kind: str  # "ordering" | "placement" | "gate" | "power"
    help: str
    params: tuple[StageParam, ...] = ()
    contribute: Callable[[_Builder, dict[str, Any], StageSpec], None] = field(
        default=lambda builder, params, token: None, repr=False
    )

    def resolve_params(self, token: StageSpec) -> dict[str, Any]:
        declared = {p.name: p for p in self.params}
        unknown = [key for key, _ in token.params if key not in declared]
        if unknown:
            raise SchedulingError(
                f"unknown argument(s) {unknown} for policy token {str(token)!r}; "
                f"declared: {sorted(declared)}"
            )
        given = token.param_dict()
        resolved: dict[str, Any] = {}
        for param in self.params:
            if param.name in given:
                resolved[param.name] = param.coerce(given[param.name], token)
            elif param.required:
                raise SchedulingError(
                    f"policy token {str(token)!r} is missing required argument {param.name!r}"
                )
            else:
                resolved[param.name] = param.default
        return resolved


_STAGES: dict[str, StageDefinition] = {}


def register_stage(definition: StageDefinition, *, overwrite: bool = False) -> StageDefinition:
    """Register a stage token; duplicate names raise unless ``overwrite``."""
    if definition.kind not in ("ordering", "placement", "gate", "power"):
        raise SchedulingError(f"unknown stage kind {definition.kind!r}")
    if definition.name in _STAGES and not overwrite:
        raise SchedulingError(f"stage {definition.name!r} is already registered")
    _STAGES[definition.name] = definition
    return definition


def get_stage(name: str) -> StageDefinition:
    """Look up a registered stage token by name."""
    try:
        return _STAGES[name]
    except KeyError:
        raise SchedulingError(
            f"unknown policy token {name!r}; registered stages: {sorted(_STAGES)}"
        ) from None


def stage_names() -> tuple[str, ...]:
    """Names of all registered stage tokens, in registration order."""
    return tuple(_STAGES)


def list_stage_definitions() -> Iterator[StageDefinition]:
    """Iterate over registered stage definitions, in registration order."""
    return iter(tuple(_STAGES.values()))


# ---------------------------------------------------------------------------
# Built-in vocabulary
# ---------------------------------------------------------------------------


def _exempt_queues(exempt: Optional[str]) -> tuple[str, ...]:
    """Parse the ``exempt`` parameter: colon-separated queue names, or none."""
    if exempt is None or exempt == "none" or exempt == "":
        return ()
    return tuple(part for part in exempt.split(":") if part)


register_stage(
    StageDefinition(
        name="submit-order",
        kind="ordering",
        help="consider jobs in submission order (the FIFO/backfill default)",
        contribute=lambda b, p, t: b.set_ordering(SubmitOrdering(), t),
    )
)
register_stage(
    StageDefinition(
        name="edf",
        kind="ordering",
        help="earliest-deadline-first; jobs without deadlines fill in behind",
        contribute=lambda b, p, t: b.set_ordering(DeadlineOrdering(), t),
    )
)
register_stage(
    StageDefinition(
        name="sjf",
        kind="ordering",
        help="shortest baseline duration first",
        contribute=lambda b, p, t: b.set_ordering(ShortestJobOrdering(), t),
    )
)
register_stage(
    StageDefinition(
        name="fifo",
        kind="placement",
        help="strict head-of-line placement: a job that does not fit blocks the round",
        params=(StageParam("pack", bool, True, "pack allocations onto few nodes"),),
        contribute=lambda b, p, t: b.set_placement(
            Placement(name="fifo", stop_at_first_blocked=True, pack=p["pack"]), t
        ),
    )
)
register_stage(
    StageDefinition(
        name="backfill",
        kind="placement",
        help="EASY-style backfill: smaller jobs flow around a blocked head",
        params=(StageParam("pack", bool, True, "pack allocations onto few nodes"),),
        contribute=lambda b, p, t: b.set_placement(
            Placement(name="backfill", stop_at_first_blocked=False, pack=p["pack"]), t
        ),
    )
)


def _contribute_carbon(builder: _Builder, params: dict[str, Any], token: StageSpec) -> None:
    builder.gates.append(
        GreenHourGate(defer_non_deferrable=params["defer_all"], grace_h=params["grace"])
    )
    if params["cap"] is not None:
        builder.power.append(DirtyHourCapStage(cap_fraction=params["cap"]))


register_stage(
    StageDefinition(
        name="carbon",
        kind="gate",
        help=(
            "defer deferrable work in carbon-intense hours; optionally cap the "
            "jobs that cannot wait (cap=none disables the dirty-hour cap)"
        ),
        params=(
            StageParam(
                "cap",
                float,
                0.7,
                "power cap for jobs started in dirty hours",
                allow_none=True,
            ),
            StageParam("defer_all", bool, False, "hold even non-deferrable jobs for grace hours"),
            StageParam("grace", float, 6.0, "deferral granted to non-deferrable jobs"),
        ),
        contribute=_contribute_carbon,
    )
)
register_stage(
    StageDefinition(
        name="budget",
        kind="gate",
        help="stop starting work once the facility power budget would be exceeded",
        contribute=lambda b, p, t: b.gates.append(PowerBudgetGate()),
    )
)
register_stage(
    StageDefinition(
        name="price",
        kind="gate",
        help="defer deferrable work while electricity price exceeds a ceiling",
        params=(
            StageParam("ceiling", float, help="price ceiling in $/MWh"),
            StageParam("defer_all", bool, False, "hold even non-deferrable jobs for grace hours"),
            StageParam("grace", float, 6.0, "deferral granted to non-deferrable jobs"),
        ),
        contribute=lambda b, p, t: b.gates.append(
            PriceCeilingGate(
                p["ceiling"], defer_non_deferrable=p["defer_all"], grace_h=p["grace"]
            )
        ),
    )
)
register_stage(
    StageDefinition(
        name="renewable",
        kind="gate",
        help="defer deferrable work while the grid's renewable share is low",
        params=(
            StageParam("min_share", float, 0.3, "minimum solar+wind generation share"),
            StageParam("defer_all", bool, False, "hold even non-deferrable jobs for grace hours"),
            StageParam("grace", float, 6.0, "deferral granted to non-deferrable jobs"),
        ),
        contribute=lambda b, p, t: b.gates.append(
            RenewableShareGate(
                p["min_share"], defer_non_deferrable=p["defer_all"], grace_h=p["grace"]
            )
        ),
    )
)
register_stage(
    StageDefinition(
        name="slack",
        kind="gate",
        help="use deadline slack to ride out dirty hours (deadline-aware deferral)",
        params=(
            StageParam("margin", float, 2.0, "safety margin before the latest feasible start"),
        ),
        contribute=lambda b, p, t: b.gates.append(DeadlineSlackGate(slack_margin_h=p["margin"])),
    )
)
register_stage(
    StageDefinition(
        name="cap",
        kind="power",
        help="static power cap as a fraction of TDP, with queue exemptions",
        params=(
            StageParam("fraction", float, 0.75, "cap as a fraction of TDP"),
            StageParam(
                "exempt",
                str,
                "urgent",
                "colon-separated exempt queues ('none' disables)",
                allow_none=True,
            ),
        ),
        contribute=lambda b, p, t: b.power.append(
            StaticCapStage(cap_fraction=p["fraction"], exempt_queues=_exempt_queues(p["exempt"]))
        ),
    )
)
register_stage(
    StageDefinition(
        name="dirty-cap",
        kind="power",
        help="additionally cap jobs started during carbon-intense hours",
        params=(StageParam("fraction", float, 0.7, "cap as a fraction of TDP"),),
        contribute=lambda b, p, t: b.power.append(DirtyHourCapStage(cap_fraction=p["fraction"])),
    )
)
register_stage(
    StageDefinition(
        name="deadline-cap",
        kind="power",
        help="per-job deadline-aware caps: run each job as slow as its deadline allows",
        params=(
            StageParam("min_fraction", float, 0.5, "tightest cap considered"),
            StageParam("step", float, 0.05, "cap search increment"),
        ),
        contribute=lambda b, p, t: b.power.append(
            DeadlineSlackCapStage(min_fraction=p["min_fraction"], step_fraction=p["step"])
        ),
    )
)


def _contribute_adaptive(builder: _Builder, params: dict[str, Any], token: StageSpec) -> None:
    builder.power.append(
        AdaptiveCapStage(
            params["budget_w"],
            min_cap_fraction=params["min_fraction"],
            step_fraction=params["step"],
        )
    )


register_stage(
    StageDefinition(
        name="adaptive",
        kind="power",
        help=(
            "budget-following caps on running jobs, adjusted at every simulator "
            "tick through the lifecycle-hook API"
        ),
        params=(
            StageParam("budget_w", float, help="target IT power ceiling in watts"),
            StageParam("min_fraction", float, 0.5, "tightest cap the controller imposes"),
            StageParam("step", float, 0.05, "cap adjustment per control interval"),
        ),
        contribute=_contribute_adaptive,
    )
)
