"""Command-line interface.

``greenhpc`` exposes the toolkit's headline analyses so an operator (or a
reviewer reproducing the paper) can regenerate each figure's series and the
main policy comparisons without writing Python:

* ``greenhpc figures`` — print the Fig. 2-5 monthly series and their statistics;
* ``greenhpc table1`` — print the reproduced Table I;
* ``greenhpc powercap`` — the power-cap energy/time trade-off table;
* ``greenhpc shifting`` — carbon/price-aware load-shifting savings;
* ``greenhpc deadlines`` — the deadline-restructuring comparison;
* ``greenhpc stress`` — the stress-test battery.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Sequence

from .analysis.figures import (
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
    SuperCloudScenario,
)
from .analysis.tables import table1_conferences
from .core.framework import GreenDatacenterModel
from .core.policies import LoadShiftingPolicy
from .scheduler.powercap import powercap_energy_tradeoff

__all__ = ["main", "build_parser"]


def _print_rows(rows: Iterable[dict], *, stream=None) -> None:
    """Print dict records as an aligned text table."""
    stream = stream or sys.stdout
    rows = list(rows)
    if not rows:
        print("(no rows)", file=stream)
        return
    keys = list(rows[0].keys())
    formatted = []
    for row in rows:
        formatted.append(
            {k: (f"{v:.4g}" if isinstance(v, float) else str(v)) for k, v in row.items()}
        )
    widths = {k: max(len(k), *(len(r[k]) for r in formatted)) for k in keys}
    header = "  ".join(k.ljust(widths[k]) for k in keys)
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for row in formatted:
        print("  ".join(row[k].ljust(widths[k]) for k in keys), file=stream)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="greenhpc",
        description="Reproduction toolkit for 'A Green(er) World for A.I.' (IPDPSW 2022).",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument("--months", type=int, default=24, help="simulation horizon in months")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("figures", help="print the Fig. 2-5 monthly series")
    subparsers.add_parser("table1", help="print the reproduced Table I")
    subparsers.add_parser("powercap", help="print the power-cap energy/time trade-off")
    shifting = subparsers.add_parser("shifting", help="carbon/price-aware load shifting savings")
    shifting.add_argument("--deferrable", type=float, default=0.3, help="deferrable load fraction")
    shifting.add_argument("--window", type=int, default=24, help="shifting window in hours")
    subparsers.add_parser("deadlines", help="deadline restructuring comparison")
    subparsers.add_parser("stress", help="run the stress-test battery")
    return parser


def _command_figures(seed: int, months: int) -> int:
    scenario = SuperCloudScenario.build(seed=seed, n_months=months)
    fig2 = fig2_power_vs_green_share(scenario)
    fig3 = fig3_price_vs_green_share(scenario)
    fig4 = fig4_power_vs_temperature(scenario)
    rows = []
    for i, label in enumerate(fig2.month_labels):
        rows.append(
            {
                "month": label,
                "power_kw": float(fig2.monthly_power_kw[i]),
                "solar_wind_pct": float(fig2.monthly_renewable_share_pct[i]),
                "price_per_mwh": float(fig3.monthly_price_per_mwh[i]),
                "temperature_f": float(fig4.monthly_temperature_f[i]),
            }
        )
    _print_rows(rows)
    print()
    print(f"Fig.2 corr(power, green share)      = {fig2.correlation:+.3f}")
    print(f"Fig.3 corr(price, green share)      = {fig3.correlation:+.3f}")
    print(f"Fig.4 spearman(power, temperature)  = {fig4.spearman:+.3f}")
    if months >= 16:
        fig5 = fig5_energy_vs_deadlines(scenario)
        print(f"Fig.5 corr(energy, deadlines)       = {fig5.same_month_correlation:+.3f}")
        print(f"Fig.5 early-2021 / early-2020 ratio = {fig5.early_2021_vs_2020_ratio:.3f}")
    return 0


def _command_table1() -> int:
    table = table1_conferences()
    print(table.as_markdown())
    print()
    print(f"conferences: {table.n_conferences}")
    print(f"spring/summer deadline share: {table.spring_summer_fraction:.0%}")
    return 0


def _command_powercap() -> int:
    rows = [
        {
            "cap_fraction": p.cap_fraction,
            "cap_w": p.cap_w,
            "runtime_penalty_pct": p.runtime_penalty_pct,
            "energy_savings_pct": p.energy_savings_pct,
        }
        for p in powercap_energy_tradeoff()
    ]
    _print_rows(rows)
    return 0


def _command_shifting(seed: int, months: int, deferrable: float, window: int) -> int:
    model = GreenDatacenterModel()
    outcome = model.load_shifting(
        LoadShiftingPolicy(deferrable_fraction=deferrable, window_h=window, signal="carbon")
    )
    _print_rows([dict(outcome.summary())])
    return 0


def _command_deadlines(seed: int, months: int) -> int:
    model = GreenDatacenterModel()
    outcomes = model.deadline_options()
    _print_rows([dict(o.summary()) for o in outcomes.values()])
    return 0


def _command_stress(seed: int, months: int) -> int:
    model = GreenDatacenterModel()
    results = model.stress_tests()
    from .core.stress import StressTestHarness

    _print_rows(StressTestHarness.degradation_table(results))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figures":
        return _command_figures(args.seed, args.months)
    if args.command == "table1":
        return _command_table1()
    if args.command == "powercap":
        return _command_powercap()
    if args.command == "shifting":
        return _command_shifting(args.seed, args.months, args.deferrable, args.window)
    if args.command == "deadlines":
        return _command_deadlines(args.seed, args.months)
    if args.command == "stress":
        return _command_stress(args.seed, args.months)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
