"""Command-line interface, generated from the experiment registry.

``greenhpc`` exposes every experiment registered in
:mod:`repro.experiments` as a subcommand, so an operator (or a reviewer
reproducing the paper) can run each analysis without writing Python::

    greenhpc figures                    # the Fig. 2-5 monthly series
    greenhpc table1                     # the reproduced Table I
    greenhpc powercap                   # the power-cap energy/time trade-off
    greenhpc shifting --signal price    # load-shifting savings
    greenhpc deadlines                  # deadline restructuring comparison
    greenhpc stress                     # the stress-test battery
    greenhpc optimize --jobs 120        # the Eq. 1 operating-point search
    greenhpc fleet --router carbon-min  # multi-site co-simulation + routing

``greenhpc sweep`` fans any registered experiments out over a declarative
grid of scenario fields and experiment parameters (a campaign), optionally
across worker processes.  Grid values split on top-level commas only, so
policy pipeline specs with parameters sweep directly::

    greenhpc sweep --experiments table1,powercap \\
        --grid seed=0,1 --grid n_months=3,4 --workers 2 --json
    greenhpc sweep --experiments schedule \\
        --grid "policy=backfill,backfill+carbon(cap=0.7)+budget"

``greenhpc policies`` prints the policy registry and the stage grammar the
``schedule``/``optimize`` experiments accept, generated from the registries.

Sweeps become *incremental* with ``--cache-dir`` (or the
``GREENHPC_CACHE_DIR`` environment variable): every campaign point is
cached in a content-addressed artifact store, so re-running an unchanged
sweep simulates nothing and editing one grid value reruns only the
affected points (``--force`` recomputes everything, ``--no-cache`` ignores
the environment's cache directory).  ``greenhpc report`` renders the
standard figure battery — per-metric comparison grids across the swept
dimensions, as markdown and embedded-SVG HTML — from those cached
artifacts *without re-simulating*::

    greenhpc sweep --experiments fleet --grid "router=round-robin,carbon-min" \\
        --cache-dir ./cache
    greenhpc report --experiments fleet --grid "router=round-robin,carbon-min" \\
        --cache-dir ./cache --out ./report

Every subcommand accepts ``--trace-out PATH``, which installs the ambient
:mod:`repro.obs` recorder for the run and exports the trace on exit —
Chrome ``trace_event`` JSON (drop into https://ui.perfetto.dev) unless PATH
ends in ``.ndjson``.  ``greenhpc obs PATH`` digests a recorded trace into
per-phase totals and the longest individual spans.

Shared flags are handled once for every subcommand: ``--seed``, ``--months``
and ``--site`` override the chosen ``--scenario``'s spec, ``--workers`` (or
the ``GREENHPC_WORKERS`` environment variable) sets the process count for
sweep-capable subcommands, and ``--json`` switches the output from aligned
text tables to a machine-readable :class:`~repro.experiments.
ExperimentResult` dump.  Registering a new experiment automatically gives it
a CLI surface (and makes it sweepable) — this module contains no per-command
wiring.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Iterable, Mapping, Sequence

from .core.levers import registered_policies
from .errors import ConfigurationError, GreenHPCError
from .scheduler.compose import REQUIRED, list_stage_definitions
from .experiments import (
    CampaignSpec,
    ExperimentResult,
    ExperimentSession,
    get_experiment,
    get_scenario,
    get_site,
    list_experiments,
    run_campaign,
    scenario_names,
    site_names,
)
from .experiments.campaign import split_value_list
from .fleet import list_router_definitions
from .parallel import ParallelConfig

__all__ = ["main", "build_parser"]

#: Scenario-spec fields sweepable from the command line, with their parsers
#: (``site`` values are registered site names, resolved at expansion time).
SWEEPABLE_SPEC_FIELDS: Mapping[str, type] = {
    "seed": int,
    "start_year": int,
    "n_months": int,
    "site": str,
}


def _format_cell(value: object) -> str:
    """Render one table cell, tolerating missing and non-finite values."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def _print_rows(rows: Iterable[dict], *, stream=None) -> None:
    """Print dict records as an aligned text table.

    Robust to ragged records (the column set is the union over all rows) and
    to ``None``/NaN values, which render as placeholders instead of crashing.
    """
    stream = stream or sys.stdout
    rows = list(rows)
    if not rows:
        print("(no rows)", file=stream)
        return
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    formatted = [{k: _format_cell(row.get(k)) for k in keys} for row in rows]
    widths = {k: max(len(k), *(len(r[k]) for r in formatted)) for k in keys}
    header = "  ".join(k.ljust(widths[k]) for k in keys)
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for row in formatted:
        print("  ".join(row[k].ljust(widths[k]) for k in keys), file=stream)


def _render_text(result: ExperimentResult, *, stream=None) -> None:
    """Human-oriented rendering: the rows table plus summary lines."""
    stream = stream or sys.stdout
    _print_rows(result.rows, stream=stream)
    extras = list(result.notes) or [
        f"{key} = {_format_cell(value)}" for key, value in result.scalars.items()
    ]
    if extras:
        print(file=stream)
        for line in extras:
            print(line, file=stream)


def _add_shared_arguments(parser: argparse.ArgumentParser, *, in_subcommand: bool) -> None:
    """Add the flags every subcommand shares.

    They are registered on the top-level parser (with real defaults) *and* on
    each subparser (with ``SUPPRESS`` defaults, so a subcommand-level flag
    overrides the top-level value but an absent one does not reset it).  This
    makes both ``greenhpc --months 12 figures`` and
    ``greenhpc figures --months 12`` work.
    """
    suppress = argparse.SUPPRESS

    def default(value):
        return suppress if in_subcommand else value

    parser.add_argument(
        "--scenario",
        default=default("default"),
        choices=scenario_names(),
        help="registered scenario to start from",
    )
    parser.add_argument(
        "--seed", type=int, default=default(None), help="master random seed override"
    )
    parser.add_argument(
        "--months", type=int, default=default(None), help="simulation horizon override in months"
    )
    parser.add_argument(
        "--site", default=default(None), choices=site_names(), help="registered site override"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default(None),
        help=(
            "worker processes for sweep-capable subcommands and for fleet "
            "stepping (greenhpc fleet --workers N steps member sites on worker "
            "processes with bit-identical results; 0 = all cores; default: the "
            "GREENHPC_WORKERS environment variable, else serial)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        default=default(False),
        help="emit the structured ExperimentResult as JSON instead of text tables",
    )
    parser.add_argument(
        "--trace-out",
        default=default(None),
        metavar="PATH",
        help=(
            "record a trace of this run and write it to PATH on exit: *.ndjson "
            "writes the newline-delimited event log, anything else writes "
            "Chrome trace_event JSON (loadable in Perfetto / about:tracing); "
            "summarize either with 'greenhpc obs PATH'"
        ),
    )


def _add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the campaign-shaped subcommands (``sweep``/``report``)."""
    parser.add_argument(
        "--experiments",
        required=True,
        help="comma-separated registered experiment names to run at every grid point",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help=(
            "one grid dimension; KEY is a scenario field "
            f"({', '.join(SWEEPABLE_SPEC_FIELDS)}) or a parameter declared by a "
            "selected experiment; repeat for more dimensions"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed artifact store: cached campaign points skip "
            "simulation, fresh ones are persisted (default: the "
            "GREENHPC_CACHE_DIR environment variable, else uncached; "
            "required by 'report')"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run uncached even when GREENHPC_CACHE_DIR is set",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cached stage and overwrite its artifacts",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser, with one subcommand per registered experiment."""
    parser = argparse.ArgumentParser(
        prog="greenhpc",
        description="Reproduction toolkit for 'A Green(er) World for A.I.' (IPDPSW 2022).",
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    _add_shared_arguments(parser, in_subcommand=False)
    subparsers = parser.add_subparsers(dest="command", required=True)
    for definition in list_experiments():
        subparser = subparsers.add_parser(definition.name, help=definition.help)
        _add_shared_arguments(subparser, in_subcommand=True)
        for param in definition.params:
            subparser.add_argument(
                param.cli_flag,
                dest=param.name,
                type=param.type,
                default=param.default,
                choices=param.choices,
                help=param.help or None,
            )
    sweep = subparsers.add_parser(
        "sweep",
        help="run a campaign: registered experiments over a scenario/parameter grid",
    )
    _add_shared_arguments(sweep, in_subcommand=True)
    _add_campaign_arguments(sweep)
    sweep.add_argument(
        "--csv",
        action="store_true",
        help="emit the campaign rows as CSV instead of a text table",
    )
    report = subparsers.add_parser(
        "report",
        help=(
            "render the campaign figure battery (markdown + SVG HTML) from "
            "cached artifacts, without re-simulating"
        ),
    )
    _add_shared_arguments(report, in_subcommand=True)
    _add_campaign_arguments(report)
    report.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help=(
            "directory to write report.md and report.html into (created if "
            "missing); omit to print the markdown report to stdout"
        ),
    )
    report.add_argument(
        "--simulate",
        action="store_true",
        help=(
            "allow simulating campaign points missing from the cache instead of "
            "failing (the default insists the store is warm)"
        ),
    )
    policies = subparsers.add_parser(
        "policies",
        help="list registered scheduling policies and pipeline stages (the spec grammar)",
    )
    _add_shared_arguments(policies, in_subcommand=True)
    obs = subparsers.add_parser(
        "obs",
        help="summarize a trace file recorded with --trace-out (top spans, per-phase totals)",
    )
    obs.add_argument("trace", help="trace file to read (Chrome trace_event JSON or NDJSON)")
    obs.add_argument(
        "--top",
        type=int,
        default=15,
        help="how many individual spans to list in the top-spans table",
    )
    obs.add_argument(
        "--json",
        action="store_true",
        help="emit the structured summary as JSON instead of text tables",
    )
    serve = subparsers.add_parser(
        "serve",
        help="run the long-running simulation daemon (warm sessions over JSON/HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8714, help="bind port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "directory for periodic/shutdown checkpoints; a restarting daemon "
            "pointed here restores every session (omit to disable checkpointing)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every-h",
        type=float,
        default=24.0,
        help="simulated hours between automatic checkpoints during advance requests",
    )
    serve.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="per-request socket timeout and default advance wall-clock bound",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record per-request serve spans and write the trace to PATH on shutdown",
    )
    return parser


def _split_names(raw: str, what: str) -> tuple[str, ...]:
    """Parse a non-empty comma-separated name list.

    Splits on *top-level* commas only (the shared
    :func:`~repro.experiments.campaign.split_value_list` rule), so
    parameterized policy/router specs like ``backfill+carbon(cap=0.7)``
    survive as single values in sweep grids.
    """
    return split_value_list(raw, what)


def _stage_param_summary(param) -> str:
    """Render one stage parameter as ``name=default`` (or ``name=<required>``)."""
    if param.default is REQUIRED:
        return f"{param.name}=<required>"
    if isinstance(param.default, bool):
        return f"{param.name}={'true' if param.default else 'false'}"
    return f"{param.name}={param.default!r}"


def _run_policies(args: argparse.Namespace) -> int:
    """The ``greenhpc policies`` subcommand: the registry-generated catalogue."""
    policy_rows = [
        {
            "policy": definition.name,
            "pipeline": definition.spec,
            "cap_lever": definition.cap_mode,
            "description": definition.help,
        }
        for definition in registered_policies()
    ]
    stage_rows = [
        {
            "stage": definition.name,
            "kind": definition.kind,
            "parameters": ", ".join(_stage_param_summary(p) for p in definition.params) or "-",
            "description": definition.help,
        }
        for definition in list_stage_definitions()
    ]
    router_rows = [
        {
            "router": definition.name,
            "kind": definition.kind,
            "parameters": ", ".join(_stage_param_summary(p) for p in definition.params) or "-",
            "description": definition.help,
        }
        for definition in list_router_definitions()
    ]
    if args.json:
        import json

        print(
            json.dumps(
                {"policies": policy_rows, "stages": stage_rows, "routers": router_rows},
                indent=2,
            )
        )
        return 0
    print("Registered policies (usable anywhere a policy is addressed):")
    _print_rows(policy_rows)
    print()
    print("Pipeline stages (compose with '+', parameterize with 'name(key=value,...)'):")
    _print_rows(stage_rows)
    print()
    print(
        "Any composition is a valid policy, e.g. "
        "'backfill+carbon(cap=0.7)+budget' or 'edf+backfill+slack(margin=2.0)'."
    )
    print()
    print("Fleet routing tokens (same grammar; at most one scorer per spec):")
    _print_rows(router_rows)
    print()
    print(
        "Any composition is a valid router for the fleet experiment, e.g. "
        "'carbon-min+queue-cap(max=50)' (sweep with --grid \"router=...\")."
    )
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    """The ``greenhpc obs`` subcommand: digest a ``--trace-out`` file."""
    from .obs import load_trace, summarize_trace

    trace = load_trace(args.trace)
    summary = summarize_trace(trace, top=args.top)
    if args.json:
        import json

        print(json.dumps({"format": trace["format"], **summary}, indent=2))
        return 0
    print(
        f"{args.trace}: {trace['format']} trace, {summary['n_spans']} span(s) on "
        f"{summary['n_tracks']} track(s), "
        f"{summary['recorded_total_s']:.3f}s recorded span time"
    )
    print()
    print("Per-phase totals (share is relative to the largest aggregate):")
    _print_rows(
        {
            "phase": entry["name"],
            "count": entry["count"],
            "total_s": entry["total_s"],
            "mean_s": entry["mean_s"],
            "max_s": entry["max_s"],
            "share": entry["share"],
        }
        for entry in summary["phases"]
    )
    print()
    print(f"Top {len(summary['top_spans'])} span(s) by wall time:")
    _print_rows(
        {
            "span": s["name"],
            "wall_s": s["wall_s"],
            "pid": s["pid"],
            "attributes": ", ".join(f"{k}={v}" for k, v in s["attributes"].items()) or "-",
        }
        for s in summary["top_spans"]
    )
    if summary["metrics"]:
        print()
        print(
            f"{len(summary['metrics'])} metric familie(s) recorded "
            "(rerun with --json for the values)."
        )
    return 0


def _parse_grid_arguments(
    grid_args: Sequence[str], experiments: Sequence[str]
) -> tuple[dict[str, list], dict[str, list]]:
    """Split repeated ``--grid key=v1,v2`` flags into scenario and param grids.

    Scenario-field values are coerced by :data:`SWEEPABLE_SPEC_FIELDS`;
    experiment-parameter values are coerced by the parameter's declared type,
    so ``--grid deferrable=0.2,0.4`` produces floats exactly as
    ``--deferrable`` would.
    """
    param_types: dict[str, type] = {}
    for name in experiments:
        for param in get_experiment(name).params:
            param_types.setdefault(param.name, param.type)
    scenario_grid: dict[str, list] = {}
    param_grid: dict[str, list] = {}
    for item in grid_args:
        key, sep, raw_values = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(f"--grid expects KEY=V1,V2,..., got {item!r}")
        if key in scenario_grid or key in param_grid:
            raise ConfigurationError(
                f"duplicate grid key {key!r}; give each --grid key once, "
                f"with all its values comma-separated"
            )
        values = _split_names(raw_values, f"--grid {key}")
        if key in SWEEPABLE_SPEC_FIELDS:
            coerce, target = SWEEPABLE_SPEC_FIELDS[key], scenario_grid
        elif key in param_types:
            coerce, target = param_types[key], param_grid
        else:
            valid = sorted(set(SWEEPABLE_SPEC_FIELDS) | set(param_types))
            raise ConfigurationError(
                f"unknown grid key {key!r}; sweepable keys for this campaign: {valid}"
            )
        try:
            target[key] = [coerce(value) for value in values]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"could not parse --grid {key} values: {exc}") from None
    return scenario_grid, param_grid


def _resolve_workers(cli_value: int | None) -> int | None:
    """The worker count from ``--workers``, else ``GREENHPC_WORKERS``, else ``None``."""
    if cli_value is not None:
        return cli_value
    raw = os.environ.get("GREENHPC_WORKERS", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"GREENHPC_WORKERS must be an integer, got {raw!r}"
        ) from None


def _build_campaign(args: argparse.Namespace, base_spec) -> CampaignSpec:
    """The campaign described by ``--experiments``/``--grid`` over ``base_spec``.

    Shared by ``sweep`` and ``report`` so both address the *same* cache
    keys: a report over the flags of a finished sweep finds its artifacts.
    """
    experiments = _split_names(args.experiments, "--experiments")
    scenario_grid, param_grid = _parse_grid_arguments(args.grid, experiments)
    return CampaignSpec(
        experiments=experiments,
        base=base_spec,
        scenario_grid=scenario_grid,
        param_grid=param_grid,
        seed=base_spec.seed,
    )


def _resolve_store(args: argparse.Namespace):
    """The artifact store from ``--cache-dir`` / ``GREENHPC_CACHE_DIR``, if any."""
    if args.no_cache:
        if args.cache_dir is not None:
            raise ConfigurationError("--cache-dir and --no-cache are mutually exclusive")
        return None
    cache_dir = args.cache_dir or os.environ.get("GREENHPC_CACHE_DIR", "").strip() or None
    if cache_dir is None:
        return None
    from .artifacts import ArtifactStore

    return ArtifactStore(cache_dir)


def _run_sweep(args: argparse.Namespace, parallel: ParallelConfig | None, base_spec) -> int:
    """The ``greenhpc sweep`` subcommand: build, run and render a campaign."""
    if args.json and args.csv:
        raise ConfigurationError("--json and --csv are mutually exclusive")
    campaign = _build_campaign(args, base_spec)
    store = _resolve_store(args)
    result = run_campaign(campaign, parallel, store=store, force=args.force)
    if args.json:
        print(result.to_json(indent=2))
    elif args.csv:
        print(result.to_csv(), end="")
    else:
        _print_rows(result.rows)
        workers = parallel.resolved_workers() if parallel is not None else 1
        print()
        print(
            f"{len(result)} campaign point(s) across "
            f"{len(campaign.experiments)} experiment(s), {workers} worker(s)"
        )
        if result.cache_hits is not None:
            print(
                f"artifact cache: {result.cache_hits} hit(s), "
                f"{result.cache_misses} simulated ({store.root})"
            )
    return 0


def _run_report(args: argparse.Namespace, parallel: ParallelConfig | None, base_spec) -> int:
    """The ``greenhpc report`` subcommand: the figure battery from the store."""
    from .experiments.dag import CampaignDAG

    campaign = _build_campaign(args, base_spec)
    store = _resolve_store(args)
    if store is None:
        raise ConfigurationError(
            "report needs an artifact store: pass --cache-dir DIR (or set "
            "GREENHPC_CACHE_DIR) pointing at a directory a sweep populated"
        )
    dag = CampaignDAG(campaign, store)
    outcome = dag.materialize(
        parallel=parallel, simulate=args.simulate or args.force, force=args.force
    )
    written: list[str] = []
    if args.out is not None:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, text in (
            ("report.md", outcome.report_markdown),
            ("report.html", outcome.report_html),
        ):
            path = out_dir / name
            path.write_text(text)
            written.append(str(path))
    if args.json:
        import json

        payload = outcome.to_dict()
        payload["written"] = written
        print(json.dumps(payload, indent=2))
    elif written:
        for line in (
            f"{stage}: {status}" for stage, status in outcome.stage_status.items()
        ):
            print(line)
        for path in written:
            print(f"wrote {path}")
    else:
        print(outcome.report_markdown)
    return 0


def _dispatch_command(args: argparse.Namespace) -> int:
    """Run the parsed subcommand (tracing, if requested, is already installed)."""
    if args.command == "policies":
        return _run_policies(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "serve":
        # Like "policies", serve takes no scenario: sessions carry their own.
        from .serve.daemon import run_serve

        return run_serve(args)
    spec = get_scenario(args.scenario)
    overrides: dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.months is not None:
        overrides["n_months"] = args.months
    if args.site is not None:
        overrides["site"] = get_site(args.site)
    if overrides:
        spec = spec.replace(**overrides)
    workers = _resolve_workers(args.workers)
    # An explicit worker request also lowers the serial-fallback floor:
    # the operator asked for processes, so small sweeps use them too.
    parallel = (
        ParallelConfig(n_workers=workers, min_tasks_for_processes=2)
        if workers is not None
        else None
    )
    if args.command == "sweep":
        return _run_sweep(args, parallel, spec)
    if args.command == "report":
        return _run_report(args, parallel, spec)
    definition = get_experiment(args.command)
    session = ExperimentSession(spec, parallel=parallel)
    params = {param.name: getattr(args, param.name) for param in definition.params}
    result = definition.run(session, **params)
    if args.json:
        print(result.to_json(indent=2))
    else:
        _render_text(result)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    try:
        if trace_out is None:
            return _dispatch_command(args)
        from .obs import TraceRecorder, set_recorder, write_trace

        recorder = TraceRecorder(cpu_time=True)
        previous = set_recorder(recorder)
        try:
            return _dispatch_command(args)
        finally:
            # Export even when the command failed: a partial trace of a
            # crashed run is exactly what an operator wants to look at.
            set_recorder(previous)
            fmt = write_trace(recorder, trace_out)
            print(
                f"greenhpc: wrote {fmt} trace ({len(recorder)} span(s)) to {trace_out}",
                file=sys.stderr,
            )
    except GreenHPCError as exc:
        print(f"greenhpc: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
