"""Command-line interface, generated from the experiment registry.

``greenhpc`` exposes every experiment registered in
:mod:`repro.experiments` as a subcommand, so an operator (or a reviewer
reproducing the paper) can run each analysis without writing Python::

    greenhpc figures                    # the Fig. 2-5 monthly series
    greenhpc table1                     # the reproduced Table I
    greenhpc powercap                   # the power-cap energy/time trade-off
    greenhpc shifting --signal price    # load-shifting savings
    greenhpc deadlines                  # deadline restructuring comparison
    greenhpc stress                     # the stress-test battery
    greenhpc optimize --jobs 120        # the Eq. 1 operating-point search

Shared flags are handled once for every subcommand: ``--seed``, ``--months``
and ``--site`` override the chosen ``--scenario``'s spec, and ``--json``
switches the output from aligned text tables to a machine-readable
:class:`~repro.experiments.ExperimentResult` dump.  Registering a new
experiment automatically gives it a CLI surface — this module contains no
per-command wiring.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Iterable, Sequence

from .errors import GreenHPCError
from .experiments import (
    ExperimentResult,
    ExperimentSession,
    get_experiment,
    get_scenario,
    get_site,
    list_experiments,
    scenario_names,
    site_names,
)

__all__ = ["main", "build_parser"]


def _format_cell(value: object) -> str:
    """Render one table cell, tolerating missing and non-finite values."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def _print_rows(rows: Iterable[dict], *, stream=None) -> None:
    """Print dict records as an aligned text table.

    Robust to ragged records (the column set is the union over all rows) and
    to ``None``/NaN values, which render as placeholders instead of crashing.
    """
    stream = stream or sys.stdout
    rows = list(rows)
    if not rows:
        print("(no rows)", file=stream)
        return
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    formatted = [{k: _format_cell(row.get(k)) for k in keys} for row in rows]
    widths = {k: max(len(k), *(len(r[k]) for r in formatted)) for k in keys}
    header = "  ".join(k.ljust(widths[k]) for k in keys)
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for row in formatted:
        print("  ".join(row[k].ljust(widths[k]) for k in keys), file=stream)


def _render_text(result: ExperimentResult, *, stream=None) -> None:
    """Human-oriented rendering: the rows table plus summary lines."""
    stream = stream or sys.stdout
    _print_rows(result.rows, stream=stream)
    extras = list(result.notes) or [
        f"{key} = {_format_cell(value)}" for key, value in result.scalars.items()
    ]
    if extras:
        print(file=stream)
        for line in extras:
            print(line, file=stream)


def _add_shared_arguments(parser: argparse.ArgumentParser, *, in_subcommand: bool) -> None:
    """Add the flags every subcommand shares.

    They are registered on the top-level parser (with real defaults) *and* on
    each subparser (with ``SUPPRESS`` defaults, so a subcommand-level flag
    overrides the top-level value but an absent one does not reset it).  This
    makes both ``greenhpc --months 12 figures`` and
    ``greenhpc figures --months 12`` work.
    """
    suppress = argparse.SUPPRESS

    def default(value):
        return suppress if in_subcommand else value

    parser.add_argument(
        "--scenario",
        default=default("default"),
        choices=scenario_names(),
        help="registered scenario to start from",
    )
    parser.add_argument(
        "--seed", type=int, default=default(None), help="master random seed override"
    )
    parser.add_argument(
        "--months", type=int, default=default(None), help="simulation horizon override in months"
    )
    parser.add_argument(
        "--site", default=default(None), choices=site_names(), help="registered site override"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        default=default(False),
        help="emit the structured ExperimentResult as JSON instead of text tables",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser, with one subcommand per registered experiment."""
    parser = argparse.ArgumentParser(
        prog="greenhpc",
        description="Reproduction toolkit for 'A Green(er) World for A.I.' (IPDPSW 2022).",
    )
    _add_shared_arguments(parser, in_subcommand=False)
    subparsers = parser.add_subparsers(dest="command", required=True)
    for definition in list_experiments():
        subparser = subparsers.add_parser(definition.name, help=definition.help)
        _add_shared_arguments(subparser, in_subcommand=True)
        for param in definition.params:
            subparser.add_argument(
                param.cli_flag,
                dest=param.name,
                type=param.type,
                default=param.default,
                choices=param.choices,
                help=param.help or None,
            )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        definition = get_experiment(args.command)
        spec = get_scenario(args.scenario)
        overrides: dict[str, object] = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.months is not None:
            overrides["n_months"] = args.months
        if args.site is not None:
            overrides["site"] = get_site(args.site)
        if overrides:
            spec = spec.replace(**overrides)
        session = ExperimentSession(spec)
        params = {param.name: getattr(args, param.name) for param in definition.params}
        result = definition.run(session, **params)
    except GreenHPCError as exc:
        print(f"greenhpc: error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(result.to_json(indent=2))
    else:
        _render_text(result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
