"""Correlation and lag analysis.

The paper's empirical claims are all statements about the sign or monotonicity
of relationships between monthly series: power vs. renewable share (negative,
Fig. 2), price vs. renewable share (negative, Fig. 3), power vs. temperature
(monotone positive, Fig. 4), and energy vs. upcoming deadlines (positive with
a lead/lag structure, Fig. 5).  The helpers here compute those statistics so
benchmarks can verify the *shape* of each relationship rather than absolute
values.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..errors import DataError

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "lagged_cross_correlation",
    "best_lag",
    "is_monotonic_relationship",
]


def _validate_pair(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise DataError("inputs must be 1-D arrays of equal length")
    if a.size < 3:
        raise DataError("need at least three points to correlate")
    if np.any(~np.isfinite(a)) or np.any(~np.isfinite(b)):
        raise DataError("inputs must be finite")
    return a, b


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two series."""
    a, b = _validate_pair(x, y)
    if np.std(a) == 0 or np.std(b) == 0:
        raise DataError("cannot correlate a constant series")
    return float(np.corrcoef(a, b)[0, 1])


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (the monotonicity measure used for Fig. 4)."""
    a, b = _validate_pair(x, y)
    result = stats.spearmanr(a, b)
    return float(result.statistic)


def lagged_cross_correlation(x: np.ndarray, y: np.ndarray, max_lag: int = 6) -> dict[int, float]:
    """Pearson correlation of ``x[t]`` with ``y[t + lag]`` for lags in [-max_lag, max_lag].

    Positive lags mean ``x`` *leads* ``y``: e.g. deadline counts lead energy
    when energy rises *before* the deadline month (lag -1 or -2 is where
    Fig. 5's anticipation effect shows up, since energy at month t correlates
    with deadlines at month t+1..t+2).
    """
    a, b = _validate_pair(x, y)
    if max_lag < 0 or max_lag >= a.size - 2:
        raise DataError("max_lag must be non-negative and leave at least 3 overlapping points")
    out: dict[int, float] = {}
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xa, yb = a[: a.size - lag] if lag else a, b[lag:]
        else:
            xa, yb = a[-lag:], b[: b.size + lag]
        if xa.size < 3 or np.std(xa) == 0 or np.std(yb) == 0:
            out[lag] = float("nan")
        else:
            out[lag] = float(np.corrcoef(xa, yb)[0, 1])
    return out


def best_lag(x: np.ndarray, y: np.ndarray, max_lag: int = 6) -> tuple[int, float]:
    """The lag (and its correlation) at which |corr(x[t], y[t+lag])| is largest."""
    correlations = lagged_cross_correlation(x, y, max_lag)
    finite = {lag: c for lag, c in correlations.items() if np.isfinite(c)}
    if not finite:
        raise DataError("no finite lagged correlations")
    lag = max(finite, key=lambda k: abs(finite[k]))
    return lag, finite[lag]


def is_monotonic_relationship(x: np.ndarray, y: np.ndarray, *, threshold: float = 0.9) -> bool:
    """Whether y is (nearly) monotone in x: |Spearman rho| >= threshold.

    Fig. 4's claim is a "near one-to-one, monotonic relationship" between
    monthly temperature and power; this is the corresponding test.
    """
    if not 0.0 < threshold <= 1.0:
        raise DataError("threshold must lie in (0, 1]")
    return abs(spearman_correlation(x, y)) >= threshold
