"""Analysis layer: monthly aggregation, correlations, and the paper's figures/tables.

The figure builders in :mod:`~repro.analysis.figures` are the single source of
truth for "what does Figure N plot": each returns a small dataclass holding
the exact series the paper shows (e.g. monthly average power in kW and monthly
solar+wind share in % for Fig. 2), computed end-to-end from the simulation
substrates, plus the summary statistics (correlations, ranges) that the
benchmarks compare against the paper's qualitative claims.
"""

from .monthly import MonthlySeries, monthly_frame, align_monthly
from .correlation import (
    pearson_correlation,
    spearman_correlation,
    lagged_cross_correlation,
    best_lag,
    is_monotonic_relationship,
)
from .figures import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    fig1_compute_trends,
    fig2_power_vs_green_share,
    fig3_price_vs_green_share,
    fig4_power_vs_temperature,
    fig5_energy_vs_deadlines,
)
from .tables import Table1Result, table1_conferences

__all__ = [
    "MonthlySeries",
    "monthly_frame",
    "align_monthly",
    "pearson_correlation",
    "spearman_correlation",
    "lagged_cross_correlation",
    "best_lag",
    "is_monotonic_relationship",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "fig1_compute_trends",
    "fig2_power_vs_green_share",
    "fig3_price_vs_green_share",
    "fig4_power_vs_temperature",
    "fig5_energy_vs_deadlines",
    "Table1Result",
    "table1_conferences",
]
