"""Reproduction of Table I (the conference catalogue).

Table I of the paper lists the notable conferences considered in the Fig. 5
analysis, grouped by area.  :func:`table1_conferences` renders the catalogue
into the same row structure and adds the derived statistics the surrounding
text uses (how many deadlines land in spring/summer vs. winter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..workloads.conferences import ConferenceCalendar

__all__ = ["Table1Result", "table1_conferences"]


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table I plus deadline-seasonality statistics."""

    rows: Mapping[str, tuple[str, ...]]
    n_conferences: int
    deadlines_by_month_of_year: np.ndarray
    spring_summer_fraction: float
    winter_fraction: float

    def as_markdown(self) -> str:
        """Render the table as markdown (Area | Conferences)."""
        lines = ["| Area/Discipline | Conferences |", "|---|---|"]
        for area, names in self.rows.items():
            lines.append(f"| {area} | {', '.join(names)} |")
        return "\n".join(lines)

    def busiest_deadline_month(self) -> int:
        """1-12 month with the most deadlines in a generic year."""
        return int(np.argmax(self.deadlines_by_month_of_year)) + 1


def table1_conferences(calendar: Optional[ConferenceCalendar] = None) -> Table1Result:
    """Reproduce Table I and the seasonality of its deadlines."""
    catalogue = calendar or ConferenceCalendar()
    rows = {area: tuple(names) for area, names in catalogue.by_area().items()}
    by_month = catalogue.monthly_count_by_month_of_year().astype(float)
    total = float(by_month.sum())
    # Spring/summer = March-August; winter = November-February (the paper's
    # qualitative claim is that deadlines concentrate in spring/summer).
    spring_summer = float(by_month[2:8].sum()) / total if total else 0.0
    winter = float(by_month[[10, 11, 0, 1]].sum()) / total if total else 0.0
    return Table1Result(
        rows=rows,
        n_conferences=len(catalogue),
        deadlines_by_month_of_year=by_month,
        spring_summer_fraction=spring_summer,
        winter_fraction=winter,
    )
