"""End-to-end builders for the paper's figures.

Each ``figN_*`` function reproduces one figure of the paper from the
simulation substrates and returns a result object holding (a) the plotted
series and (b) the summary statistics that capture the figure's qualitative
claim.  The corresponding benchmarks print the series and assert the claims;
``EXPERIMENTS.md`` records the measured statistics next to the paper's.

Figure inventory
----------------
* **Fig. 1** — training compute of notable A.I. systems over time; two growth
  eras (~2-year doubling pre-2012, months-scale doubling after).
* **Fig. 2** — monthly average facility power (kW) vs. the monthly share of
  grid energy from solar+wind; anti-correlated (consumption peaks exactly when
  the grid is dirtiest).
* **Fig. 3** — monthly average LMP ($/MWh) vs. the solar+wind share; prices
  are lowest in the high-renewable spring months.
* **Fig. 4** — monthly average facility power vs. monthly mean outdoor
  temperature (F); near one-to-one monotone relationship.
* **Fig. 5** — monthly energy use vs. the number of conference deadlines per
  month over 2020-2021, with energy ramping up *ahead of* deadline clusters
  and a sharper ramp in early 2021.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..climate.weather import WeatherConfig, WeatherModel
from ..config import SiteConfig
from ..errors import DataError
from ..grid.fuel_mix import FuelMixConfig
from ..grid.iso_ne import IsoNeLikeGrid
from ..grid.pricing import LmpPriceConfig
from ..rng import SeedLike
from ..timeutils import SimulationCalendar
from ..workloads.conferences import ConferenceCalendar
from ..workloads.demand import DeadlineDemandModel
from ..workloads.supercloud import (
    SuperCloudLoadTrace,
    SuperCloudTraceConfig,
    SuperCloudTraceGenerator,
)
from ..workloads.trends import ComputeTrendModel, EraFit
from ..cluster.cooling import CoolingModel
from .correlation import best_lag, pearson_correlation, spearman_correlation
from .monthly import MonthlySeries

__all__ = [
    "SuperCloudScenario",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "fig1_compute_trends",
    "fig2_power_vs_green_share",
    "fig3_price_vs_green_share",
    "fig4_power_vs_temperature",
    "fig5_energy_vs_deadlines",
]


# ---------------------------------------------------------------------------
# Shared scenario construction
# ---------------------------------------------------------------------------

@dataclass
class SuperCloudScenario:
    """The shared simulation context behind Figs. 2-5.

    Bundles the calendar, hourly weather, the facility load trace, and the
    grid series so that each figure builder (and the benchmarks) can reuse a
    single consistent world instead of re-deriving it.
    """

    calendar: SimulationCalendar
    weather_hourly_c: np.ndarray
    load_trace: SuperCloudLoadTrace
    grid: IsoNeLikeGrid
    weather_model: WeatherModel
    demand_model: DeadlineDemandModel

    @classmethod
    def build(
        cls,
        *,
        seed: SeedLike = 0,
        start_year: int = 2020,
        n_months: int = 24,
        conferences: Optional[ConferenceCalendar] = None,
        site: Optional[SiteConfig] = None,
        trace_config: Optional[SuperCloudTraceConfig] = None,
        fuel_config: Optional[FuelMixConfig] = None,
        price_config: Optional[LmpPriceConfig] = None,
    ) -> "SuperCloudScenario":
        """Construct the standard 2020-2021 SuperCloud-like scenario.

        ``site``, ``trace_config``, ``fuel_config`` and ``price_config`` let a
        :class:`~repro.experiments.spec.ScenarioSpec` vary the climate, the
        facility hardware and the grid; the defaults reproduce the paper's
        Holyoke-like world exactly.
        """
        calendar = SimulationCalendar(start_year=start_year, n_months=n_months)
        weather_model = WeatherModel(
            WeatherConfig(site=site) if site is not None else None, seed=seed
        )
        weather_hourly = weather_model.hourly_temperature_c(calendar)
        demand_model = DeadlineDemandModel(conferences=conferences, seed=seed)
        generator = SuperCloudTraceGenerator(
            trace_config, demand_model=demand_model, cooling=CoolingModel(), seed=seed
        )
        load_trace = generator.generate_load_trace(calendar, weather_hourly)
        grid = IsoNeLikeGrid(calendar, fuel_config=fuel_config, price_config=price_config, seed=seed)
        return cls(
            calendar=calendar,
            weather_hourly_c=weather_hourly,
            load_trace=load_trace,
            grid=grid,
            weather_model=weather_model,
            demand_model=demand_model,
        )


# ---------------------------------------------------------------------------
# Fig. 1 — compute trends
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig1Result:
    """Series and fits behind Fig. 1."""

    years: np.ndarray
    compute_pfs_days: np.ndarray
    is_modern: np.ndarray
    pre2012_fit: EraFit
    modern_fit: EraFit
    growth_acceleration: float

    def summary(self) -> dict[str, float]:
        """Headline numbers: doubling times per era and their ratio."""
        return {
            "pre2012_doubling_months": self.pre2012_fit.doubling_time_months,
            "modern_doubling_months": self.modern_fit.doubling_time_months,
            "growth_acceleration": self.growth_acceleration,
            "n_systems": float(self.years.shape[0]),
        }


def fig1_compute_trends(model: Optional[ComputeTrendModel] = None) -> Fig1Result:
    """Reproduce Fig. 1: compute-demand scatter and per-era growth fits."""
    trend = model or ComputeTrendModel()
    scatter = trend.scatter_series()
    fits = trend.fit_all()
    return Fig1Result(
        years=scatter["year"],
        compute_pfs_days=scatter["compute_pfs_days"],
        is_modern=scatter["is_modern"],
        pre2012_fit=fits["pre-2012"],
        modern_fit=fits["modern"],
        growth_acceleration=trend.growth_acceleration(),
    )


# ---------------------------------------------------------------------------
# Fig. 2 — power vs. green fuel mix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig2Result:
    """Series and statistics behind Fig. 2."""

    month_labels: tuple[str, ...]
    monthly_power_kw: np.ndarray
    monthly_renewable_share_pct: np.ndarray
    correlation: float
    power_peak_month: str
    renewable_peak_month: str

    def series(self) -> list[MonthlySeries]:
        """The two plotted series as labelled monthly series."""
        return [
            MonthlySeries("avg_power_kw", self.monthly_power_kw, self.month_labels, unit="kW"),
            MonthlySeries(
                "solar_wind_share_pct",
                self.monthly_renewable_share_pct,
                self.month_labels,
                unit="%",
            ),
        ]

    def mismatch_opportunity(self) -> float:
        """How much greener the greenest quartile of months is than the months
        where the facility actually consumed the most (percentage points).

        This is the "opportunity" Fig. 2 points at: positive values mean the
        facility's heaviest months are dirtier than the grid's best months.
        """
        order_by_power = np.argsort(self.monthly_power_kw)[::-1]
        heavy_months = order_by_power[: max(1, len(order_by_power) // 4)]
        greenest = np.sort(self.monthly_renewable_share_pct)[::-1][: max(1, len(order_by_power) // 4)]
        return float(np.mean(greenest) - np.mean(self.monthly_renewable_share_pct[heavy_months]))


def fig2_power_vs_green_share(
    scenario: Optional[SuperCloudScenario] = None, *, seed: SeedLike = 0
) -> Fig2Result:
    """Reproduce Fig. 2: monthly facility power vs. monthly solar+wind share."""
    scenario = scenario or SuperCloudScenario.build(seed=seed)
    power_kw = scenario.load_trace.monthly_power_kw
    renewable_pct = scenario.grid.monthly.renewable_share_pct
    labels = tuple(scenario.calendar.labels())
    correlation = pearson_correlation(power_kw, renewable_pct)
    return Fig2Result(
        month_labels=labels,
        monthly_power_kw=power_kw,
        monthly_renewable_share_pct=renewable_pct,
        correlation=correlation,
        power_peak_month=labels[int(np.argmax(power_kw))],
        renewable_peak_month=labels[int(np.argmax(renewable_pct))],
    )


# ---------------------------------------------------------------------------
# Fig. 3 — prices vs. green fuel mix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3Result:
    """Series and statistics behind Fig. 3."""

    month_labels: tuple[str, ...]
    monthly_price_per_mwh: np.ndarray
    monthly_renewable_share_pct: np.ndarray
    correlation: float
    cheapest_month: str
    price_range: tuple[float, float]

    def spring_discount(self) -> float:
        """Mean price in the top-renewable third of months minus the rest ($/MWh).

        Negative values reproduce the paper's observation that the greenest
        (spring) months are also the cheapest.
        """
        order = np.argsort(self.monthly_renewable_share_pct)[::-1]
        top = order[: max(1, len(order) // 3)]
        rest = order[max(1, len(order) // 3):]
        return float(np.mean(self.monthly_price_per_mwh[top]) - np.mean(self.monthly_price_per_mwh[rest]))


def fig3_price_vs_green_share(
    scenario: Optional[SuperCloudScenario] = None, *, seed: SeedLike = 0
) -> Fig3Result:
    """Reproduce Fig. 3: monthly LMP vs. monthly solar+wind share."""
    scenario = scenario or SuperCloudScenario.build(seed=seed)
    monthly = scenario.grid.monthly
    labels = tuple(scenario.calendar.labels())
    correlation = pearson_correlation(monthly.price_per_mwh, monthly.renewable_share_pct)
    return Fig3Result(
        month_labels=labels,
        monthly_price_per_mwh=monthly.price_per_mwh,
        monthly_renewable_share_pct=monthly.renewable_share_pct,
        correlation=correlation,
        cheapest_month=labels[int(np.argmin(monthly.price_per_mwh))],
        price_range=(float(np.min(monthly.price_per_mwh)), float(np.max(monthly.price_per_mwh))),
    )


# ---------------------------------------------------------------------------
# Fig. 4 — power vs. temperature
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Result:
    """Series and statistics behind Fig. 4."""

    month_labels: tuple[str, ...]
    monthly_power_kw: np.ndarray
    monthly_temperature_f: np.ndarray
    pearson: float
    spearman: float

    def is_near_one_to_one(self, threshold: float = 0.85) -> bool:
        """Whether the monthly relationship is (nearly) monotone, as the paper claims."""
        return self.spearman >= threshold


def fig4_power_vs_temperature(
    scenario: Optional[SuperCloudScenario] = None, *, seed: SeedLike = 0
) -> Fig4Result:
    """Reproduce Fig. 4: monthly facility power vs. monthly mean temperature (F)."""
    scenario = scenario or SuperCloudScenario.build(seed=seed)
    power_kw = scenario.load_trace.monthly_power_kw
    temperature_f = scenario.weather_model.monthly_mean_temperature_f(
        scenario.calendar, scenario.weather_hourly_c
    )
    labels = tuple(scenario.calendar.labels())
    return Fig4Result(
        month_labels=labels,
        monthly_power_kw=power_kw,
        monthly_temperature_f=temperature_f,
        pearson=pearson_correlation(power_kw, temperature_f),
        spearman=spearman_correlation(power_kw, temperature_f),
    )


# ---------------------------------------------------------------------------
# Fig. 5 — energy vs. conference deadlines
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig5Result:
    """Series and statistics behind Fig. 5.

    Besides the two plotted series (monthly energy, monthly deadline counts),
    the result carries a *counterfactual* energy series generated with a
    rolling-submission calendar (no deadlines, everything else identical).
    The difference between the two — the "deadline uplift" — isolates the
    anticipation effect from the temperature/seasonal confounders the paper
    itself flags, which is how the reproduction verifies the figure's claim
    without pretending monthly correlations alone are conclusive.
    """

    month_labels: tuple[str, ...]
    monthly_energy_mwh: np.ndarray
    deadlines_per_month: np.ndarray
    counterfactual_energy_mwh: np.ndarray
    lead_lag_months: int
    lead_lag_correlation: float
    same_month_correlation: float
    early_2021_vs_2020_ratio: float

    @property
    def deadline_uplift_mwh(self) -> np.ndarray:
        """Extra monthly energy attributable to deadline anticipation."""
        return self.monthly_energy_mwh - self.counterfactual_energy_mwh

    @property
    def uplift_vs_upcoming_deadlines_correlation(self) -> float:
        """Correlation of the deadline uplift with deadlines in the current + next month.

        Anticipation means energy rises *before* deadline-heavy months, so the
        uplift should track the number of deadlines still ahead in the near
        term rather than the current month's count alone.
        """
        upcoming = self.deadlines_per_month.astype(float).copy()
        upcoming[:-1] += self.deadlines_per_month[1:]
        return pearson_correlation(self.deadline_uplift_mwh, upcoming)

    def anticipation_detected(self) -> bool:
        """Whether the deadline-anticipation pattern of Section III is present:
        deadlines add energy (positive uplift) and the uplift tracks upcoming
        deadlines."""
        return (
            float(np.mean(self.deadline_uplift_mwh)) > 0
            and self.uplift_vs_upcoming_deadlines_correlation > 0
        )


def fig5_energy_vs_deadlines(
    scenario: Optional[SuperCloudScenario] = None, *, seed: SeedLike = 0
) -> Fig5Result:
    """Reproduce Fig. 5: monthly energy use vs. monthly conference-deadline counts."""
    scenario = scenario or SuperCloudScenario.build(seed=seed)
    calendar = scenario.calendar
    if calendar.n_months < 16:
        raise DataError("Fig. 5 requires at least 16 months (two partial years) of horizon")
    energy_mwh = scenario.load_trace.monthly_energy_mwh
    deadlines = scenario.demand_model.monthly_deadline_counts(calendar).astype(float)
    labels = tuple(calendar.labels())

    # Counterfactual world: identical facility, weather and noise seed, but a
    # rolling-submission calendar (no deadline anticipation at all).
    rolling = scenario.demand_model.conferences.restructured("rolling")
    counterfactual_demand = scenario.demand_model.with_calendar(rolling)
    counterfactual_generator = SuperCloudTraceGenerator(
        demand_model=counterfactual_demand, cooling=CoolingModel(), seed=0
    )
    counterfactual_trace = counterfactual_generator.generate_load_trace(
        calendar, scenario.weather_hourly_c
    )

    lag, lag_corr = best_lag(energy_mwh, deadlines, max_lag=3)
    same_month = pearson_correlation(energy_mwh, deadlines)

    # Early-year (Jan-Apr) energy growth from 2020 to 2021 — the paper's
    # "sharper pickup in energy usage starting around Jan/Feb 2021".
    years = calendar.year_array()
    months = calendar.month_of_year_array()
    first_year = int(years.min())
    early_mask_2020 = (years == first_year) & (months <= 4)
    early_mask_2021 = (years == first_year + 1) & (months <= 4)
    if not np.any(early_mask_2020) or not np.any(early_mask_2021):
        ratio = float("nan")
    else:
        ratio = float(np.mean(energy_mwh[early_mask_2021]) / np.mean(energy_mwh[early_mask_2020]))

    return Fig5Result(
        month_labels=labels,
        monthly_energy_mwh=energy_mwh,
        deadlines_per_month=deadlines,
        counterfactual_energy_mwh=counterfactual_trace.monthly_energy_mwh,
        lead_lag_months=int(lag),
        lead_lag_correlation=float(lag_corr),
        same_month_correlation=float(same_month),
        early_2021_vs_2020_ratio=ratio,
    )
