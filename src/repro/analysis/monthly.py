"""Monthly aggregation containers.

All of the paper's empirical figures are monthly series over the 2020-2021
window.  :class:`MonthlySeries` is a small labelled container for one such
series, and :func:`monthly_frame` / :func:`align_monthly` combine several of
them into a column-aligned table ready for correlation analysis or printing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import DataError
from ..timeutils import SimulationCalendar

__all__ = ["MonthlySeries", "monthly_frame", "align_monthly"]


@dataclass(frozen=True)
class MonthlySeries:
    """One monthly series with its labels and unit.

    Attributes
    ----------
    name:
        Series name (e.g. ``"avg_power_kw"``).
    values:
        One value per month.
    month_labels:
        Human-readable month labels aligned with ``values``.
    unit:
        Unit string for display.
    """

    name: str
    values: np.ndarray
    month_labels: tuple[str, ...]
    unit: str = ""

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1:
            raise DataError("values must be 1-D")
        if len(self.month_labels) != values.shape[0]:
            raise DataError("month_labels must align with values")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.values.shape[0]

    @classmethod
    def from_hourly(
        cls,
        name: str,
        hourly_values: np.ndarray,
        calendar: SimulationCalendar,
        *,
        how: str = "mean",
        unit: str = "",
    ) -> "MonthlySeries":
        """Aggregate an hourly series into a monthly one (``how`` is 'mean' or 'sum')."""
        if how == "mean":
            values = calendar.monthly_mean(hourly_values)
        elif how == "sum":
            values = calendar.monthly_sum(hourly_values)
        else:
            raise DataError(f"how must be 'mean' or 'sum', got {how!r}")
        return cls(name=name, values=values, month_labels=tuple(calendar.labels()), unit=unit)

    def describe(self) -> dict[str, float]:
        """Min/max/mean/std summary."""
        return {
            "min": float(self.values.min()),
            "max": float(self.values.max()),
            "mean": float(self.values.mean()),
            "std": float(self.values.std()),
        }

    def argmax_label(self) -> str:
        """Label of the month with the largest value."""
        return self.month_labels[int(np.argmax(self.values))]

    def argmin_label(self) -> str:
        """Label of the month with the smallest value."""
        return self.month_labels[int(np.argmin(self.values))]


def align_monthly(series: Sequence[MonthlySeries]) -> list[MonthlySeries]:
    """Validate that several monthly series share the same months, returning them.

    Raises :class:`DataError` when lengths or labels differ, which catches the
    common mistake of mixing 12- and 24-month horizons.
    """
    if not series:
        raise DataError("align_monthly requires at least one series")
    reference = series[0].month_labels
    for s in series[1:]:
        if s.month_labels != reference:
            raise DataError(
                f"monthly series {s.name!r} has different months than {series[0].name!r}"
            )
    return list(series)


def monthly_frame(series: Sequence[MonthlySeries]) -> Mapping[str, np.ndarray]:
    """Combine aligned monthly series into a dict-of-columns 'frame'.

    The first column is ``"month"`` (labels); remaining columns are the series
    values keyed by their names.
    """
    aligned = align_monthly(series)
    frame: dict[str, np.ndarray] = {"month": np.asarray(aligned[0].month_labels, dtype=object)}
    for s in aligned:
        if s.name in frame:
            raise DataError(f"duplicate series name {s.name!r}")
        frame[s.name] = s.values
    return frame
