"""Units and conversions used throughout the toolkit.

The paper (and the energy-efficiency literature it draws on) mixes several
unit systems: instantaneous power in watts and kilowatts, energy in joules
and kilowatt-hours, carbon in grams/kilograms/metric tons of CO2-equivalent,
electricity prices in $/MWh, and compute in petaflop/s-days (Fig. 1).  This
module centralizes those conversions so that the rest of the code can be
written against a single canonical set:

* power      — watts (W)
* energy     — joules (J)
* carbon     — grams CO2e (g)
* money      — US dollars ($)
* compute    — floating point operations (FLOPs)
* time       — seconds (s)

Helper functions convert to and from the human-facing units used in the
paper's figures (kW, kWh, MWh, $/MWh, gCO2/kWh, petaflop/s-days).

All functions accept scalars or NumPy arrays and are fully vectorized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from .errors import UnitError

__all__ = [
    "ArrayLike",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "HOURS_PER_YEAR",
    "JOULES_PER_KWH",
    "JOULES_PER_MWH",
    "WATTS_PER_KILOWATT",
    "WATTS_PER_MEGAWATT",
    "GRAMS_PER_KG",
    "GRAMS_PER_METRIC_TON",
    "FLOPS_PER_PFLOP_S_DAY",
    "watts_to_kilowatts",
    "kilowatts_to_watts",
    "megawatts_to_watts",
    "watts_to_megawatts",
    "joules_to_kwh",
    "kwh_to_joules",
    "joules_to_mwh",
    "mwh_to_joules",
    "kwh_to_mwh",
    "mwh_to_kwh",
    "energy_from_power",
    "average_power",
    "integrate_power",
    "carbon_from_energy",
    "grams_to_kg",
    "grams_to_metric_tons",
    "kg_to_grams",
    "dollars_per_mwh_to_per_joule",
    "cost_from_energy",
    "flops_to_pflops_days",
    "pflops_days_to_flops",
    "celsius_to_fahrenheit",
    "fahrenheit_to_celsius",
    "EnergyBreakdown",
    "format_energy",
    "format_power",
    "format_carbon",
]

ArrayLike = Union[float, int, np.ndarray]

# ---------------------------------------------------------------------------
# Canonical constants
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY
HOURS_PER_YEAR = 8760.0

JOULES_PER_KWH = 3.6e6
JOULES_PER_MWH = 3.6e9

WATTS_PER_KILOWATT = 1e3
WATTS_PER_MEGAWATT = 1e6

GRAMS_PER_KG = 1e3
GRAMS_PER_METRIC_TON = 1e6

#: One petaflop/s-day expressed in floating point operations, the unit used by
#: the OpenAI "AI and Compute" analysis reproduced in Fig. 1.
FLOPS_PER_PFLOP_S_DAY = 1e15 * SECONDS_PER_DAY


def _check_nonnegative(value: ArrayLike, name: str) -> None:
    """Raise :class:`UnitError` if ``value`` contains a negative entry."""
    arr = np.asarray(value, dtype=float)
    if np.any(arr < 0):
        raise UnitError(f"{name} must be non-negative, got {value!r}")


# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------

def watts_to_kilowatts(watts: ArrayLike) -> ArrayLike:
    """Convert watts to kilowatts."""
    return np.asarray(watts, dtype=float) / WATTS_PER_KILOWATT


def kilowatts_to_watts(kilowatts: ArrayLike) -> ArrayLike:
    """Convert kilowatts to watts."""
    return np.asarray(kilowatts, dtype=float) * WATTS_PER_KILOWATT


def megawatts_to_watts(megawatts: ArrayLike) -> ArrayLike:
    """Convert megawatts to watts."""
    return np.asarray(megawatts, dtype=float) * WATTS_PER_MEGAWATT


def watts_to_megawatts(watts: ArrayLike) -> ArrayLike:
    """Convert watts to megawatts."""
    return np.asarray(watts, dtype=float) / WATTS_PER_MEGAWATT


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------

def joules_to_kwh(joules: ArrayLike) -> ArrayLike:
    """Convert joules to kilowatt-hours."""
    return np.asarray(joules, dtype=float) / JOULES_PER_KWH


def kwh_to_joules(kwh: ArrayLike) -> ArrayLike:
    """Convert kilowatt-hours to joules."""
    return np.asarray(kwh, dtype=float) * JOULES_PER_KWH


def joules_to_mwh(joules: ArrayLike) -> ArrayLike:
    """Convert joules to megawatt-hours."""
    return np.asarray(joules, dtype=float) / JOULES_PER_MWH


def mwh_to_joules(mwh: ArrayLike) -> ArrayLike:
    """Convert megawatt-hours to joules."""
    return np.asarray(mwh, dtype=float) * JOULES_PER_MWH


def kwh_to_mwh(kwh: ArrayLike) -> ArrayLike:
    """Convert kilowatt-hours to megawatt-hours."""
    return np.asarray(kwh, dtype=float) / 1e3


def mwh_to_kwh(mwh: ArrayLike) -> ArrayLike:
    """Convert megawatt-hours to kilowatt-hours."""
    return np.asarray(mwh, dtype=float) * 1e3


def energy_from_power(power_w: ArrayLike, duration_s: ArrayLike) -> ArrayLike:
    """Energy in joules for constant power ``power_w`` over ``duration_s`` seconds."""
    _check_nonnegative(duration_s, "duration_s")
    return np.asarray(power_w, dtype=float) * np.asarray(duration_s, dtype=float)


def average_power(energy_j: ArrayLike, duration_s: ArrayLike) -> ArrayLike:
    """Average power in watts given energy in joules over ``duration_s`` seconds."""
    duration = np.asarray(duration_s, dtype=float)
    if np.any(duration <= 0):
        raise UnitError(f"duration_s must be positive, got {duration_s!r}")
    return np.asarray(energy_j, dtype=float) / duration


def integrate_power(power_w: np.ndarray, timestamps_s: np.ndarray) -> float:
    """Trapezoidal integration of a sampled power trace into energy (joules).

    Parameters
    ----------
    power_w:
        Sampled instantaneous power in watts.
    timestamps_s:
        Monotonically non-decreasing sample times in seconds. Must be the
        same length as ``power_w`` and contain at least two samples.
    """
    power = np.asarray(power_w, dtype=float)
    times = np.asarray(timestamps_s, dtype=float)
    if power.shape != times.shape:
        raise UnitError(
            f"power and timestamps must have identical shapes, got {power.shape} vs {times.shape}"
        )
    if power.ndim != 1 or power.size < 2:
        raise UnitError("integrate_power requires a 1-D trace with at least two samples")
    if np.any(np.diff(times) < 0):
        raise UnitError("timestamps must be non-decreasing")
    _check_nonnegative(power, "power_w")
    return float(np.trapezoid(power, times))


# ---------------------------------------------------------------------------
# Carbon
# ---------------------------------------------------------------------------

def carbon_from_energy(energy_j: ArrayLike, intensity_g_per_kwh: ArrayLike) -> ArrayLike:
    """Carbon emissions in grams CO2e for the given energy and carbon intensity.

    ``intensity_g_per_kwh`` is the grid carbon intensity in gCO2e per kWh,
    the standard unit reported by grid operators and by tools such as
    CodeCarbon.
    """
    _check_nonnegative(intensity_g_per_kwh, "intensity_g_per_kwh")
    return joules_to_kwh(energy_j) * np.asarray(intensity_g_per_kwh, dtype=float)


def grams_to_kg(grams: ArrayLike) -> ArrayLike:
    """Convert grams to kilograms."""
    return np.asarray(grams, dtype=float) / GRAMS_PER_KG


def grams_to_metric_tons(grams: ArrayLike) -> ArrayLike:
    """Convert grams to metric tons."""
    return np.asarray(grams, dtype=float) / GRAMS_PER_METRIC_TON


def kg_to_grams(kg: ArrayLike) -> ArrayLike:
    """Convert kilograms to grams."""
    return np.asarray(kg, dtype=float) * GRAMS_PER_KG


# ---------------------------------------------------------------------------
# Money
# ---------------------------------------------------------------------------

def dollars_per_mwh_to_per_joule(price_per_mwh: ArrayLike) -> ArrayLike:
    """Convert a $/MWh price (the LMP unit in Fig. 3) to $/J."""
    return np.asarray(price_per_mwh, dtype=float) / JOULES_PER_MWH


def cost_from_energy(energy_j: ArrayLike, price_per_mwh: ArrayLike) -> ArrayLike:
    """Dollar cost of ``energy_j`` joules at ``price_per_mwh`` $/MWh."""
    return joules_to_mwh(energy_j) * np.asarray(price_per_mwh, dtype=float)


# ---------------------------------------------------------------------------
# Compute (Fig. 1)
# ---------------------------------------------------------------------------

def flops_to_pflops_days(flops: ArrayLike) -> ArrayLike:
    """Convert raw FLOPs to petaflop/s-days (the y-axis of Fig. 1)."""
    _check_nonnegative(flops, "flops")
    return np.asarray(flops, dtype=float) / FLOPS_PER_PFLOP_S_DAY


def pflops_days_to_flops(pflops_days: ArrayLike) -> ArrayLike:
    """Convert petaflop/s-days to raw FLOPs."""
    _check_nonnegative(pflops_days, "pflops_days")
    return np.asarray(pflops_days, dtype=float) * FLOPS_PER_PFLOP_S_DAY


# ---------------------------------------------------------------------------
# Temperature (Fig. 4 uses Fahrenheit; the climate model works in Celsius)
# ---------------------------------------------------------------------------

def celsius_to_fahrenheit(celsius: ArrayLike) -> ArrayLike:
    """Convert degrees Celsius to Fahrenheit."""
    return np.asarray(celsius, dtype=float) * 9.0 / 5.0 + 32.0


def fahrenheit_to_celsius(fahrenheit: ArrayLike) -> ArrayLike:
    """Convert degrees Fahrenheit to Celsius."""
    return (np.asarray(fahrenheit, dtype=float) - 32.0) * 5.0 / 9.0


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EnergyBreakdown:
    """Immutable record splitting facility energy into IT and overhead components.

    Attributes
    ----------
    it_energy_j:
        Energy consumed by IT equipment (GPUs, CPUs, memory, network).
    overhead_energy_j:
        Energy consumed by cooling, power distribution and other facility
        overheads.
    """

    it_energy_j: float
    overhead_energy_j: float

    def __post_init__(self) -> None:
        if self.it_energy_j < 0 or self.overhead_energy_j < 0:
            raise UnitError("energy components must be non-negative")

    @property
    def total_energy_j(self) -> float:
        """Total facility energy in joules."""
        return self.it_energy_j + self.overhead_energy_j

    @property
    def pue(self) -> float:
        """Power usage effectiveness = total facility energy / IT energy.

        Returns ``nan`` when no IT energy was consumed (PUE undefined).
        """
        if self.it_energy_j == 0:
            return math.nan
        return self.total_energy_j / self.it_energy_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            it_energy_j=self.it_energy_j + other.it_energy_j,
            overhead_energy_j=self.overhead_energy_j + other.overhead_energy_j,
        )


def format_energy(energy_j: float) -> str:
    """Render an energy value with an appropriate human unit (J, kWh or MWh)."""
    if energy_j < 0:
        raise UnitError(f"energy must be non-negative, got {energy_j!r}")
    if energy_j < JOULES_PER_KWH:
        return f"{energy_j:.1f} J"
    kwh = joules_to_kwh(energy_j)
    if kwh < 1e3:
        return f"{float(kwh):.2f} kWh"
    return f"{float(kwh_to_mwh(kwh)):.2f} MWh"


def format_power(power_w: float) -> str:
    """Render a power value with an appropriate human unit (W, kW or MW)."""
    if power_w < 0:
        raise UnitError(f"power must be non-negative, got {power_w!r}")
    if power_w < WATTS_PER_KILOWATT:
        return f"{power_w:.1f} W"
    if power_w < WATTS_PER_MEGAWATT:
        return f"{float(watts_to_kilowatts(power_w)):.2f} kW"
    return f"{float(watts_to_megawatts(power_w)):.2f} MW"


def format_carbon(grams: float) -> str:
    """Render a carbon mass with an appropriate human unit (g, kg or t CO2e)."""
    if grams < 0:
        raise UnitError(f"carbon mass must be non-negative, got {grams!r}")
    if grams < GRAMS_PER_KG:
        return f"{grams:.1f} gCO2e"
    if grams < GRAMS_PER_METRIC_TON:
        return f"{float(grams_to_kg(grams)):.2f} kgCO2e"
    return f"{float(grams_to_metric_tons(grams)):.2f} tCO2e"
