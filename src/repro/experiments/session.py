"""The composable experiment session.

An :class:`ExperimentSession` binds a :class:`~repro.experiments.spec.
ScenarioSpec` to the expensive simulation substrates built from it (weather,
facility load trace, grid series — the :class:`~repro.analysis.figures.
SuperCloudScenario` bundle) and runs registered experiments against them.

Substrates are built **once per spec** and cached on the session, keyed by the
(hashable) spec itself, so running every paper analysis back to back pays the
construction cost a single time — previously each CLI command re-ran
``SuperCloudScenario.build`` from scratch.  Job-level traces are cached the
same way.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..analysis.figures import SuperCloudScenario
from ..cluster.cooling import CoolingModel
from ..cluster.resources import Cluster
from ..cluster.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from ..core.levers import OperatingPoint, make_scheduler
from ..core.objective import ActivityConstraint, ActivityKind, EnergyObjective, ObjectiveKind
from ..core.optimizer import DatacenterOptimizer, OptimizationOutcome
from ..grid.iso_ne import IsoNeLikeGrid
from ..parallel.pool import ParallelConfig
from ..scheduler.job import Job
from ..timeutils import SimulationCalendar
from ..workloads.demand import DeadlineDemandModel
from ..workloads.supercloud import SuperCloudTraceGenerator
from .registry import get_experiment
from .result import ExperimentResult
from .spec import ScenarioSpec, get_scenario

__all__ = ["ExperimentSession"]


class ExperimentSession:
    """Builds a scenario's substrates once and runs experiments against them.

    Parameters
    ----------
    spec:
        The scenario to run in — a :class:`ScenarioSpec`, the name of a
        registered scenario, or ``None`` for the default scenario.
    parallel:
        Execution configuration for the sweep-shaped experiments (the
        power-cap sweep, the stress battery, the Eq. 1 grid search); serial
        by default.  The CLI plumbs ``--workers`` / ``GREENHPC_WORKERS``
        into this.
    **overrides:
        Spec fields to replace on top of ``spec`` (e.g. ``seed=7``,
        ``n_months=12``).

    Examples
    --------
    >>> session = ExperimentSession("single-year", seed=3)
    >>> result = session.run("figures")
    >>> session.scenario() is session.scenario()   # built exactly once
    True
    """

    def __init__(
        self,
        spec: Union[ScenarioSpec, str, None] = None,
        *,
        parallel: Optional[ParallelConfig] = None,
        **overrides: Any,
    ) -> None:
        if spec is None:
            spec = get_scenario("default")
        elif isinstance(spec, str):
            spec = get_scenario(spec)
        if overrides:
            spec = spec.replace(**overrides)
        self._spec: ScenarioSpec = spec
        #: Execution configuration used by sweep-shaped experiments.
        self.parallel: ParallelConfig = parallel or ParallelConfig()
        self._scenarios: dict[ScenarioSpec, SuperCloudScenario] = {}
        self._job_traces: dict[tuple[ScenarioSpec, int, float], list[Job]] = {}
        #: Number of scenario substrate builds performed (cache misses).
        self.scenario_builds: int = 0
        # Build-once guard: concurrent daemon sessions share one session per
        # distinct spec, so cache fills must be serialized (reentrant — a
        # build may consult the cache again through nested calls).
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Pickling (process-pool workers): locks don't cross process
    # boundaries, so the guard is dropped and recreated on unpickle.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_cache_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Spec and substrates
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ScenarioSpec:
        """The session's scenario specification."""
        return self._spec

    @property
    def calendar(self) -> SimulationCalendar:
        """The simulation calendar of the session's spec."""
        return self.scenario().calendar

    def scenario(self, spec: Optional[ScenarioSpec] = None) -> SuperCloudScenario:
        """The built substrate bundle for ``spec`` (default: the session spec).

        Identical specs return the identical cached object, which is what
        makes multi-analysis runs cheap: weather, load trace and grid are
        derived once and shared by every experiment.
        """
        spec = spec or self._spec
        scenario = self._scenarios.get(spec)
        if scenario is None:
            with self._cache_lock:
                scenario = self._scenarios.get(spec)
                if scenario is None:  # double-checked: lost the race = reuse
                    scenario = SuperCloudScenario.build(
                        seed=spec.seed,
                        start_year=spec.start_year,
                        n_months=spec.n_months,
                        site=spec.site,
                        trace_config=spec.trace_config(),
                        fuel_config=spec.grid.fuel,
                        price_config=spec.grid.price,
                    )
                    self._scenarios[spec] = scenario
                    self.scenario_builds += 1
        return scenario

    @property
    def grid(self) -> IsoNeLikeGrid:
        """The grid model behind the session's scenario."""
        return self.scenario().grid

    def hourly_facility_load_kwh(self) -> np.ndarray:
        """The facility's hourly energy profile in kWh (1-hour steps)."""
        return self.scenario().load_trace.facility_power_w / 1e3

    def job_trace(
        self,
        *,
        n_jobs: int = 300,
        horizon_h: float = 7 * 24.0,
        spec: Optional[ScenarioSpec] = None,
    ) -> list[Job]:
        """A SuperCloud-like job-level trace (cached per ``(spec, n_jobs, horizon)``).

        ``spec`` defaults to the session spec; the fleet co-simulator passes
        a member spec here so its shared workload is generated (and cached)
        exactly as a single-site session over that member would.
        """
        spec = spec or self._spec
        key = (spec, int(n_jobs), float(horizon_h))
        trace = self._job_traces.get(key)
        if trace is None:
            with self._cache_lock:
                trace = self._job_traces.get(key)
                if trace is None:
                    generator = SuperCloudTraceGenerator(
                        spec.trace_config(),
                        demand_model=DeadlineDemandModel(seed=spec.seed),
                        seed=spec.seed,
                    )
                    trace = generator.generate_jobs(n_jobs=n_jobs, horizon_h=horizon_h)
                    self._job_traces[key] = trace
        return trace

    # ------------------------------------------------------------------
    # Single-policy simulation on a job trace
    # ------------------------------------------------------------------
    def simulate_policy(
        self,
        policy: str,
        *,
        n_jobs: int = 300,
        horizon_h: float = 7 * 24.0,
        power_cap_fraction: Optional[float] = None,
        facility_power_budget_w: Optional[float] = None,
    ) -> SimulationResult:
        """Run one scheduling policy end-to-end over this session's substrates.

        ``policy`` is a registered policy name or a pipeline spec string in
        the :mod:`~repro.scheduler.compose` grammar (e.g.
        ``"backfill+carbon(cap=0.7)+budget"``), which is what lets campaign
        grids sweep composed pipelines directly.  The cached job trace,
        weather, cooling and grid substrates are shared with every other
        experiment of the session.
        """
        scenario = self.scenario()
        spec = self._spec
        simulator = ClusterSimulator(
            Cluster(spec.facility, gpu_model=spec.workload.gpu_model),
            make_scheduler(policy, power_cap_fraction),
            SimulationConfig(
                horizon_h=horizon_h, facility_power_budget_w=facility_power_budget_w
            ),
            weather_hourly_c=scenario.weather_hourly_c,
            cooling=CoolingModel(),
            grid=scenario.grid,
        )
        trace = self.job_trace(n_jobs=n_jobs, horizon_h=horizon_h)
        return simulator.run([job.clone_pending() for job in trace])

    # ------------------------------------------------------------------
    # Eq. 1 — operations optimization on a job trace
    # ------------------------------------------------------------------
    def optimize_operations(
        self,
        jobs: Optional[Sequence[Job]] = None,
        *,
        n_jobs: int = 300,
        horizon_h: float = 7 * 24.0,
        activity_floor_fraction: float = 0.9,
        points: Optional[Sequence[OperatingPoint]] = None,
        objective_kind: ObjectiveKind = ObjectiveKind.FACILITY_ENERGY_KWH,
        parallel: Optional[ParallelConfig] = None,
    ) -> OptimizationOutcome:
        """Run the Eq. 1 search on a job trace over this session's substrates.

        ``activity_floor_fraction`` sets α as a fraction of the baseline
        (uncapped backfill) delivered GPU-hours, which is how an operator
        would phrase "no more than a 10% hit to throughput".  The grid search
        itself runs through the parallel mapping layer; ``parallel`` defaults
        to the session's own configuration.
        """
        spec = self._spec
        trace = list(jobs) if jobs is not None else self.job_trace(n_jobs=n_jobs, horizon_h=horizon_h)
        scenario = self.scenario()
        simulation_config = SimulationConfig(horizon_h=horizon_h, tick_h=1.0)

        def make_optimizer(alpha: float, baseline_point: Optional[OperatingPoint]) -> DatacenterOptimizer:
            return DatacenterOptimizer(
                spec.facility,
                EnergyObjective(kind=objective_kind),
                ActivityConstraint(kind=ActivityKind.DELIVERED_GPU_HOURS, alpha=alpha),
                simulation_config=simulation_config,
                weather_hourly_c=scenario.weather_hourly_c,
                cooling=CoolingModel(),
                grid=scenario.grid,
                gpu_model=spec.workload.gpu_model,
                baseline_point=baseline_point,
            )

        # Baseline run to set alpha.
        baseline_point = OperatingPoint(policy_name="backfill")
        baseline_result = make_optimizer(0.0, None).evaluate_point(baseline_point, trace)
        alpha = activity_floor_fraction * baseline_result.result.delivered_gpu_hours
        return make_optimizer(alpha, baseline_point).optimize(
            trace, points=points, parallel=parallel or self.parallel
        )

    # ------------------------------------------------------------------
    # Running experiments
    # ------------------------------------------------------------------
    def run(self, name: str, **params: Any) -> ExperimentResult:
        """Run the registered experiment ``name`` with ``params`` overrides."""
        return get_experiment(name).run(self, **params)

    def run_many(
        self,
        names: Iterable[str],
        params_by_name: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> dict[str, ExperimentResult]:
        """Run several experiments back to back over the shared substrates."""
        params_by_name = params_by_name or {}
        return {name: self.run(name, **dict(params_by_name.get(name, {}))) for name in names}
