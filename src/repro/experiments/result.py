"""The uniform result object every registered experiment returns.

An :class:`ExperimentResult` is deliberately plain: tabular ``rows`` (one
flat dictionary per record), headline ``scalars``, the ``spec`` the run was
built from, the resolved ``params`` the experiment ran with, and optional
human-oriented ``notes`` lines.  ``to_dict()``/``to_json()`` produce strict
JSON (numpy values converted, non-finite floats mapped to ``None``), which is
what the CLI's ``--json`` flag emits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..config import config_to_jsonable
from ..errors import DataError
from ..obs.profile import RunProfile
from .spec import ScenarioSpec

__all__ = ["ExperimentResult"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run on one scenario.

    Attributes
    ----------
    name:
        Registered experiment name (``"figures"``, ``"stress"``, ...).
    spec:
        The scenario the experiment ran against.
    rows:
        Tabular records (one flat mapping per row).
    scalars:
        Headline statistics keyed by machine-readable names.
    params:
        The experiment parameters the run resolved to (defaults + overrides).
    notes:
        Optional human-oriented summary lines for text rendering.
    profile:
        The run's :class:`~repro.obs.profile.RunProfile`, attached by the
        registry only when tracing is enabled; ``None`` otherwise.  Never
        part of cached campaign payloads — wall-clock is run telemetry, not
        a result, and cached results must stay byte-identical across hosts.
    """

    name: str
    spec: ScenarioSpec
    rows: tuple[Mapping[str, Any], ...] = ()
    scalars: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    notes: tuple[str, ...] = ()
    profile: Optional[RunProfile] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(dict(row) for row in self.rows))
        object.__setattr__(self, "notes", tuple(str(line) for line in self.notes))

    def scalar(self, key: str) -> Any:
        """One headline statistic by name (raises :class:`DataError` if absent)."""
        try:
            return self.scalars[key]
        except KeyError:
            raise DataError(
                f"experiment {self.name!r} has no scalar {key!r}; "
                f"available: {sorted(self.scalars)}"
            ) from None

    def column(self, key: str) -> list[Any]:
        """One column of ``rows`` as a list (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready dictionary form of the whole result.

        ``profile`` appears only when one was attached (a traced run), so
        untraced output — and everything hashed or cached downstream — is
        byte-identical to pre-observability builds.
        """
        payload = {
            "experiment": self.name,
            "spec": self.spec.to_dict(),
            "params": config_to_jsonable(self.params),
            "rows": config_to_jsonable(self.rows),
            "scalars": config_to_jsonable(self.scalars),
            "notes": list(self.notes),
        }
        if self.profile is not None:
            payload["profile"] = config_to_jsonable(self.profile.to_dict())
        return payload

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize :meth:`to_dict` as strict JSON text."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)
