"""The campaign reporting battery: markdown + embedded-SVG HTML, stdlib only.

Renders the compare-stage payload of a :class:`~repro.experiments.dag.
CampaignDAG` — per-metric comparison grids across every swept dimension
(policies, routers, sites, fleets, seeds, ...) — into two artifacts:

* :func:`render_markdown` — one section per metric with a comparison table
  per dimension, pasteable into issues and PRs;
* :func:`render_html` — the same tables next to hand-built grouped-bar SVG
  charts (:func:`svg_bar_chart`), a self-contained single file with no
  external assets, scripts or plotting dependencies.

Both renderings are deterministic functions of the payload (no timestamps,
no environment), which is what lets the DAG cache the report itself under a
content key.
"""

from __future__ import annotations

import html
from typing import Any, Mapping, Optional, Sequence

__all__ = ["render_markdown", "render_html", "svg_bar_chart"]

#: Colorblind-safe series palette (cycled when a campaign has more experiments).
PALETTE = (
    "#4e79a7",
    "#f28e2b",
    "#59a14f",
    "#e15759",
    "#b07aa1",
    "#76b7b2",
    "#edc948",
    "#9c755f",
)


def _fmt(value: Any) -> str:
    """One table/axis number: compact, stable, '-' for missing."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        return f"{value:.6g}"
    return str(value)


def _md_cell(value: Any) -> str:
    """A markdown table cell: pipes and newlines must not break the row."""
    return _fmt(value).replace("|", "\\|").replace("\n", " ")


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------


def _nice_ticks(vmin: float, vmax: float, n: int = 4) -> list[float]:
    """About ``n`` evenly spaced axis ticks spanning [vmin, vmax]."""
    if vmax <= vmin:
        vmax = vmin + 1.0
    step = (vmax - vmin) / n
    return [vmin + i * step for i in range(n + 1)]


def svg_bar_chart(
    title: str,
    categories: Sequence[str],
    series: Mapping[str, Sequence[Optional[float]]],
    *,
    width: int = 640,
    height: int = 280,
) -> str:
    """A grouped vertical bar chart as a self-contained ``<svg>`` element.

    ``categories`` label the x-axis groups (one per swept dimension value);
    ``series`` maps each experiment to its per-category means (``None``
    leaves a gap).  Handles negative values with a zero baseline.  Pure
    string assembly — no plotting library.
    """
    margin_left, margin_right, margin_top, margin_bottom = 64, 16, 48, 56
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    values = [v for row in series.values() for v in row if v is not None]
    vmin = min(0.0, min(values)) if values else 0.0
    vmax = max(0.0, max(values)) if values else 1.0
    if vmax == vmin:
        vmax = vmin + 1.0

    def y_of(value: float) -> float:
        return margin_top + plot_h * (1.0 - (value - vmin) / (vmax - vmin))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">',
        f'<title>{html.escape(title)}</title>',
        f'<text x="{margin_left}" y="18" font-size="13" font-family="sans-serif" '
        f'font-weight="bold">{html.escape(title)}</text>',
    ]
    # Legend, top-right.
    legend_x = margin_left
    for i, name in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="26" width="10" height="10" fill="{color}"/>'
            f'<text x="{legend_x + 14}" y="35" font-size="11" '
            f'font-family="sans-serif">{html.escape(str(name))}</text>'
        )
        legend_x += 24 + 7 * len(str(name))
    # Gridlines and y-axis labels.
    for tick in _nice_ticks(vmin, vmax):
        y = y_of(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{width - margin_right}" '
            f'y2="{y:.1f}" stroke="#ddd" stroke-width="1"/>'
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" font-size="10" '
            f'font-family="sans-serif" text-anchor="end">{_fmt(tick)}</text>'
        )
    # Bars.
    n_cat = max(1, len(categories))
    n_series = max(1, len(series))
    group_w = plot_w / n_cat
    bar_w = max(2.0, 0.8 * group_w / n_series)
    zero_y = y_of(0.0)
    for s_index, (name, row) in enumerate(series.items()):
        color = PALETTE[s_index % len(PALETTE)]
        for c_index, value in enumerate(row[: len(categories)]):
            if value is None:
                continue
            x = margin_left + c_index * group_w + 0.1 * group_w + s_index * bar_w
            top = min(zero_y, y_of(value))
            bar_h = abs(y_of(value) - zero_y)
            label = f"{name} / {categories[c_index]}: {_fmt(value)}"
            parts.append(
                f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                f'height="{max(bar_h, 0.5):.1f}" fill="{color}">'
                f"<title>{html.escape(label)}</title></rect>"
            )
    # Zero baseline and category labels.
    parts.append(
        f'<line x1="{margin_left}" y1="{zero_y:.1f}" x2="{width - margin_right}" '
        f'y2="{zero_y:.1f}" stroke="#333" stroke-width="1"/>'
    )
    for c_index, category in enumerate(categories):
        x = margin_left + (c_index + 0.5) * group_w
        text = str(category)
        shown = text if len(text) <= 18 else text[:16] + "…"
        parts.append(
            f'<text x="{x:.1f}" y="{height - margin_bottom + 16}" font-size="10" '
            f'font-family="sans-serif" text-anchor="middle">'
            f"<title>{html.escape(text)}</title>{html.escape(shown)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


# ---------------------------------------------------------------------------
# Assembling the battery
# ---------------------------------------------------------------------------


def _chart_inputs(
    entries: Sequence[Mapping[str, Any]]
) -> tuple[list[str], dict[str, list[Optional[float]]]]:
    """Categories (dimension labels) and per-experiment mean series."""
    categories: list[str] = []
    for entry in entries:
        label = str(entry.get("label"))
        if label not in categories:
            categories.append(label)
    series: dict[str, list[Optional[float]]] = {}
    for entry in entries:
        name = str(entry.get("experiment"))
        series.setdefault(name, [None] * len(categories))
    for entry in entries:
        name = str(entry.get("experiment"))
        label = str(entry.get("label"))
        value = entry.get("mean")
        series[name][categories.index(label)] = (
            float(value) if isinstance(value, (int, float)) else None
        )
    return categories, series


def _iter_grids(comparison: Mapping[str, Any]):
    """Yield (metric, dimension, entries) in metric-major order, skipping
    the degenerate repeat of the ``experiment`` grid when a dimension grid
    exists for the same metric with more detail."""
    tables = dict(comparison.get("tables", {}))
    for metric in comparison.get("metrics", []):
        for dimension in comparison.get("dimensions", []):
            entries = tables.get(dimension, {}).get(metric)
            if entries:
                yield metric, dimension, entries


def render_markdown(comparison: Mapping[str, Any], *, title: str) -> str:
    """The comparison grids as a markdown report (one section per metric)."""
    experiments = comparison.get("experiments", [])
    lines = [
        f"# Campaign report — {title}",
        "",
        f"- experiments: {', '.join(str(e) for e in experiments) or '-'}",
        f"- points: {comparison.get('n_points', 0)}",
        f"- compared dimensions: "
        f"{', '.join(str(d) for d in comparison.get('dimensions', [])) or '-'}",
        f"- metrics: {len(comparison.get('metrics', []))}",
        "",
    ]
    current_metric = None
    for metric, dimension, entries in _iter_grids(comparison):
        if metric != current_metric:
            lines.extend([f"## {metric}", ""])
            current_metric = metric
        lines.extend([f"### by {dimension}", ""])
        lines.append("| experiment | " + str(dimension) + " | mean | min | max | points |")
        lines.append("|---|---|---|---|---|---|")
        for entry in entries:
            lines.append(
                "| "
                + " | ".join(
                    _md_cell(entry.get(k))
                    for k in ("experiment", "label", "mean", "min", "max", "n_points")
                )
                + " |"
            )
        lines.append("")
    return "\n".join(lines)


def render_html(comparison: Mapping[str, Any], *, title: str) -> str:
    """The comparison grids as one self-contained HTML page with SVG charts."""
    head = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>Campaign report — {html.escape(title)}</title>"
        "<style>"
        "body{font-family:sans-serif;margin:2em;max-width:72em}"
        "table{border-collapse:collapse;margin:0.5em 0 1.5em}"
        "td,th{border:1px solid #ccc;padding:4px 10px;font-size:13px;text-align:left}"
        "th{background:#f4f4f4}"
        "h2{border-bottom:1px solid #ddd;padding-bottom:4px;margin-top:1.6em}"
        "figure{margin:0.5em 0}"
        "</style></head><body>"
    )
    parts = [
        head,
        f"<h1>Campaign report — {html.escape(title)}</h1>",
        "<ul>"
        f"<li>experiments: {html.escape(', '.join(str(e) for e in comparison.get('experiments', [])) or '-')}</li>"
        f"<li>points: {comparison.get('n_points', 0)}</li>"
        f"<li>compared dimensions: {html.escape(', '.join(str(d) for d in comparison.get('dimensions', [])) or '-')}</li>"
        "</ul>",
    ]
    current_metric = None
    for metric, dimension, entries in _iter_grids(comparison):
        if metric != current_metric:
            parts.append(f"<h2>{html.escape(str(metric))}</h2>")
            current_metric = metric
        parts.append(f"<h3>by {html.escape(str(dimension))}</h3>")
        categories, series = _chart_inputs(entries)
        parts.append(
            "<figure>" + svg_bar_chart(f"{metric} by {dimension}", categories, series) + "</figure>"
        )
        header = ["experiment", str(dimension), "mean", "min", "max", "points"]
        rows = [
            "<tr>"
            + "".join(
                f"<td>{html.escape(_fmt(entry.get(k)))}</td>"
                for k in ("experiment", "label", "mean", "min", "max", "n_points")
            )
            + "</tr>"
            for entry in entries
        ]
        parts.append(
            "<table><thead><tr>"
            + "".join(f"<th>{html.escape(h)}</th>" for h in header)
            + "</tr></thead><tbody>"
            + "".join(rows)
            + "</tbody></table>"
        )
    parts.append("</body></html>")
    return "".join(parts)
